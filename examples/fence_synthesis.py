#!/usr/bin/env python3
"""Synthesize the minimal fences each idiom needs under each model.

The enumeration procedure run backwards: given a forbidden outcome, find
the smallest sets of full-fence insertions that forbid it.  The answers
are the hardware folklore, derived mechanically:

Run:  python examples/fence_synthesis.py
"""

from repro.analysis import check_robustness, synthesize_fences
from repro.litmus import get_test

CASES = (
    ("SB", ("tso", "pso", "weak")),
    ("MP", ("pso", "weak")),
    ("LB", ("weak",)),
    ("R", ("tso",)),
    ("S", ("pso", "weak")),
    ("IRIW", ("weak",)),
    ("2+2W", ("pso", "weak")),
    ("dekker-nofence", ("tso",)),
)


def main():
    for test_name, models in CASES:
        test = get_test(test_name)
        for model_name in models:
            synthesis = synthesize_fences(test, model_name)
            print(synthesis.summary())
    print()

    print("Robustness before/after (SB under weak):")
    print(" ", check_robustness(get_test("SB").program, "weak").summary())
    print(" ", check_robustness(get_test("SB+fences").program, "weak").summary())
    print()
    print("Release/acquire as an alternative to fences (MP under weak):")
    print(" ", check_robustness(get_test("MP").program, "weak").summary())
    print(" ", check_robustness(get_test("MP+ra").program, "weak").summary())


if __name__ == "__main__":
    main()
