#!/usr/bin/env python3
"""Quickstart: define a litmus program, enumerate its behaviors, compare models.

Builds the classic store-buffering (SB) test two ways — via the Python DSL
and via the textual assembly format — then enumerates every execution under
several memory models and prints the outcome sets, the verdict for the
classic "both loads miss" relaxed outcome, and one execution graph.

Run:  python examples/quickstart.py
"""

from repro import ProgramBuilder, enumerate_behaviors, get_model
from repro.litmus import litmus_from_source, run_litmus
from repro.viz import render


def build_sb_with_dsl():
    builder = ProgramBuilder("SB")
    p0 = builder.thread("P0")
    p0.store("x", 1)
    p0.load("r1", "y")
    p1 = builder.thread("P1")
    p1.store("y", 1)
    p1.load("r2", "x")
    return builder.build()


SB_SOURCE = """
test SB
thread P0
    S x, 1
    r1 = L y
thread P1
    S y, 1
    r2 = L x
exists (P0:r1=0 /\\ P1:r2=0)
"""


def show_outcomes(program, model_name):
    result = enumerate_behaviors(program, get_model(model_name))
    rows = sorted(
        "  ".join(
            f"{thread}:{register}={value}"
            for (thread, register), value in sorted(outcome, key=repr)
        )
        for outcome in result.register_outcomes()
    )
    print(f"  {model_name:<10} {len(result):>2} executions:")
    for row in rows:
        print(f"    {row}")


def main():
    program = build_sb_with_dsl()
    print(program)
    print()

    print("Behavior sets per model (the paper's enumeration procedure):")
    for model_name in ("sc", "tso", "pso", "weak"):
        show_outcomes(program, model_name)
    print()

    print("Litmus verdicts for: exists (P0:r1=0 /\\ P1:r2=0)")
    test = litmus_from_source(SB_SOURCE)
    for model_name in ("sc", "tso", "pso", "weak"):
        verdict = run_litmus(test, model_name)
        print(
            f"  {model_name:<10} observable: {'Yes' if verdict.holds else 'No '} "
            f"({verdict.satisfied_pairs}/{verdict.total_pairs} final states match)"
        )
    print()

    print("One WEAK execution graph exhibiting the relaxed outcome:")
    result = enumerate_behaviors(program, get_model("weak"))
    relaxed = next(
        execution
        for execution in result.executions
        if set(execution.final_registers().values()) == {0}
    )
    print(render(relaxed.graph))


if __name__ == "__main__":
    main()
