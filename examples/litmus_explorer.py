#!/usr/bin/env python3
"""Explore the classic litmus-test catalogue across memory models.

Prints the full test × model matrix (which relaxed outcomes each model
admits), a table of behavior counts, and the model-strength inclusion
chain — the framework's "easy to experiment with a broad range of memory
models" claim in action.

Pass a test name to zoom in, e.g.:

    python examples/litmus_explorer.py IRIW+fences
"""

import sys

from repro.analysis import check_inclusion_chain, outcome_count_table
from repro.litmus import all_tests, format_matrix, get_test, run_litmus, run_matrix
from repro.viz import render

MODELS = ("sc", "tso", "pso", "weak", "weak-corr")


def zoom(name: str) -> None:
    test = get_test(name)
    print(f"{test.name}: {test.description}")
    print(str(test.program))
    print(f"condition: {test.condition}")
    print()
    for model_name in MODELS:
        verdict = run_litmus(test, model_name)
        print(
            f"  {model_name:<10} {test.condition.quantifier}: "
            f"{'Yes' if verdict.holds else 'No '}  "
            f"executions={verdict.executions}  "
            f"matching final states={verdict.satisfied_pairs}/{verdict.total_pairs}"
        )
    # show one witnessing execution when the condition is observable
    verdict = run_litmus(test, "weak")
    if verdict.holds and verdict.result.executions:
        witnesses = [
            execution
            for execution in verdict.result.executions
            if test.condition.holds_in(execution.final_registers(), {})
        ]
        if witnesses:
            print()
            print("one WEAK execution graph satisfying the register atoms:")
            print(render(witnesses[0].graph))


def overview() -> None:
    tests = all_tests()
    print(f"{len(tests)} classic litmus tests × {len(MODELS)} models")
    print("(is the test's relaxed outcome observable? '!' = unexpected)")
    print()
    print(format_matrix(run_matrix(tests, MODELS)))
    print()
    print("Behavior counts (distinct executions per model):")
    print(outcome_count_table([test.program for test in tests[:8]], MODELS))
    print()
    chain = ("sc", "tso", "pso", "weak")
    report = check_inclusion_chain([test.program for test in tests], chain)
    print(
        f"Inclusion chain {' ⊆ '.join(chain)}: "
        f"{'holds on every test' if report.holds else report.violations}"
    )


def main() -> None:
    if len(sys.argv) > 1:
        zoom(sys.argv[1])
    else:
        overview()


if __name__ == "__main__":
    main()
