#!/usr/bin/env python3
"""Synthesize litmus tests from critical cycles, diy-style.

Shasha & Snir's theorem (cited in the paper's §7): non-SC behavior
involves a critical cycle of program-order and communication edges.
Give this script a cycle and it emits the litmus test, the predicted
verdict per model (from the reordering tables alone), and the
enumerator's ground truth.

Run:  python examples/cycle_synthesis.py
      python examples/cycle_synthesis.py Fre PodWR Fre PodWR
"""

import sys

from repro.litmus.generator import EdgeKindSpec, generate, predict_verdict
from repro.litmus.runner import run_litmus

MODELS = ("sc", "tso", "pso", "weak")

SHOWCASE = {
    "SB": ["Fre", "PodWR", "Fre", "PodWR"],
    "MP": ["PodWW", "Rfe", "PodRR", "Fre"],
    "LB": ["PodRW", "Rfe", "PodRW", "Rfe"],
    "IRIW": ["Rfe", "PodRR", "Fre", "Rfe", "PodRR", "Fre"],
    "MP+writer-fence": ["FenWW", "Rfe", "PodRR", "Fre"],
    "Z6.3": ["PodWW", "Rfe", "PodRW", "Wse", "PodWW", "Wse"],
}

_BY_NAME = {kind.value: kind for kind in EdgeKindSpec}


def show(name: str, edge_names: list[str]) -> None:
    cycle = [_BY_NAME[edge] for edge in edge_names]
    generated = generate(cycle, name)
    print(f"=== {name}: {'+'.join(edge_names)} ===")
    print(generated.test.program)
    print(f"condition: {generated.test.condition}")
    for model_name in MODELS:
        predicted = predict_verdict(generated, model_name)
        observed = run_litmus(generated.test, model_name).holds
        agreement = "" if predicted == observed else "  <-- PREDICTION WRONG"
        print(
            f"  {model_name:<6} predicted {'Yes' if predicted else 'No ':<4} "
            f"observed {'Yes' if observed else 'No'}{agreement}"
        )
    print()


def main() -> None:
    if len(sys.argv) > 1:
        show("custom", sys.argv[1:])
        return
    for name, edges in SHOWCASE.items():
        show(name, edges)
    print(
        "prediction rule: observable under M iff some plain Pod edge of the\n"
        "cycle is relaxable under M's table — communication edges are always\n"
        "global (Store Atomicity), fenced edges always enforced."
    )


if __name__ == "__main__":
    main()
