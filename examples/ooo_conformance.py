#!/usr/bin/env python3
"""Prove an out-of-order core implements TSO — and break it (§4.2, §5).

The machine: per-thread OoO windows, loads issuing speculatively out of
order (past stores with unknown addresses — address-aliasing
speculation), FIFO post-retirement store buffers, and retirement-time
load re-validation with dependent squash.

With replay enabled, hundreds of random schedules produce exactly the
axiomatic TSO behavior set.  With replay disabled — the naive speculation
of §5 / Martin et al. — the machine leaks behaviors no TSO (or even
coherent) execution allows, and the trace checker catches each leak.

Run:  python examples/ooo_conformance.py
"""

from repro.analysis.tracecheck import Trace, TraceOp, check_trace
from repro.core import enumerate_behaviors
from repro.litmus import get_test
from repro.models import get_model
from repro.ooo import run_ooo

TESTS = ("SB", "MP", "LB", "CoRR", "IRIW", "dekker-nofence")
SEEDS = 200


def main():
    print("== Replay enabled: conformance to TSO ==")
    for name in TESTS:
        program = get_test(name).program
        tso = enumerate_behaviors(program, get_model("tso")).register_outcomes()
        seen = set()
        replays = 0
        for seed in range(SEEDS):
            run = run_ooo(program, seed=seed)
            seen.add(run.registers)
            replays += run.replays
            assert run.registers in tso, f"{name} seed {seed} violated TSO!"
        print(
            f"  {name:<16} {len(seen)}/{len(tso)} TSO outcomes reached, "
            f"{replays} speculative replays, 0 violations"
        )
    print()

    print("== Replay disabled: the naive machine leaks ==")
    program = get_test("CoRR").program
    tso = enumerate_behaviors(program, get_model("tso")).register_outcomes()
    leaks = {}
    for seed in range(400):
        run = run_ooo(program, seed=seed, replay_enabled=False)
        if run.registers not in tso:
            leaks.setdefault(run.registers, seed)
    for outcome, seed in leaks.items():
        rendered = ", ".join(
            f"{t}:{r}={v}" for (t, r), v in sorted(outcome, key=repr)
        )
        print(f"  seed {seed}: non-TSO outcome {{{rendered}}}")
        registers = dict(outcome)
        trace = Trace(
            (
                ("P0", (TraceOp.store("x", 1),)),
                (
                    "P1",
                    (
                        TraceOp.load("x", registers[("P1", "r1")]),
                        TraceOp.load("x", registers[("P1", "r2")]),
                    ),
                ),
            )
        )
        verdict = check_trace(trace, "weak-corr")
        print(f"    trace checker (coherent model): {verdict}")
    print()
    print(
        "The leaked CoRR inversion (r1=1, r2=0) is precisely what the paper's\n"
        "§5 warns about: speculation without validation adds behaviors, and\n"
        "machines must detect failure and roll back — here, the retirement\n"
        "re-check plus dependent squash."
    )


if __name__ == "__main__":
    main()
