#!/usr/bin/env python3
"""Verify locking algorithms against relaxed memory models.

The paper (Section 8) proposes exactly this application: "it can also be
used by programmers to guarantee that a program actually behaves as
expected (for example, to check that a locking algorithm meets its
specification)".

This example checks three lock constructions by exhaustive behavior
enumeration:

1. Dekker-style flags WITHOUT fences — mutual exclusion fails on every
   model weaker than SC (the classic store-buffering pitfall),
2. the same flags WITH full fences — safe on every model here,
3. a CAS spinlock (one retry) — safe everywhere, by RMW atomicity.

Run:  python examples/verify_locking.py
"""

from repro import enumerate_behaviors, get_model
from repro.analysis import check_well_synchronized
from repro.isa.dsl import ProgramBuilder
from repro.litmus import litmus_from_source, run_litmus

MODELS = ("sc", "tso", "pso", "weak")


def build_dekker(fenced: bool):
    """Two threads announce intent, then enter only if the other is quiet.
    Entering increments the critical counter c atomically so the condition
    [c]=2 means 'both threads were inside at once'."""
    builder = ProgramBuilder(f"dekker{'-fenced' if fenced else '-nofence'}")
    for me, other, out in (("fa", "fb", "out0"), ("fb", "fa", "out1")):
        thread = builder.thread(f"P-{me}")
        thread.store(me, 1)
        if fenced:
            thread.fence()
        thread.load("r1" if me == "fa" else "r2", other)
        thread.bnez("r1" if me == "fa" else "r2", out)
        thread.fetch_add("r8" if me == "fa" else "r9", "c", 1)
        thread.label(out)
    return builder.build()


CAS_LOCK = """
test cas-spinlock
thread P0
    r1 = cas lock, 0, 1
    beqz r1, enter0
    r1 = cas lock, 0, 1      # one retry
    bnez r1, out0
enter0:
    r3 = fadd c, 1
    S lock, 0                # release
out0:
thread P1
    r2 = cas lock, 0, 1
    beqz r2, enter1
    r2 = cas lock, 0, 1
    bnez r2, out1
enter1:
    r4 = fadd c, 1
    S lock, 0
out1:
exists (P0:r3=0 /\\ P1:r4=0)
"""


def check_mutual_exclusion(program, label):
    print(f"{label}:")
    for model_name in MODELS:
        result = enumerate_behaviors(program, get_model(model_name))
        # Both threads entered iff both fetch_adds happened, i.e. some
        # execution where the counter reached 2.
        both_entered = any(
            2 in execution.memory_finals().get("c", ())
            for execution in result.executions
        )
        verdict = "VIOLATED" if both_entered else "holds  "
        print(
            f"  {model_name:<6} mutual exclusion {verdict} "
            f"({len(result)} executions)"
        )
    print()


def main():
    check_mutual_exclusion(build_dekker(fenced=False), "Dekker WITHOUT fences")
    check_mutual_exclusion(build_dekker(fenced=True), "Dekker WITH full fences")

    print("CAS spinlock with release (both-enter-simultaneously condition):")
    test = litmus_from_source(CAS_LOCK)
    for model_name in MODELS:
        verdict = run_litmus(test, model_name)
        print(
            f"  {model_name:<6} both threads saw the lock free: "
            f"{'POSSIBLE' if verdict.holds else 'impossible'}"
        )
    print()

    print("Well-synchronization check (paper §8) for the fenced Dekker:")
    report = check_well_synchronized(
        build_dekker(fenced=True), "weak", sync_locations={"fa", "fb", "c"}
    )
    print(f"  {report.summary()}")


if __name__ == "__main__":
    main()
