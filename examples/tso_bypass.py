#!/usr/bin/env python3
"""TSO as a non-atomic memory model (paper Section 6, Figures 10 & 11).

The Figure 10 execution forwards both ``L z`` loads from their threads'
store buffers before the stores are globally visible, letting the later
loads observe the other thread's FIRST store.  The example shows:

* the WEAK axioms permit it (they permit every TSO execution),
* naively relaxing Store→Load does NOT capture it (the source edge in ⊑
  makes Store Atomicity derive a contradiction),
* grey bypass edges outside ⊑ capture it exactly — validated against an
  operational FIFO store-buffer machine.

Run:  python examples/tso_bypass.py
"""

from repro import enumerate_behaviors, get_model
from repro.experiments.fig1011 import PAPER_OUTCOME, build_program
from repro.operational import run_tso
from repro.viz import render, to_dot


def main():
    program = build_program()
    print(program)
    print()

    print("Is the Figure 10 outcome (r4=3, r6=5, r9=8, r10=1) permitted?")
    results = {}
    for model_name in ("sc", "naive-tso", "tso", "weak"):
        results[model_name] = enumerate_behaviors(program, get_model(model_name))
        permitted = PAPER_OUTCOME in results[model_name].register_outcomes()
        print(
            f"  {model_name:<10} {'YES' if permitted else 'no ':<4} "
            f"({len(results[model_name])} executions total)"
        )

    operational = run_tso(program)
    print(
        f"  {'hardware':<10} "
        f"{'YES' if PAPER_OUTCOME in operational.outcomes else 'no '}"
        f" (operational FIFO store-buffer machine, "
        f"{operational.states_explored} states)"
    )
    print()

    match = (
        results["tso"].register_outcomes() == operational.outcomes
    )
    print(f"axiomatic TSO == operational TSO outcome sets: {match}")
    print()

    pictured = next(
        execution
        for execution in results["tso"].executions
        if frozenset(execution.final_registers().items()) == PAPER_OUTCOME
    )
    print("The pictured TSO execution (grey ~bypass~ edges are outside ⊑):")
    print(render(pictured.graph))
    print()
    print("Graphviz rendering (paste into `dot -Tpng`):")
    print(to_dot(pictured.graph, title="Figure 10 under TSO"))


if __name__ == "__main__":
    main()
