#!/usr/bin/env python3
"""Address-aliasing speculation study (paper Section 5, Figures 8 & 9).

Location ``x`` holds a pointer; Thread B stores through it.  Whether that
store aliases B's final load of ``y`` is data-dependent, so a
non-speculative machine must wait for the pointer before reordering —
the subtle L6 ≺ L8 dependency — while a speculative machine predicts
"no alias" and rolls back if wrong.

The study shows the paper's headline result: speculation introduces a
genuinely NEW program behavior (r8 = 2), yet every behavior remains
consistent with the Figure 1 reordering axioms.

Run:  python examples/speculation_study.py
"""

from repro import enumerate_behaviors, get_model
from repro.experiments.fig89 import build_aliasing_program, build_program
from repro.viz import render


def project(result):
    rows = set()
    for execution in result.executions:
        registers = {
            register: value
            for (_, register), value in execution.final_registers().items()
        }
        rows.add((registers.get("r3"), registers.get("r6"), registers.get("r8")))
    return rows


def show(title, rows):
    print(title)
    for r3, r6, r8 in sorted(rows, key=repr):
        print(f"    r3={r3!r:<4} r6={r6!r:<4} r8={r8!r}")


def main():
    program = build_program()
    print(program)
    print()

    nonspec = enumerate_behaviors(program, get_model("weak"))
    spec = enumerate_behaviors(program, get_model("weak-spec"))

    nonspec_rows = project(nonspec)
    spec_rows = project(spec)
    show(f"non-speculative WEAK: {len(nonspec_rows)} (r3, r6, r8) outcomes", nonspec_rows)
    print()
    show(f"speculative WEAK:     {len(spec_rows)} outcomes", spec_rows)
    print()
    show("NEW behaviors only possible with speculation:", spec_rows - nonspec_rows)
    print()

    pictured = next(
        execution
        for execution in spec.executions
        if execution.final_registers().get(("B", "r8")) == 2
        and execution.final_registers().get(("B", "r6")) == "z"
        and execution.final_registers().get(("B", "r3")) == 2
    )
    print("The Figure 9 (rightmost) execution graph — L8 observed S2")
    print("even though non-speculatively S2 ⊑ S4 ⊑ L8 would forbid it:")
    print(render(pictured.graph))
    print()

    alias = enumerate_behaviors(build_aliasing_program(), get_model("weak-spec"))
    print(
        "Aliasing variant (pointer may BE y): "
        f"{alias.stats.rolled_back} speculative branches rolled back "
        f"(§5.2's 'thrown away and re-tried'), {len(alias)} executions survive."
    )


if __name__ == "__main__":
    main()
