#!/usr/bin/env python3
"""Post-mortem trace checking, TSOtool-style (paper §7 / §8).

A silicon-validation harness records, per thread, the program-order
sequence of memory operations with loaded values — but NOT which store
each load read.  The checker reconstructs a witness source assignment
under the model's reordering axioms + Store Atomicity, or proves none
exists.

The second half reproduces (and sharpens) the paper's remark that
TSOtool checks only rules a and b: a single Figure 5 is NOT enough to
expose the gap — a directly violated rule-c consequence is derivable
from iterated a&b — but two interlocked Figure 5 instances are: the
a/b-only checker accepts an execution the full property (and the
enumerator) rejects.

Run:  python examples/trace_checking.py
"""

from repro.analysis.tracecheck import TraceOp, check_trace
from repro.experiments.tracecheck_exp import (
    build_double_fig5_program,
    double_fig5_trace,
    fig5_trace,
    sb_trace,
)
from repro.core import enumerate_behaviors
from repro.models import get_model

S, L, F = TraceOp.store, TraceOp.load, TraceOp.fence


def main():
    print("== Which model produced this trace? ==")
    relaxed = sb_trace(0, 0)  # SB with both loads missing both stores
    for model_name in ("sc", "tso-like (naive-tso + rules ab)", "weak"):
        if model_name.startswith("tso-like"):
            verdict = check_trace(relaxed, "naive-tso", rules="ab")
        else:
            verdict = check_trace(relaxed, model_name)
        print(f"  {model_name:<32} {verdict}")
    print()

    print("== Witness reconstruction ==")
    verdict = check_trace(sb_trace(1, 0), "sc")
    print(f"  trace (r1=1, r2=0) under SC: {verdict}")
    for (thread, index), source in sorted(verdict.assignment.items()):
        print(f"    {thread}[{index}] read from {source}")
    print()

    print("== The TSOtool gap (rules a/b vs rule c) ==")
    single = fig5_trace(2, 4, 6, 1)  # Figure 5 with the forbidden L9 = 1
    print(f"  single Figure 5, rules ab : {check_trace(single, 'weak', rules='ab')}")
    print(f"  single Figure 5, rules abc: {check_trace(single, 'weak', rules='abc')}")
    print("  -> no gap: a directly violated c-consequence is ab-derivable")
    print()

    witness = double_fig5_trace()
    print(f"  double Figure 5, rules ab : {check_trace(witness, 'weak', rules='ab')}")
    print(f"  double Figure 5, rules abc: {check_trace(witness, 'weak', rules='abc')}")

    target = frozenset(
        {
            (("C1", "r1z"), 6), (("C1", "r1a"), 2), (("C1", "r1b"), 4),
            (("C2", "r2z"), 6), (("C2", "r2a"), 2), (("C2", "r2b"), 4),
        }
    )
    outcomes = enumerate_behaviors(
        build_double_fig5_program(), get_model("weak")
    ).register_outcomes()
    print(f"  enumerator: outcome legal under weak? {target in outcomes}")
    print("  -> the a/b checker accepted an ILLEGAL execution: exactly the")
    print("     unsoundness the paper attributes to TSOtool's missing rule c.")


if __name__ == "__main__":
    main()
