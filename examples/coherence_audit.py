#!/usr/bin/env python3
"""Audit a cache-coherence protocol against Store Atomicity (paper §4.2).

The paper's claim: "We can view a cache coherence protocol as a
conservative approximation to Store Atomicity."  This example drives an
in-order multiprocessor over an MSI directory protocol with many random
schedules and, for every run, verifies that

* the eager protocol orderings satisfy Store Atomicity declaratively,
* the resulting execution is serializable, and
* the final state is one Sequential Consistency admits.

It then shows the protocol-imposed edges of one run next to the minimal
⊑ edges the framework derives — the "conservative" part made visible.

Run:  python examples/coherence_audit.py
"""

from repro import enumerate_behaviors, get_model
from repro.coherence import run_coherent, verify_run
from repro.litmus import get_test
from repro.operational import run_sc
from repro.viz import render

TESTS = ("SB", "MP", "IRIW", "2+2W", "CAS-lock")
SCHEDULES = 40


def main():
    total_runs = 0
    total_transactions = 0
    for name in TESTS:
        program = get_test(name).program
        sc_outcomes = run_sc(program).outcomes
        outcomes_seen = set()
        conforming = 0
        for seed in range(SCHEDULES):
            run = run_coherent(program, seed=seed)
            total_runs += 1
            total_transactions += run.transactions
            outcomes_seen.add(run.registers)
            if verify_run(run, sc_outcomes=sc_outcomes).conforms:
                conforming += 1
        print(
            f"{name:<10} {conforming}/{SCHEDULES} schedules conform; "
            f"{len(outcomes_seen)} distinct outcomes observed "
            f"(SC admits {len(sc_outcomes)})"
        )
    print(f"\ntotal: {total_runs} runs, {total_transactions} bus transactions\n")

    program = get_test("SB").program
    run = run_coherent(program, seed=3)
    print("One MSI run of SB — every edge the protocol imposed:")
    for edge in run.protocol_edges:
        print(f"  n{edge.before} -> n{edge.after}  ({edge.reason})")
    print()
    print(render(run.graph))
    print()

    axiomatic = enumerate_behaviors(program, get_model("sc"))
    print(
        "Conservatism: this single protocol run realizes 1 behavior; the "
        f"framework's minimal ⊑ admits {len(axiomatic)} distinct SC behaviors."
    )


if __name__ == "__main__":
    main()
