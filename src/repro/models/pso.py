"""Partial Store Order (SPARC PSO).

Like TSO, but the store buffer is not FIFO across addresses: Store→Store
pairs to *different* addresses may also reorder.  Same-address stores stay
ordered (coherence), loads keep program order, and store-to-load
forwarding uses the same grey-edge treatment as TSO.
"""

from __future__ import annotations

from repro.isa.instructions import OpClass
from repro.models.base import MemoryModel, OrderRequirement, ReorderingTable

#: SPARC Partial Store Order.
PSO = MemoryModel(
    name="pso",
    table=ReorderingTable(
        {
            (OpClass.LOAD, OpClass.LOAD): OrderRequirement.ALWAYS,
            (OpClass.LOAD, OpClass.STORE): OrderRequirement.ALWAYS,
            (OpClass.STORE, OpClass.STORE): OrderRequirement.SAME_ADDRESS,
            (OpClass.BRANCH, OpClass.STORE): OrderRequirement.ALWAYS,
        }
    ),
    store_load_bypass=True,
    description="SPARC Partial Store Order: per-address store buffering "
    "with forwarding; stores to distinct addresses may reorder.",
)
