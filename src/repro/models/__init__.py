"""Memory-model definitions: reordering tables + atomicity flavor."""

from repro.models.base import MemoryModel, OrderRequirement, ReorderingTable
from repro.models.pso import PSO
from repro.models.registry import available_models, get_model, register_model
from repro.models.sc import SC
from repro.models.tso import NAIVE_TSO, TSO
from repro.models.weak import WEAK, WEAK_CORR, WEAK_SPEC, speculative

__all__ = [
    "MemoryModel",
    "OrderRequirement",
    "ReorderingTable",
    "SC",
    "TSO",
    "NAIVE_TSO",
    "PSO",
    "WEAK",
    "WEAK_SPEC",
    "WEAK_CORR",
    "speculative",
    "available_models",
    "get_model",
    "register_model",
]
