"""Sequential Consistency as a reordering table.

SC is the degenerate case of the framework: no memory reorderings at all
(every pair of memory operations keeps program order), so the per-thread
partial order ``≺`` is total on memory operations, and Store Atomicity
reduces to Lamport's classic definition.
"""

from __future__ import annotations

from repro.isa.instructions import OpClass
from repro.models.base import MemoryModel, OrderRequirement, ReorderingTable

_MEMORY = (OpClass.LOAD, OpClass.STORE)

_SC_ENTRIES = {
    (first, second): OrderRequirement.ALWAYS for first in _MEMORY for second in _MEMORY
}
_SC_ENTRIES.update(
    {
        (OpClass.BRANCH, OpClass.LOAD): OrderRequirement.ALWAYS,
        (OpClass.BRANCH, OpClass.STORE): OrderRequirement.ALWAYS,
    }
)

#: Sequential Consistency (Lamport 1979).
SC = MemoryModel(
    name="sc",
    table=ReorderingTable(_SC_ENTRIES),
    description="Sequential Consistency: program order preserved between "
    "all memory operations.",
)
