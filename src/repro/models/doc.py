"""Model explainer: everything one model means, computed live.

Combines the static definition (the reordering table, flags) with the
model's *litmus signature* — which canonical relaxations it exhibits,
determined by actually enumerating the discriminating tests.  This is
the "easy to understand memory model" artifact the paper's conclusion
asks vendor manuals for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.base import MemoryModel
from repro.models.registry import get_model

#: The discriminating tests and the relaxation each one witnesses.
SIGNATURE_TESTS = (
    ("SB", "store→load reordering (store buffering)"),
    ("MP", "store→store or load→load reordering (message passing breaks)"),
    ("LB", "load→store reordering (load buffering)"),
    ("CoRR", "same-address load→load reordering (read incoherence)"),
    ("2+2W", "store→store reordering observable via final memory"),
    ("IRIW", "load→load reordering across independent writers"),
)


@dataclass(frozen=True)
class ModelCard:
    """A model's full description."""

    name: str
    description: str
    store_load_bypass: bool
    speculative_aliasing: bool
    table_text: str
    signature: tuple[tuple[str, bool], ...]  #: (test name, observable?)

    def render(self) -> str:
        lines = [f"model {self.name!r}", f"  {self.description}"]
        flags = []
        if self.store_load_bypass:
            flags.append("non-atomic store-to-load forwarding (grey bypass edges)")
        if self.speculative_aliasing:
            flags.append("address-aliasing speculation (rollback on mispredict)")
        for flag in flags:
            lines.append(f"  * {flag}")
        lines.append("")
        lines.append(self.table_text)
        lines.append("")
        lines.append("litmus signature (is the relaxed outcome observable?):")
        for test_name, observable in self.signature:
            explanation = dict(SIGNATURE_TESTS)[test_name]
            lines.append(
                f"  {test_name:<6} {'Yes' if observable else 'No ':<4} {explanation}"
            )
        return "\n".join(lines)


def model_card(model: MemoryModel | str) -> ModelCard:
    """Build the card, enumerating the signature tests under the model."""
    from repro.experiments.fig1 import render_table
    from repro.litmus.library import get_test
    from repro.litmus.runner import run_litmus

    if isinstance(model, str):
        model = get_model(model)
    signature = tuple(
        (test_name, run_litmus(get_test(test_name), model).holds)
        for test_name, _ in SIGNATURE_TESTS
    )
    return ModelCard(
        name=model.name,
        description=model.description,
        store_load_bypass=model.store_load_bypass,
        speculative_aliasing=model.speculative_aliasing,
        table_text=render_table(model),
        signature=signature,
    )
