"""Model registry: look up memory models by name."""

from __future__ import annotations

from repro.errors import ReproError
from repro.models.base import MemoryModel
from repro.models.pso import PSO
from repro.models.sc import SC
from repro.models.tso import NAIVE_TSO, TSO
from repro.models.weak import WEAK, WEAK_CORR, WEAK_SPEC

_MODELS: dict[str, MemoryModel] = {
    model.name: model
    for model in (SC, TSO, NAIVE_TSO, PSO, WEAK, WEAK_SPEC, WEAK_CORR)
}


def get_model(name: str) -> MemoryModel:
    """Look up a model by name (``sc``, ``tso``, ``naive-tso``, ``pso``,
    ``weak``, ``weak-spec``, ``weak-corr``)."""
    try:
        return _MODELS[name]
    except KeyError:
        known = ", ".join(sorted(_MODELS))
        raise ReproError(f"unknown memory model {name!r}; known models: {known}") from None


def available_models() -> tuple[str, ...]:
    """Names of all registered models, sorted."""
    return tuple(sorted(_MODELS))


def all_models() -> tuple[MemoryModel, ...]:
    """All registered models, sorted by name."""
    return tuple(_MODELS[name] for name in available_models())


def register_model(model: MemoryModel) -> None:
    """Register a user-defined model; refuses to overwrite an existing name."""
    if model.name in _MODELS:
        raise ReproError(f"model {model.name!r} is already registered")
    _MODELS[model.name] = model
