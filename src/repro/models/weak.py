"""The paper's relaxed model (Figure 1, "Weak Reordering Axioms").

Entries (beyond always-present data dependencies):

* the three ``x ≠ y`` entries — Store/Load, Store/Store and Load/Store
  pairs to the same address may never be reordered ("this ensures that
  single-threaded execution will be deterministic"),
* Loads to the *same address* may reorder (no L→L entry) — a deliberate
  property of the paper's model,
* ``never`` for Branch→Store — "Stores after a speculative branch are not
  made visible until the speculation is resolved",
* fences order all prior Loads/Stores before all subsequent Loads/Stores
  (carried by the fence machinery, not the table).
"""

from __future__ import annotations

from dataclasses import replace

from repro.isa.instructions import OpClass
from repro.models.base import MemoryModel, OrderRequirement, ReorderingTable

_WEAK_TABLE = ReorderingTable(
    {
        (OpClass.LOAD, OpClass.STORE): OrderRequirement.SAME_ADDRESS,
        (OpClass.STORE, OpClass.LOAD): OrderRequirement.SAME_ADDRESS,
        (OpClass.STORE, OpClass.STORE): OrderRequirement.SAME_ADDRESS,
        (OpClass.BRANCH, OpClass.STORE): OrderRequirement.ALWAYS,
    }
)

#: The paper's running-example model (non-speculative alias resolution).
WEAK = MemoryModel(
    name="weak",
    table=_WEAK_TABLE,
    description="Paper Figure 1: aggressive reordering, store-atomic, "
    "non-speculative address disambiguation.",
)

#: WEAK with Section 5's address-aliasing speculation enabled.
WEAK_SPEC = MemoryModel(
    name="weak-spec",
    table=_WEAK_TABLE,
    speculative_aliasing=True,
    description="Paper Section 5: WEAK plus address-aliasing speculation "
    "(alias-resolution dependencies dropped, rollback on violation).",
)

#: WEAK strengthened with same-address Load/Load ordering (read coherence),
#: an extension variant for ablation studies.
WEAK_CORR = MemoryModel(
    name="weak-corr",
    table=ReorderingTable(
        {
            **_WEAK_TABLE.entries,
            (OpClass.LOAD, OpClass.LOAD): OrderRequirement.SAME_ADDRESS,
        }
    ),
    description="WEAK plus same-address load-load ordering (CoRR respected).",
)


def speculative(model: MemoryModel) -> MemoryModel:
    """A copy of ``model`` with address-aliasing speculation enabled."""
    if model.speculative_aliasing:
        return model
    return replace(
        model,
        name=f"{model.name}-spec",
        speculative_aliasing=True,
        description=f"{model.description} [speculative aliasing]",
    )
