"""Memory models as data: reordering tables + atomicity flavor.

The paper's thesis is in the title: a memory model is a set of
thread-local **instruction reordering** axioms plus **Store Atomicity**.
Here a model is represented by:

* a :class:`ReorderingTable` mapping ordered pairs of instruction classes
  to an :class:`OrderRequirement` (the paper's Figure 1 entries:
  blank / "never" / "indep" / "x ≠ y"),
* a ``store_load_bypass`` flag selecting the non-atomic TSO/PSO treatment
  of same-thread store→load pairs (Section 6's grey edges),
* a ``speculative_aliasing`` flag selecting Section 5's address-aliasing
  speculation (drop the alias-resolution dependencies, roll back on
  violation).

"indep" entries need no table representation: register dataflow edges are
always inserted, so an instruction pair constrained only by data
dependencies has table entry ``NONE``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.isa.instructions import Fence, Instruction, OpClass


class OrderRequirement(enum.IntEnum):
    """How strongly a pair of same-thread instructions must stay ordered.

    Values are comparable: a larger value is a stronger requirement, and
    an RMW inherits the strongest requirement of its load and store
    halves.
    """

    NONE = 0  #: freely reorderable (data dependencies still apply)
    SAME_ADDRESS = 1  #: ordered iff the two operations alias ("x ≠ y" entries)
    ALWAYS = 2  #: never reorderable ("never" entries)


#: Classes that can appear in reordering-table keys (RMW is expanded).
_TABLE_CLASSES = (OpClass.COMPUTE, OpClass.BRANCH, OpClass.LOAD, OpClass.STORE)


def _expand(op_class: OpClass) -> tuple[OpClass, ...]:
    """RMW behaves as both a Load and a Store for ordering purposes."""
    if op_class is OpClass.RMW:
        return (OpClass.LOAD, OpClass.STORE)
    return (op_class,)


@dataclass(frozen=True)
class ReorderingTable:
    """An immutable reordering-axiom table.

    ``entries`` maps ``(first_class, second_class)`` to a requirement;
    missing pairs default to :data:`OrderRequirement.NONE`.  Fences are
    not table entries — their ordering power is carried by their
    :class:`~repro.isa.instructions.FenceKind` uniformly across models.
    """

    entries: dict[tuple[OpClass, OpClass], OrderRequirement] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for (first, second) in self.entries:
            if first not in _TABLE_CLASSES or second not in _TABLE_CLASSES:
                raise ProgramError(
                    f"table entries use COMPUTE/BRANCH/LOAD/STORE classes, got "
                    f"({first}, {second}); RMW and FENCE are derived"
                )

    def lookup(self, first: OpClass, second: OpClass) -> OrderRequirement:
        """Requirement between two classes, expanding RMW to its halves."""
        requirement = OrderRequirement.NONE
        for f in _expand(first):
            for s in _expand(second):
                requirement = max(requirement, self.entries.get((f, s), OrderRequirement.NONE))
        return requirement


@dataclass(frozen=True)
class MemoryModel:
    """A complete memory-model definition.

    ``store_load_bypass`` — same-thread (Store, Load) pairs are exempt
    from the table and handled by store-buffer semantics: a load may
    forward from the newest program-earlier same-address store via a grey
    edge, or observe a remote store after acquiring a real ``≺`` edge
    from each program-earlier same-address local store (paper §6).

    ``speculative_aliasing`` — suppress the §5.1 address-resolution
    dependencies; deferred same-address edges are inserted when addresses
    resolve, and executions where insertion is inconsistent are discarded
    (the §5.2 rollback).
    """

    name: str
    table: ReorderingTable
    store_load_bypass: bool = False
    speculative_aliasing: bool = False
    description: str = ""

    def requirement(self, first: Instruction, second: Instruction) -> OrderRequirement:
        """Ordering requirement between two same-thread instructions, in
        program order ``first`` then ``second``.

        Acquire/release access annotations act as half fences in every
        model: an acquire load (or RMW) is ordered before all later
        memory operations; all earlier memory operations are ordered
        before a release store (or RMW).
        """
        fc, sc = first.op_class, second.op_class
        if fc is OpClass.FENCE or sc is OpClass.FENCE:
            return self._fence_requirement(first, second)
        if (
            getattr(first, "acquire", False)
            and fc.reads_memory()
            and sc.is_memory()
        ):
            return OrderRequirement.ALWAYS
        if (
            getattr(second, "release", False)
            and sc.writes_memory()
            and fc.is_memory()
        ):
            return OrderRequirement.ALWAYS
        if self.store_load_bypass and fc is OpClass.STORE and sc is OpClass.LOAD:
            # Bypass models exempt plain Store->Load from the table;
            # coherence of same-address pairs is restored by the forwarding
            # rules at load resolution.
            return OrderRequirement.NONE
        if self.store_load_bypass and fc is OpClass.STORE and sc is OpClass.RMW:
            # Atomics drain the store buffer before acting on memory, so
            # every program-earlier store is globally ordered before an RMW
            # regardless of address (matters for PSO, whose Store/Store
            # table entry is address-dependent).
            return OrderRequirement.ALWAYS
        return self.table.lookup(fc, sc)

    @staticmethod
    def _fence_requirement(first: Instruction, second: Instruction) -> OrderRequirement:
        if isinstance(first, Fence) and isinstance(second, Fence):
            return OrderRequirement.ALWAYS
        if isinstance(first, Fence):
            if first.kind.orders_after(second.op_class):
                return OrderRequirement.ALWAYS
            return OrderRequirement.NONE
        assert isinstance(second, Fence)
        if second.kind.orders_before(first.op_class):
            return OrderRequirement.ALWAYS
        return OrderRequirement.NONE

    def class_requirement(self, first: OpClass, second: OpClass) -> OrderRequirement:
        """Table-level requirement between instruction classes (fences are
        reported as FULL fences).  Used for rendering Figure 1."""
        if first is OpClass.FENCE or second is OpClass.FENCE:
            if first is OpClass.FENCE and second is OpClass.FENCE:
                return OrderRequirement.ALWAYS
            other = second if first is OpClass.FENCE else first
            if other.is_memory():
                return OrderRequirement.ALWAYS
            return OrderRequirement.NONE
        if self.store_load_bypass and first is OpClass.STORE and second is OpClass.LOAD:
            return OrderRequirement.NONE
        if self.store_load_bypass and first is OpClass.STORE and second is OpClass.RMW:
            return OrderRequirement.ALWAYS
        return self.table.lookup(first, second)

    def __str__(self) -> str:
        flags = []
        if self.store_load_bypass:
            flags.append("bypass")
        if self.speculative_aliasing:
            flags.append("speculative-aliasing")
        suffix = f" ({', '.join(flags)})" if flags else ""
        return f"<MemoryModel {self.name}{suffix}>"
