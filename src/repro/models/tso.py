"""Total Store Order (SPARC TSO) — the paper's non-atomic model (§6).

TSO keeps all program orderings except Store→Load, which is relaxed by
the store buffer.  The non-atomic part is store-to-load *forwarding*: a
load may observe a program-earlier local store before that store is
globally visible.  In the framework this source edge is grey (``BYPASS``)
and does not participate in the ``⊑`` ordering; a load that instead
observes a remote store acquires a real ``≺`` edge from each
program-earlier same-address local store (its buffered stores must have
drained first).

``NAIVE_TSO`` is the strawman from Figure 11 (center): Store→Load simply
relaxed with the source edge kept in ``⊑``.  It is *wrong* — the paper
uses it to show that globally-applicable reordering rules alone cannot
capture TSO — and is provided so the experiment can reproduce exactly
that failure.
"""

from __future__ import annotations

from repro.isa.instructions import OpClass
from repro.models.base import MemoryModel, OrderRequirement, ReorderingTable

_TSO_ENTRIES = {
    (OpClass.LOAD, OpClass.LOAD): OrderRequirement.ALWAYS,
    (OpClass.LOAD, OpClass.STORE): OrderRequirement.ALWAYS,
    (OpClass.STORE, OpClass.STORE): OrderRequirement.ALWAYS,
    (OpClass.BRANCH, OpClass.STORE): OrderRequirement.ALWAYS,
}

#: SPARC TSO with correct (grey-edge) store-to-load bypass.
TSO = MemoryModel(
    name="tso",
    table=ReorderingTable(_TSO_ENTRIES),
    store_load_bypass=True,
    description="SPARC Total Store Order: FIFO store buffer with forwarding; "
    "bypass source edges excluded from ⊑ (paper §6).",
)

#: The incorrect strawman of Figure 11 (center): Store→Load relaxed but the
#: bypass edge treated as an ordinary store-atomic source edge.
NAIVE_TSO = MemoryModel(
    name="naive-tso",
    table=ReorderingTable(_TSO_ENTRIES),
    store_load_bypass=False,
    description="Figure 11 strawman: Store→Load reordering without grey "
    "bypass edges — rejects executions real TSO permits.",
)
