"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProgramError(ReproError):
    """A program is malformed (bad operand, unknown label, duplicate label)."""


class AssemblerError(ProgramError):
    """The textual litmus/assembly format could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class ExecutionError(ReproError):
    """A dynamic error occurred while executing an instruction (e.g. adding
    an address to an integer, or loading from a non-address value)."""


class GraphError(ReproError):
    """An execution-graph invariant was violated (unknown node, bad edge)."""


class CycleError(GraphError):
    """Adding an edge would create a cycle in the execution graph.

    A cycle means the requested ordering is inconsistent: in speculative
    executions this signals that the speculation failed and the behavior
    must be rolled back (discarded); elsewhere it is a hard error.
    """

    def __init__(self, source: int, target: int) -> None:
        self.source = source
        self.target = target
        super().__init__(
            f"edge {source} -> {target} would create a cycle in the execution graph"
        )


class AtomicityViolation(ReproError):
    """An execution violates the Store Atomicity property (Section 3.3).

    Raised by the closure engine when the rules (a), (b), (c) cannot be
    satisfied without creating a cycle, or by the declarative checker when
    handed a graph that breaks one of the serializability conditions.
    """


class SerializationError(ReproError):
    """No serialization (witness total order) exists for an execution that
    was expected to be serializable."""


class EnumerationError(ReproError):
    """The behavior-enumeration procedure hit a configured resource limit
    (too many behaviors, too many steps) or an internal inconsistency.

    When the error corresponds to an exhausted budget in ``strict`` mode,
    ``reason`` carries the matching
    :class:`~repro.core.enumerate.ExhaustionReason` member.
    """

    def __init__(self, message: str, reason: object | None = None) -> None:
        self.reason = reason
        super().__init__(message)


class StuckBehaviorWarning(RuntimeWarning):
    """The enumerator discarded an incomplete behavior with no eligible
    load.  Every incomplete behavior should offer at least one eligible
    load (memory is initialized with stores), so a stuck behavior points
    at an engine bug; it is surfaced rather than silently dropped."""


class ServiceError(ReproError):
    """The analysis service rejected a request or hit an internal fault.

    ``status`` optionally carries the HTTP status code the server
    answered (or would answer) with, and ``retry_after`` the suggested
    back-off in seconds for throttled requests.
    """

    def __init__(
        self,
        message: str,
        status: int | None = None,
        retry_after: float | None = None,
    ) -> None:
        self.status = status
        self.retry_after = retry_after
        super().__init__(message)


class WALError(ServiceError):
    """The write-ahead log is unreadable or inconsistent (a corrupt
    record in the middle of the log, an out-of-order sequence number).
    A torn *tail* record — what a crash mid-append leaves behind — is
    not an error; replay drops it."""


class CacheIntegrityWarning(RuntimeWarning):
    """The behavior cache skipped damaged on-disk data — a torn segment
    tail, a record with a flipped checksum, an undecodable payload, or a
    stale bloom sidecar.  The affected entries degrade to cache misses;
    the store stays usable."""


class CacheError(ReproError):
    """The behavior cache's on-disk store is unusable (a hard-corrupt
    index, an unwritable directory) or a validated cache hit disagreed
    with a fresh enumeration.  Recoverable damage — a torn segment tail,
    a flipped record checksum — is *not* an error: the store degrades
    those records to misses (with a warning) instead of raising."""


class ConditionError(ReproError):
    """A litmus-test condition expression is malformed or references an
    unknown thread or register."""


class CoherenceError(ReproError):
    """The cache-coherence machine reached an inconsistent protocol state."""
