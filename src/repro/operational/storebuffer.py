"""Operational TSO/PSO — per-thread store buffers over a shared memory.

The machine implements the hardware intuition behind Section 6:

* a Store enters its thread's store buffer,
* a buffered store *drains* to memory nondeterministically — in FIFO
  order for TSO, in any order that preserves per-address FIFO for PSO,
* a Load first searches its own buffer (newest matching entry — store-to-
  load forwarding, the paper's "Local Load operations are permitted to
  obtain values from the Store pipeline"), falling back to memory,
* full and store-ordering fences wait for an empty buffer,
* atomic RMWs drain the buffer and act on memory directly.

These machines are the reference baselines the axiomatic TSO/PSO models
are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EnumerationError
from repro.isa.instructions import Fence, FenceKind, Load, Rmw, Store
from repro.isa.program import Program
from repro.operational.sc import _initial_memory, _read, _write
from repro.operational.state import (
    ArchThreadState,
    final_registers,
    resolve_address,
    rmw_apply,
    step_local,
)

#: A store buffer: oldest-first tuple of (address, value) entries.
Buffer = tuple[tuple[str, object], ...]

#: Fence kinds that must wait until the issuing thread's buffer drains.
_DRAINING_FENCES = (FenceKind.FULL, FenceKind.STORE_LOAD, FenceKind.STORE_STORE)


def _forward(buffer: Buffer, address: str):
    """Newest buffered value for ``address``, or None if absent."""
    for entry_address, value in reversed(buffer):
        if entry_address == address:
            return (value,)
    return None


def _drain_choices(buffer: Buffer, fifo: bool) -> list[int]:
    """Indices of buffer entries that may drain next."""
    if not buffer:
        return []
    if fifo:
        return [0]
    choices = []
    seen_addresses: set[str] = set()
    for index, (address, _) in enumerate(buffer):
        if address not in seen_addresses:
            choices.append(index)
            seen_addresses.add(address)
    return choices


@dataclass
class StoreBufferResult:
    """Outcome set plus exploration statistics."""

    outcomes: frozenset
    states_explored: int = 0
    terminal_states: int = 0


def run_store_buffer(
    program: Program, fifo: bool = True, max_states: int = 4_000_000
) -> StoreBufferResult:
    """All final-register outcomes under a store-buffer machine.

    ``fifo=True`` is TSO; ``fifo=False`` relaxes draining to per-address
    FIFO, which is PSO.
    """
    initial = (
        tuple(ArchThreadState() for _ in program.threads),
        _initial_memory(program),
        tuple(() for _ in program.threads),
    )
    stack = [initial]
    seen = {initial}
    outcomes = set()
    terminal = 0

    def push(state) -> None:
        if state not in seen:
            seen.add(state)
            stack.append(state)

    while stack:
        threads, memory, buffers = stack.pop()
        if len(seen) > max_states:
            raise EnumerationError(f"store-buffer search exceeded {max_states} states")
        progressed = False

        # Drain transitions.
        for tid, buffer in enumerate(buffers):
            for index in _drain_choices(buffer, fifo):
                progressed = True
                address, value = buffer[index]
                next_buffers = tuple(
                    buffer[:index] + buffer[index + 1 :] if b_tid == tid else other
                    for b_tid, other in enumerate(buffers)
                )
                push((threads, _write(memory, address, value), next_buffers))

        # Instruction transitions.
        for tid, state in enumerate(threads):
            thread = program.threads[tid]
            if state.done(thread):
                continue
            instruction = state.current(thread)
            buffer = buffers[tid]
            successor_memory = memory
            successor_buffer = buffer

            local = step_local(state, thread, instruction)
            if local is not None:
                successor_state = local
            elif isinstance(instruction, Fence):
                if instruction.kind in _DRAINING_FENCES and buffer:
                    continue  # blocked until the buffer drains
                successor_state = state.advance(state.pc + 1)
            elif isinstance(instruction, Load):
                address = resolve_address(state, instruction.addr)
                forwarded = _forward(buffer, address)
                value = forwarded[0] if forwarded is not None else _read(memory, address)
                successor_state = state.write(instruction.dst, value).advance(state.pc + 1)
            elif isinstance(instruction, Store):
                if instruction.release and buffer and not fifo:
                    # A release store must not overtake earlier stores;
                    # with a non-FIFO (PSO) buffer that means waiting for
                    # it to drain first.  (FIFO buffers preserve the order
                    # anyway.)
                    continue
                address = resolve_address(state, instruction.addr)
                value = state.operand(instruction.value)
                successor_buffer = buffer + ((address, value),)
                successor_state = state.advance(state.pc + 1)
            elif isinstance(instruction, Rmw):
                if buffer:
                    continue  # atomics drain the buffer first
                address = resolve_address(state, instruction.addr)
                old = _read(memory, address)
                successor_state, stored = rmw_apply(state, instruction, old)
                if stored is not None:
                    successor_memory = _write(memory, address, stored)
            else:  # pragma: no cover - exhaustive over the ISA
                raise EnumerationError(f"store-buffer machine cannot execute {instruction}")

            progressed = True
            next_threads = tuple(
                successor_state if index == tid else other
                for index, other in enumerate(threads)
            )
            next_buffers = tuple(
                successor_buffer if index == tid else other
                for index, other in enumerate(buffers)
            )
            push((next_threads, successor_memory, next_buffers))

        all_done = all(
            state.done(program.threads[tid]) for tid, state in enumerate(threads)
        )
        if all_done and not any(buffers):
            terminal += 1
            outcomes.add(final_registers(program, threads))
        elif not progressed:
            raise EnumerationError(
                "store-buffer machine deadlocked (fence waiting on a buffer "
                "that cannot drain?)"
            )

    return StoreBufferResult(
        frozenset(outcomes), states_explored=len(seen), terminal_states=terminal
    )


def run_tso(program: Program, max_states: int = 4_000_000) -> StoreBufferResult:
    """Operational TSO (FIFO store buffers with forwarding)."""
    return run_store_buffer(program, fifo=True, max_states=max_states)


def run_pso(program: Program, max_states: int = 4_000_000) -> StoreBufferResult:
    """Operational PSO (per-address-FIFO store buffers with forwarding)."""
    return run_store_buffer(program, fifo=False, max_states=max_states)
