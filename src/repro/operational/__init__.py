"""Operational reference machines: SC interleaver, TSO/PSO store buffers,
and the ≺-linearization dataflow machine for store-atomic relaxed models."""

from repro.operational.dataflow import DataflowResult, run_dataflow
from repro.operational.sc import SCResult, run_sc
from repro.operational.state import ArchThreadState, final_registers
from repro.operational.storebuffer import (
    StoreBufferResult,
    run_pso,
    run_store_buffer,
    run_tso,
)

__all__ = [
    "DataflowResult",
    "run_dataflow",
    "SCResult",
    "run_sc",
    "ArchThreadState",
    "final_registers",
    "StoreBufferResult",
    "run_pso",
    "run_store_buffer",
    "run_tso",
]
