"""Operational Sequential Consistency — the classic interleaving machine.

This is the paper's "operational view" of SC (Section 1): at each step
the next instruction of one running thread executes atomically against a
single monolithic memory.  The interleaving search explores every
scheduling choice with state memoization, producing the complete set of
final-register outcomes.

It serves as the *reference baseline*: the axiomatic enumerator under the
SC reordering table must produce exactly the same outcome set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EnumerationError
from repro.isa.instructions import Fence, Load, Rmw, Store
from repro.isa.program import Program
from repro.operational.state import (
    ArchThreadState,
    final_registers,
    resolve_address,
    rmw_apply,
    step_local,
)

#: Memory snapshots are stored as sorted (location, value) tuples so the
#: full machine state is hashable for memoization.
Memory = tuple[tuple[str, object], ...]


def _initial_memory(program: Program) -> Memory:
    return tuple(sorted((loc, program.initial_value(loc)) for loc in program.locations()))


def _read(memory: Memory, address: str):
    for location, value in memory:
        if location == address:
            return value
    raise EnumerationError(f"operational machine read from unknown location {address!r}")


def _write(memory: Memory, address: str, value) -> Memory:
    return tuple(
        (location, value if location == address else old) for location, old in memory
    )


@dataclass
class SCResult:
    """Outcome set plus exploration statistics."""

    outcomes: frozenset
    states_explored: int = 0
    terminal_states: int = 0


def run_sc(program: Program, max_states: int = 2_000_000) -> SCResult:
    """All final-register outcomes of ``program`` under interleaved SC."""
    initial = (
        tuple(ArchThreadState() for _ in program.threads),
        _initial_memory(program),
    )
    stack = [initial]
    seen = {initial}
    outcomes = set()
    terminal = 0

    while stack:
        threads, memory = stack.pop()
        if len(seen) > max_states:
            raise EnumerationError(f"SC interleaving exceeded {max_states} states")
        progressed = False
        for tid, state in enumerate(threads):
            thread = program.threads[tid]
            if state.done(thread):
                continue
            progressed = True
            instruction = state.current(thread)
            successor_memory = memory

            local = step_local(state, thread, instruction)
            if local is not None:
                successor_state = local
            elif isinstance(instruction, Fence):
                successor_state = state.advance(state.pc + 1)
            elif isinstance(instruction, Load):
                address = resolve_address(state, instruction.addr)
                value = _read(memory, address)
                successor_state = state.write(instruction.dst, value).advance(state.pc + 1)
            elif isinstance(instruction, Store):
                address = resolve_address(state, instruction.addr)
                value = state.operand(instruction.value)
                successor_memory = _write(memory, address, value)
                successor_state = state.advance(state.pc + 1)
            elif isinstance(instruction, Rmw):
                address = resolve_address(state, instruction.addr)
                old = _read(memory, address)
                successor_state, stored = rmw_apply(state, instruction, old)
                if stored is not None:
                    successor_memory = _write(memory, address, stored)
            else:  # pragma: no cover - exhaustive over the ISA
                raise EnumerationError(f"SC machine cannot execute {instruction}")

            next_threads = tuple(
                successor_state if index == tid else other
                for index, other in enumerate(threads)
            )
            next_state = (next_threads, successor_memory)
            if next_state not in seen:
                seen.add(next_state)
                stack.append(next_state)

        if not progressed:
            terminal += 1
            outcomes.add(final_registers(program, threads))

    return SCResult(frozenset(outcomes), states_explored=len(seen), terminal_states=terminal)
