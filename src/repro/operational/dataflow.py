"""An operational machine for store-atomic relaxed models.

The paper proves store-atomic executions serializable: every behavior is
some linearization of the thread-local ``≺`` orders executed against one
atomic memory.  Run forwards, that is an *operational* machine for any
store-atomic table model — WEAK included:

* at each step pick any instruction whose thread-local obligations are
  met: register operands ready, and every program-earlier instruction
  the reordering table orders before it already executed (same-address
  entries wait for the earlier address to be known),
* loads read the current memory; stores write it immediately; RMWs do
  both atomically; fences are no-ops once their ordered predecessors ran.

Exploring all choices with memoization yields the machine's outcome set.
The TAB-XVAL-style theorem checked by the test suite: this machine's
outcomes coincide **exactly** with the axiomatic enumerator's under the
same table, on the branch-free litmus tests and on random programs —
the operational/axiomatic equivalence for the paper's own model class.

Branches are not supported (weak models let loads speculate past
branches, which an explicit-state machine cannot express without
rollback machinery); use the axiomatic enumerator for branchy programs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EnumerationError, ReproError
from repro.isa.instructions import Compute, Fence, Instruction, Load, Rmw, Store, alu_eval
from repro.isa.operands import Const, Reg, Value
from repro.isa.program import Program
from repro.models.base import MemoryModel, OrderRequirement
from repro.models.registry import get_model


def _operands(instruction: Instruction):
    if isinstance(instruction, Compute):
        return instruction.args
    if isinstance(instruction, Load):
        return (instruction.addr,)
    if isinstance(instruction, Store):
        return (instruction.addr, instruction.value)
    if isinstance(instruction, Rmw):
        return (instruction.addr,) + instruction.args
    return ()


@dataclass(frozen=True)
class _ThreadState:
    """Immutable per-thread progress: per-instruction results.

    ``results[i]`` is None while instruction i has not executed, else a
    tuple ``(value,)`` (fences record ``(0,)``).
    """

    results: tuple[tuple[Value] | None, ...]

    def executed(self, index: int) -> bool:
        return self.results[index] is not None

    def with_result(self, index: int, value: Value) -> "_ThreadState":
        updated = list(self.results)
        updated[index] = (value,)
        return _ThreadState(tuple(updated))


@dataclass
class DataflowResult:
    outcomes: frozenset
    states_explored: int = 0
    terminal_states: int = 0


def run_dataflow(
    program: Program,
    model: MemoryModel | str = "weak",
    max_states: int = 4_000_000,
) -> DataflowResult:
    """All final-register outcomes of the ≺-linearization machine."""
    if isinstance(model, str):
        model = get_model(model)
    if model.store_load_bypass:
        raise ReproError(
            "the dataflow machine realizes store-atomic models; use the "
            "store-buffer machines for TSO/PSO"
        )
    if program.has_branches():
        raise ReproError("the dataflow machine requires branch-free programs")

    threads = program.threads
    # Precompute register producers: for thread t, instruction i, operand
    # position p -> producing instruction index (or None for constants /
    # unwritten registers).
    producers: list[list[tuple[int | None, ...]]] = []
    for thread in threads:
        last_writer: dict[str, int] = {}
        thread_producers = []
        for index, instruction in enumerate(thread.code):
            thread_producers.append(
                tuple(
                    last_writer.get(op.name) if isinstance(op, Reg) else None
                    for op in _operands(instruction)
                )
            )
            destination = instruction.dest()
            if destination is not None:
                last_writer[destination.name] = index
        producers.append(thread_producers)

    initial_memory = tuple(
        sorted((loc, program.initial_value(loc)) for loc in program.locations())
    )
    initial = (
        tuple(_ThreadState((None,) * len(thread.code)) for thread in threads),
        initial_memory,
    )

    def operand_value(state: _ThreadState, tid: int, index: int, position: int):
        operand = _operands(threads[tid].code[index])[position]
        if isinstance(operand, Const):
            return operand.value
        producer = producers[tid][index][position]
        if producer is None:
            return 0
        result = state.results[producer]
        return None if result is None else result[0]

    def address_of(state: _ThreadState, tid: int, index: int):
        instruction = threads[tid].code[index]
        if instruction.addr_operand() is None:
            return None
        return operand_value(state, tid, index, 0)

    def eligible(state: _ThreadState, tid: int, index: int) -> bool:
        instruction = threads[tid].code[index]
        if state.executed(index):
            return False
        for position in range(len(_operands(instruction))):
            if operand_value(state, tid, index, position) is None:
                return False
        my_address = address_of(state, tid, index)
        for earlier in range(index):
            requirement = model.requirement(threads[tid].code[earlier], instruction)
            if requirement is OrderRequirement.NONE:
                continue
            if requirement is OrderRequirement.ALWAYS:
                if not state.executed(earlier):
                    return False
                continue
            # SAME_ADDRESS: must know the earlier address to decide.
            if state.executed(earlier):
                continue
            earlier_address = address_of(state, tid, earlier)
            if earlier_address is None or earlier_address == my_address:
                return False
        return True

    def read(memory, address):
        for location, value in memory:
            if location == address:
                return value
        raise EnumerationError(f"dataflow machine read unknown location {address!r}")

    def write(memory, address, value):
        return tuple(
            (location, value if location == address else old)
            for location, old in memory
        )

    stack = [initial]
    seen = {initial}
    outcomes = set()
    terminal = 0

    while stack:
        states, memory = stack.pop()
        if len(seen) > max_states:
            raise EnumerationError(f"dataflow machine exceeded {max_states} states")
        progressed = False
        for tid, state in enumerate(states):
            for index, instruction in enumerate(threads[tid].code):
                if not eligible(state, tid, index):
                    continue
                progressed = True
                successor_memory = memory
                if isinstance(instruction, Fence):
                    value: Value = 0
                elif isinstance(instruction, Compute):
                    args = tuple(
                        operand_value(state, tid, index, position)
                        for position in range(len(instruction.args))
                    )
                    value = alu_eval(instruction.op, args)
                elif isinstance(instruction, Load):
                    value = read(memory, address_of(state, tid, index))
                elif isinstance(instruction, Store):
                    value = operand_value(state, tid, index, 1)
                    successor_memory = write(memory, address_of(state, tid, index), value)
                elif isinstance(instruction, Rmw):
                    address = address_of(state, tid, index)
                    old = read(memory, address)
                    args = tuple(
                        operand_value(state, tid, index, position)
                        for position in range(1, 1 + len(instruction.args))
                    )
                    stored = instruction.stored_value(old, args)
                    if stored is not None:
                        successor_memory = write(memory, address, stored)
                    value = old
                else:  # pragma: no cover - exhaustive
                    raise EnumerationError(f"cannot execute {instruction}")
                next_states = tuple(
                    state.with_result(index, value) if t == tid else other
                    for t, other in enumerate(states)
                )
                next_state = (next_states, successor_memory)
                if next_state not in seen:
                    seen.add(next_state)
                    stack.append(next_state)
        if not progressed:
            terminal += 1
            outcomes.add(_final_registers(program, states, producers))

    return DataflowResult(frozenset(outcomes), len(seen), terminal)


def _final_registers(program: Program, states, producers) -> frozenset:
    items = []
    for tid, thread in enumerate(program.threads):
        last_writer: dict[str, int] = {}
        for index, instruction in enumerate(thread.code):
            destination = instruction.dest()
            if destination is not None:
                last_writer[destination.name] = index
        for register, index in last_writer.items():
            result = states[tid].results[index]
            if result is not None:
                items.append(((thread.name, register), result[0]))
    return frozenset(items)
