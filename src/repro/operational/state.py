"""Shared thread-state stepping for the operational reference machines.

The operational machines (SC interleaver, TSO/PSO store-buffer machines)
execute instructions *in program order* within each thread; all their
relaxation lives in the memory subsystem.  This module provides the
common per-thread architectural state and the evaluation of thread-local
instructions, so the machines only implement their memory transitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.isa.instructions import (
    Branch,
    Compute,
    Instruction,
    Load,
    Rmw,
    Store,
    alu_eval,
)
from repro.isa.operands import Const, Operand, Reg, Value
from repro.isa.program import Program, Thread


@dataclass(frozen=True)
class ArchThreadState:
    """Immutable per-thread architectural state: PC + register file.

    Immutability keeps state hashing trivial for the interleaving search.
    Registers are stored as a sorted tuple of (name, value) pairs.
    """

    pc: int = 0
    regs: tuple[tuple[str, Value], ...] = ()

    def read(self, register: Reg) -> Value:
        for name, value in self.regs:
            if name == register.name:
                return value
        return 0  # unwritten registers read as integer 0

    def write(self, register: Reg, value: Value) -> "ArchThreadState":
        updated = dict(self.regs)
        updated[register.name] = value
        return ArchThreadState(self.pc, tuple(sorted(updated.items())))

    def advance(self, pc: int) -> "ArchThreadState":
        return ArchThreadState(pc, self.regs)

    def operand(self, operand: Operand) -> Value:
        if isinstance(operand, Const):
            return operand.value
        return self.read(operand)

    def done(self, thread: Thread) -> bool:
        return self.pc >= len(thread.code)

    def current(self, thread: Thread) -> Instruction:
        return thread.code[self.pc]


def resolve_address(state: ArchThreadState, operand: Operand) -> str:
    """Evaluate an address operand; addresses must be location names."""
    value = state.operand(operand)
    if not isinstance(value, str):
        raise ExecutionError(f"computed address {value!r} is not a memory-location name")
    return value


def step_local(
    state: ArchThreadState, thread: Thread, instruction: Instruction
) -> ArchThreadState | None:
    """Execute a thread-local (non-memory, non-fence) instruction.

    Returns the successor state, or None if the instruction touches
    memory / is a fence and must be handled by the machine.
    """
    if isinstance(instruction, Compute):
        values = tuple(state.operand(arg) for arg in instruction.args)
        result = alu_eval(instruction.op, values)
        return state.write(instruction.dst, result).advance(state.pc + 1)
    if isinstance(instruction, Branch):
        condition = state.operand(instruction.cond) if instruction.cond is not None else 1
        if instruction.taken(condition):
            return state.advance(thread.target_of(instruction))
        return state.advance(state.pc + 1)
    if isinstance(instruction, (Load, Store, Rmw)):
        return None
    return None  # Fence: machines decide


def rmw_apply(
    state: ArchThreadState, instruction: Rmw, old: Value
) -> tuple[ArchThreadState, Value | None]:
    """Apply an RMW: returns (state with dst written and pc advanced,
    value to store or None for a failed CAS)."""
    args = tuple(state.operand(arg) for arg in instruction.args)
    stored = instruction.stored_value(old, args)
    next_state = state.write(instruction.dst, old).advance(state.pc + 1)
    return next_state, stored


def final_registers(
    program: Program, states: tuple[ArchThreadState, ...]
) -> frozenset:
    """Final-register outcome in the same shape as the axiomatic
    enumerator's ``register_outcomes`` elements."""
    items = []
    for thread, state in zip(program.threads, states):
        for name, value in state.regs:
            items.append(((thread.name, name), value))
    return frozenset(items)
