"""Mixed-size memory accesses by desugaring (paper §8).

    "We assumed all reads and writes accessed fixed-size, aligned words;
    in practice, loads and stores occur at many granularities from a
    single byte to whole cache blocks.  A faithful model can potentially
    match a Load up with several Store operations, each providing a
    portion of the data being read."

A ``width``-byte location ``x`` is modeled as byte cells ``x#0 … x#w-1``
(little-endian).  A wide store writes each cell; a wide load reads each
cell and recombines the bytes with ALU ops — so the wide load's value
genuinely comes from *several* store operations, one per byte, exactly
the matching the paper describes.

Single-copy atomicity is optional and orthogonal: wrapping each wide
access in an :class:`~repro.tm.AtomicBlock` (reusing the transactional
machinery) restores it; without the blocks, racing wide accesses can
*tear*, observing bytes from different stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.isa.dsl import ProgramBuilder, ThreadBuilder
from repro.isa.instructions import FenceKind
from repro.isa.operands import Reg
from repro.isa.program import Program
from repro.tm.blocks import AtomicBlock

_BYTE = 256


def byte_cell(location: str, index: int) -> str:
    """The name of byte ``index`` of wide location ``location``."""
    return f"{location}#{index}"


def split_bytes(value: int, width: int) -> list[int]:
    """Little-endian byte decomposition; validates the value fits."""
    if not 0 <= value < _BYTE**width:
        raise ProgramError(f"value {value} does not fit in {width} byte(s)")
    return [(value >> (8 * k)) & 0xFF for k in range(width)]


def combine_bytes(cells: list[int]) -> int:
    return sum(byte << (8 * k) for k, byte in enumerate(cells))


@dataclass
class WideThread:
    """A thread builder with wide (multi-byte) memory operations.

    Wide operations record the atomic block covering their desugared
    instructions; :meth:`MultibyteBuilder.build` returns those blocks so
    callers can choose single-copy-atomic semantics (pass the blocks to
    :func:`repro.tm.enumerate_transactional`) or plain, tearing-prone
    semantics (ignore them).
    """

    inner: ThreadBuilder
    blocks: list[AtomicBlock]
    _position: int = 0
    _temp_counter: int = 0

    def _temp(self) -> str:
        self._temp_counter += 1
        return f"r_wide{self._temp_counter}"

    def _advance(self, count: int) -> None:
        self._position += count

    def wide_store(self, location: str, value: int | Reg, width: int) -> "WideThread":
        """Store ``value`` across ``width`` byte cells (little-endian)."""
        start = self._position
        if isinstance(value, Reg):
            # Extract bytes with mod/div chains on a running quotient.
            quotient = value.name
            for index in range(width):
                byte_reg = self._temp()
                self.inner.compute(byte_reg, "mod", Reg(quotient), _BYTE)
                self.inner.store(byte_cell(location, index), Reg(byte_reg))
                if index + 1 < width:
                    next_quotient = self._temp()
                    self.inner.compute(next_quotient, "div", Reg(quotient), _BYTE)
                    quotient = next_quotient
                self._advance(3 if index + 1 < width else 2)
        else:
            for index, byte in enumerate(split_bytes(value, width)):
                self.inner.store(byte_cell(location, index), byte)
                self._advance(1)
        self.blocks.append(AtomicBlock(self.inner.name, start, self._position))
        return self

    def wide_load(self, dst: str | Reg, location: str, width: int) -> "WideThread":
        """Load ``width`` byte cells and recombine them into ``dst``."""
        start = self._position
        byte_regs = []
        for index in range(width):
            byte_reg = self._temp()
            self.inner.load(byte_reg, byte_cell(location, index))
            byte_regs.append(byte_reg)
            self._advance(1)
        # dst = b0 + 256*b1 + 65536*b2 + ...
        accumulator = byte_regs[0]
        for index, byte_reg in enumerate(byte_regs[1:], start=1):
            scaled = self._temp()
            self.inner.compute(scaled, "mul", Reg(byte_reg), _BYTE**index)
            summed = self._temp()
            self.inner.compute(summed, "add", Reg(accumulator), Reg(scaled))
            accumulator = summed
            self._advance(2)
        destination = dst if isinstance(dst, Reg) else Reg(dst)
        self.inner.mov(destination, Reg(accumulator))
        self._advance(1)
        self.blocks.append(AtomicBlock(self.inner.name, start, self._position))
        return self

    def byte_store(self, location: str, index: int, value: int) -> "WideThread":
        """A single-byte store into one cell of a wide location."""
        self.inner.store(byte_cell(location, index), value)
        self._advance(1)
        return self

    def byte_load(self, dst: str | Reg, location: str, index: int) -> "WideThread":
        self.inner.load(dst, byte_cell(location, index))
        self._advance(1)
        return self

    def fence(self, kind: FenceKind = FenceKind.FULL) -> "WideThread":
        self.inner.fence(kind)
        self._advance(1)
        return self


@dataclass
class MultibyteBuilder:
    """Builds programs with wide accesses plus their atomicity blocks."""

    name: str = "multibyte"
    _builder: ProgramBuilder = field(init=False)
    _threads: list[WideThread] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self._builder = ProgramBuilder(self.name)

    def thread(self, name: str | None = None) -> WideThread:
        wide = WideThread(self._builder.thread(name), [])
        self._threads.append(wide)
        return wide

    def init_wide(self, location: str, value: int, width: int) -> "MultibyteBuilder":
        for index, byte in enumerate(split_bytes(value, width)):
            self._builder.init(byte_cell(location, index), byte)
        return self

    def build(self) -> tuple[Program, tuple[AtomicBlock, ...]]:
        """The desugared program and the single-copy-atomicity blocks."""
        program = self._builder.build()
        blocks = tuple(block for thread in self._threads for block in thread.blocks)
        return program, blocks
