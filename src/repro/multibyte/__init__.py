"""Mixed-size (multi-byte) memory accesses (paper §8 extension)."""

from repro.multibyte.access import (
    MultibyteBuilder,
    WideThread,
    byte_cell,
    combine_bytes,
    split_bytes,
)

__all__ = [
    "MultibyteBuilder",
    "WideThread",
    "byte_cell",
    "combine_bytes",
    "split_bytes",
]
