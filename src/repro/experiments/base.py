"""Experiment infrastructure: claims, results, node lookup helpers.

Each experiment module regenerates one paper artifact (a figure or a
derived table) and checks the paper's qualitative claims about it.  A
claim records what the paper asserts, what we measured, and whether they
agree — feeding both the test suite and EXPERIMENTS.md.
"""

from __future__ import annotations

import threading
import time
import traceback
import warnings
from dataclasses import dataclass, field

from repro.errors import ReproError, StuckBehaviorWarning
from repro.core.enumerate import EnumerationResult
from repro.core.execution import Execution
from repro.core.node import Node


@dataclass(frozen=True)
class Claim:
    """One checkable assertion from the paper."""

    description: str  #: what the paper claims
    expected: object  #: the paper's value
    observed: object  #: what we measured

    @property
    def holds(self) -> bool:
        return self.expected == self.observed

    def __str__(self) -> str:
        mark = "PASS" if self.holds else "FAIL"
        return f"[{mark}] {self.description}: expected {self.expected!r}, observed {self.observed!r}"


@dataclass
class ExperimentResult:
    """The outcome of regenerating one paper artifact."""

    experiment_id: str
    title: str
    claims: list[Claim] = field(default_factory=list)
    details: str = ""  #: rendered tables / graphs for the report

    def claim(self, description: str, expected: object, observed: object) -> Claim:
        entry = Claim(description, expected, observed)
        self.claims.append(entry)
        return entry

    @property
    def passed(self) -> bool:
        return all(claim.holds for claim in self.claims)

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"== {self.experiment_id}: {self.title} [{status}] =="]
        lines.extend(f"  {claim}" for claim in self.claims)
        return "\n".join(lines)


@dataclass
class ExperimentOutcome:
    """One experiment's quarantined batch outcome.

    A failing or crashing experiment becomes an ``ERROR`` row carrying
    its traceback instead of aborting the whole batch; notes collect
    engine warnings (e.g. stuck behaviors) observed during the run.
    """

    experiment_id: str
    title: str
    status: str  #: "PASS" | "FAIL" | "ERROR"
    result: ExperimentResult | None = None
    error: str = ""  #: traceback text (ERROR rows)
    attempts: int = 1
    duration_seconds: float = 0.0
    notes: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return self.status == "PASS"

    def summary(self) -> str:
        if self.result is not None:
            text = self.result.summary()
        else:
            first_line = self.error.strip().splitlines()[-1] if self.error else "?"
            text = f"== {self.experiment_id}: {self.title} [ERROR] ==\n  {first_line}"
        for note in self.notes:
            text += f"\n  [FAIL-NOTE] {note}"
        return text

    @staticmethod
    def from_result(result: ExperimentResult, **kwargs) -> "ExperimentOutcome":
        # A stuck-behavior note marks an engine bug, so it demotes an
        # otherwise-passing experiment.
        passed = result.passed and not kwargs.get("notes")
        return ExperimentOutcome(
            experiment_id=result.experiment_id,
            title=result.title,
            status="PASS" if passed else "FAIL",
            result=result,
            **kwargs,
        )


def is_transient(exc: BaseException) -> bool:
    """Classify a failure as transient (worth one retry): allocation or
    OS-level pressure, or anything flagged ``transient`` (the fault
    injector marks its exceptions so)."""
    return isinstance(exc, (MemoryError, OSError)) or bool(
        getattr(exc, "transient", False)
    )


def run_isolated(
    module,
    deadline_seconds: float | None = None,
    retries: int = 1,
) -> ExperimentOutcome:
    """Run one experiment module in isolation.

    The experiment executes in a worker thread so a hang is bounded by
    ``deadline_seconds`` (the thread is abandoned on timeout — Python
    cannot preempt it — and the batch moves on).  A transient failure is
    retried up to ``retries`` times; persistent failures and timeouts
    are quarantined as ``ERROR`` outcomes with the traceback attached.
    :class:`StuckBehaviorWarning` emitted during the run is surfaced as
    a FAIL-style note on the outcome.
    """
    experiment_id = getattr(module, "EXPERIMENT_ID", module.__name__.rsplit(".", 1)[-1])
    title = getattr(module, "TITLE", experiment_id)

    start = time.monotonic()
    attempts = 0
    last_error = ""
    while attempts <= retries:
        attempts += 1
        box: dict[str, object] = {}

        def target() -> None:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                try:
                    box["result"] = module.run()
                except BaseException as exc:  # quarantined, not re-raised
                    box["error"] = exc
                    box["traceback"] = traceback.format_exc()
                box["warnings"] = caught

        worker = threading.Thread(
            target=target, name=f"experiment-{experiment_id}", daemon=True
        )
        worker.start()
        worker.join(deadline_seconds)
        duration = time.monotonic() - start

        if worker.is_alive():
            return ExperimentOutcome(
                experiment_id=experiment_id,
                title=title,
                status="ERROR",
                error=(
                    f"TimeoutError: experiment exceeded its {deadline_seconds}s "
                    f"deadline (worker thread abandoned)"
                ),
                attempts=attempts,
                duration_seconds=duration,
            )

        notes = tuple(
            f"stuck behaviors reported: {w.message}"
            for w in box.get("warnings", ())
            if isinstance(w.message, StuckBehaviorWarning)
        )
        if "result" in box:
            return ExperimentOutcome.from_result(
                box["result"],
                attempts=attempts,
                duration_seconds=duration,
                notes=notes,
            )
        last_error = str(box.get("traceback", ""))
        if not is_transient(box.get("error")) or attempts > retries:
            break

    return ExperimentOutcome(
        experiment_id=experiment_id,
        title=title,
        status="ERROR",
        error=last_error,
        attempts=attempts,
        duration_seconds=time.monotonic() - start,
    )


@dataclass(frozen=True)
class QuarantinedItem:
    """Placeholder result for an item whose worker process died.

    With ``quarantine=True``, :func:`parallel_map` puts one of these in
    the poisoned item's slot instead of failing the whole run; ``error``
    says what happened and ``item`` identifies the work unit.
    """

    index: int
    item: object
    error: str

    def __str__(self) -> str:
        return f"[QUARANTINED item {self.index}: {self.error}]"


def _retry_in_fresh_pool(function, item):
    """Re-run one item in its own single-worker pool, so a poisoned item
    can only break its private pool — never the batch or this process."""
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=1) as pool:
        return pool.submit(function, item).result()


def parallel_map(function, items, jobs: int = 1, *, quarantine: bool = False) -> list:
    """Map ``function`` over ``items``, preserving order, optionally
    fanning the calls across ``jobs`` worker processes.

    ``jobs <= 1`` (or a single item) runs serially in-process with no
    pool overhead.  ``function`` must be a module-level callable and the
    items and results picklable — the batch runner and the ``--jobs``
    CLI paths satisfy this by shipping module names / (test, model) name
    pairs rather than live objects.

    A worker process dying (segfault, OOM kill, ``os._exit``) poisons a
    shared pool: every in-flight future raises ``BrokenProcessPool`` and
    naively the whole batch is lost.  Instead, the affected items are
    retried serially, each in its own fresh single-worker pool, so only
    the genuinely poisoned item fails again.  That item is then
    **quarantined**: with ``quarantine=True`` its slot holds a
    :class:`QuarantinedItem` describing the crash and every other result
    survives; by default a :class:`ReproError` naming the item is raised
    (still far better than ``BrokenProcessPool`` with no culprit).
    Ordinary exceptions propagate unchanged in both modes.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [function(item) for item in items]
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    results: list = [None] * len(items)
    needs_retry: list[int] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(function, item) for item in items]
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                needs_retry.append(index)

    # Retry pass: the crash poisoned the shared pool, so every item that
    # was in flight is suspect; re-run them one at a time in isolation.
    for index in needs_retry:
        try:
            results[index] = _retry_in_fresh_pool(function, items[index])
        except BrokenProcessPool:
            error = (
                f"worker process crashed on item {index} "
                f"({items[index]!r}) even in an isolated retry"
            )
            if not quarantine:
                raise ReproError(
                    f"parallel_map: {error}; re-run with quarantine=True "
                    f"to keep the surviving results"
                ) from None
            results[index] = QuarantinedItem(index, items[index], error)
    return results


def node_at(execution: Execution, thread_name: str, index: int) -> Node:
    """The dynamic node at program position ``index`` of the named thread.

    For the straight-line figure programs, dynamic index == static index.
    """
    tid = execution.program.thread_index(thread_name)
    for node in execution.graph.nodes:
        if node.tid == tid and node.index == index:
            return node
    raise ReproError(f"no node at {thread_name}[{index}]")


def executions_where(result: EnumerationResult, **register_values) -> list[Execution]:
    """Executions whose final registers match, e.g. ``r5=3`` (register
    names must be unique across threads, as in the figure programs)."""
    matching = []
    for execution in result.executions:
        registers = {reg: value for (_, reg), value in execution.final_registers().items()}
        if all(registers.get(name) == value for name, value in register_values.items()):
            matching.append(execution)
    return matching


def register_projection(result: EnumerationResult, names: tuple[str, ...]) -> frozenset:
    """The outcome set projected onto the given (globally unique) register
    names — tuples in ``names`` order, with None for never-written."""
    projected = set()
    for execution in result.executions:
        registers = {reg: value for (_, reg), value in execution.final_registers().items()}
        projected.add(tuple(registers.get(name) for name in names))
    return frozenset(projected)
