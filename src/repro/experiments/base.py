"""Experiment infrastructure: claims, results, node lookup helpers.

Each experiment module regenerates one paper artifact (a figure or a
derived table) and checks the paper's qualitative claims about it.  A
claim records what the paper asserts, what we measured, and whether they
agree — feeding both the test suite and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.core.enumerate import EnumerationResult
from repro.core.execution import Execution
from repro.core.node import Node


@dataclass(frozen=True)
class Claim:
    """One checkable assertion from the paper."""

    description: str  #: what the paper claims
    expected: object  #: the paper's value
    observed: object  #: what we measured

    @property
    def holds(self) -> bool:
        return self.expected == self.observed

    def __str__(self) -> str:
        mark = "PASS" if self.holds else "FAIL"
        return f"[{mark}] {self.description}: expected {self.expected!r}, observed {self.observed!r}"


@dataclass
class ExperimentResult:
    """The outcome of regenerating one paper artifact."""

    experiment_id: str
    title: str
    claims: list[Claim] = field(default_factory=list)
    details: str = ""  #: rendered tables / graphs for the report

    def claim(self, description: str, expected: object, observed: object) -> Claim:
        entry = Claim(description, expected, observed)
        self.claims.append(entry)
        return entry

    @property
    def passed(self) -> bool:
        return all(claim.holds for claim in self.claims)

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"== {self.experiment_id}: {self.title} [{status}] =="]
        lines.extend(f"  {claim}" for claim in self.claims)
        return "\n".join(lines)


def node_at(execution: Execution, thread_name: str, index: int) -> Node:
    """The dynamic node at program position ``index`` of the named thread.

    For the straight-line figure programs, dynamic index == static index.
    """
    tid = execution.program.thread_index(thread_name)
    for node in execution.graph.nodes:
        if node.tid == tid and node.index == index:
            return node
    raise ReproError(f"no node at {thread_name}[{index}]")


def executions_where(result: EnumerationResult, **register_values) -> list[Execution]:
    """Executions whose final registers match, e.g. ``r5=3`` (register
    names must be unique across threads, as in the figure programs)."""
    matching = []
    for execution in result.executions:
        registers = {reg: value for (_, reg), value in execution.final_registers().items()}
        if all(registers.get(name) == value for name, value in register_values.items()):
            matching.append(execution)
    return matching


def register_projection(result: EnumerationResult, names: tuple[str, ...]) -> frozenset:
    """The outcome set projected onto the given (globally unique) register
    names — tuples in ``names`` order, with None for never-written."""
    projected = set()
    for execution in result.executions:
        registers = {reg: value for (_, reg), value in execution.final_registers().items()}
        projected.add(tuple(registers.get(name) for name in names))
    return frozenset(projected)
