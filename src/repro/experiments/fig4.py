"""FIG4 — observers precede overwriting stores (Store Atomicity rule b).

Paper Figure 4:

    Thread A: S1 x,1; S2 x,2; Fence; L4 y
    Thread B: S3 y,3; S5 y,5; Fence; L6 x

"Observing a Store to y orders the Load before an overwriting Store":
when L4 observes S3 (which S5 later overwrites), rule b inserts L4 ⊑ S5,
so S1 ⊑ S2 ⊑ L6 and L6 cannot observe S1 (must read 2).  When L4 instead
observes S5, no overwriting store separates S5 from L6 and L6 may
observe either S1 or S2.
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model
from repro.experiments.base import ExperimentResult, executions_where, node_at
from repro.viz.ascii import render


def build_program():
    builder = ProgramBuilder("fig4")
    a = builder.thread("A")
    a.store("x", 1)  # S1
    a.store("x", 2)  # S2
    a.fence()
    a.load("r4", "y")  # L4
    b = builder.thread("B")
    b.store("y", 3)  # S3
    b.store("y", 5)  # S5
    b.fence()
    b.load("r6", "x")  # L6
    return builder.build()


S1, S2, L4 = ("A", 0), ("A", 1), ("A", 3)
S3, S5, L6 = ("B", 0), ("B", 1), ("B", 3)


def run() -> ExperimentResult:
    result = ExperimentResult("FIG4", "Rule b: observer precedes overwriting store")
    enumeration = enumerate_behaviors(build_program(), get_model("weak"))

    observed_s3 = executions_where(enumeration, r4=3)
    result.claim("some execution has L4 observe S3 (r4=3)", True, bool(observed_s3))

    edge_derived = all(
        execution.graph.before(node_at(execution, *L4).nid, node_at(execution, *S5).nid)
        for execution in observed_s3
    )
    result.claim("whenever r4=3, the closure derives L4 ⊑ S5 (edge b)", True, edge_derived)

    r6_values = {execution.final_registers()[("B", "r6")] for execution in observed_s3}
    result.claim("whenever r4=3, L6 cannot observe S1: r6 is always 2", {2}, r6_values)

    observed_s5 = executions_where(enumeration, r4=5)
    r6_relaxed = {execution.final_registers()[("B", "r6")] for execution in observed_s5}
    # The paper says "L6 can observe either S1 or S2"; the framework also
    # admits the init store of x (value 0), which the paper's prose elides.
    result.claim("when r4=5, L6 may observe S1, S2, or init", {0, 1, 2}, r6_relaxed)

    if observed_s3:
        result.details = render(observed_s3[0].graph)
    return result
