"""FIG10_11 — TSO is non-atomic; grey bypass edges capture it (paper §6).

Paper Figure 10:

    Thread A: S1 x,1; S2 x,2; S3 z,3; L4 z; L6 y
    Thread B: S5 y,5; S7 y,7; S8 z,8; L9 z; L10 x

The pictured TSO execution has ``L4 = 3`` and ``L9 = 8`` satisfied from
the local store buffers before those stores are globally visible, which
lets ``L6 = 5`` and ``L10 = 1`` observe the *first* stores of the other
thread.  Figure 11 examines it under three treatments:

* aggressive reordering (WEAK): permitted — "these rules are very
  lenient and permit any TSO execution",
* naive TSO (Store→Load relaxed, source edges kept in ``⊑``): the
  execution is *inconsistent* — Store Atomicity derives a contradiction,
  so simple globally-applicable reordering rules cannot capture TSO,
* TSO with correct bypass (grey edges excluded from ``⊑``): permitted.

We additionally validate the whole behavior set against the operational
store-buffer machine.
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model
from repro.operational.storebuffer import run_tso
from repro.experiments.base import ExperimentResult, executions_where, node_at


def build_program():
    builder = ProgramBuilder("fig10")
    a = builder.thread("A")
    a.store("x", 1)  # S1
    a.store("x", 2)  # S2
    a.store("z", 3)  # S3
    a.load("r4", "z")  # L4
    a.load("r6", "y")  # L6
    b = builder.thread("B")
    b.store("y", 5)  # S5
    b.store("y", 7)  # S7
    b.store("z", 8)  # S8
    b.load("r9", "z")  # L9
    b.load("r10", "x")  # L10
    return builder.build()


#: The execution of Figure 10.
PAPER_OUTCOME = frozenset(
    {(("A", "r4"), 3), (("A", "r6"), 5), (("B", "r9"), 8), (("B", "r10"), 1)}
)

S3, L4 = ("A", 2), ("A", 3)
S8, L9 = ("B", 2), ("B", 3)


def run() -> ExperimentResult:
    result = ExperimentResult("FIG10_11", "TSO bypass: a non-atomic memory model")
    program = build_program()

    weak = enumerate_behaviors(program, get_model("weak"))
    naive = enumerate_behaviors(program, get_model("naive-tso"))
    tso = enumerate_behaviors(program, get_model("tso"))
    sc = enumerate_behaviors(program, get_model("sc"))
    operational = run_tso(program)

    result.claim(
        "aggressive reordering (WEAK) permits the Figure 10 execution",
        True,
        PAPER_OUTCOME in weak.register_outcomes(),
    )
    result.claim(
        "naive TSO cannot produce it (the center graph is inconsistent)",
        False,
        PAPER_OUTCOME in naive.register_outcomes(),
    )
    result.claim(
        "TSO with grey bypass edges permits it (the right graph)",
        True,
        PAPER_OUTCOME in tso.register_outcomes(),
    )
    result.claim(
        "SC forbids it",
        False,
        PAPER_OUTCOME in sc.register_outcomes(),
    )
    result.claim(
        "axiomatic TSO equals the operational store-buffer machine",
        True,
        tso.register_outcomes() == operational.outcomes,
    )

    # Inspect the pictured TSO execution: both same-thread observations are
    # grey (bypass) edges excluded from ⊑.
    pictured = [
        execution
        for execution in executions_where(tso, r4=3, r6=5, r9=8, r10=1)
    ]
    grey_ok = all(
        (node_at(e, *S3).nid, node_at(e, *L4).nid) in e.graph.bypass_edges()
        and (node_at(e, *S8).nid, node_at(e, *L9).nid) in e.graph.bypass_edges()
        and not e.graph.before(node_at(e, *S3).nid, node_at(e, *L4).nid)
        for e in pictured
    )
    result.claim(
        "in the pictured execution S3→L4 and S8→L9 are grey edges outside ⊑",
        True,
        bool(pictured) and grey_ok,
    )

    result.details = (
        f"distinct register outcomes: weak={len(weak.register_outcomes())}, "
        f"naive-tso={len(naive.register_outcomes())}, "
        f"tso={len(tso.register_outcomes())}, sc={len(sc.register_outcomes())}, "
        f"operational-tso={len(operational.outcomes)}"
    )
    return result
