"""TAB-VALUESPEC — value speculation: safe vs naive (§5 future work).

Two claims are checked inside the framework:

1. **Safety of validated speculation / completeness of §4's
   restriction.** Letting loads resolve in any order (pure value
   prediction) with full Store Atomicity rollback yields EXACTLY the
   standard behavior set, on several programs and models.  This is the
   formal face of §4's remark that restricting Load resolution order
   (rather than restricting ``candidates(L)``) loses no legal
   executions.

2. **Martin et al. [23] reproduced.** The *naive* machine — dependents
   run on predicted values, commits are never re-examined — admits
   behaviors whose Store Atomicity closure is unsatisfiable.  Under the
   SC table these are Sequential Consistency violations: the
   message-passing stale read and the store-buffering both-zero outcome
   appear, each flagged illegal by the declarative checker.
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.core.valuespec import enumerate_value_speculation
from repro.litmus.library import get_test
from repro.models.registry import get_model
from repro.experiments.base import ExperimentResult

_PROGRAMS = ("SB", "MP", "LB", "CoRR")
_MODELS = ("sc", "weak")


def run() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-VALUESPEC", "Value speculation: validated is safe, naive violates SC"
    )

    mismatches = []
    for test_name in _PROGRAMS:
        program = get_test(test_name).program
        for model_name in _MODELS:
            standard = enumerate_behaviors(
                program, get_model(model_name)
            ).register_outcomes()
            speculated = enumerate_value_speculation(
                program, model_name, validate=True
            ).register_outcomes()
            if standard != speculated:
                mismatches.append(f"{test_name}/{model_name}")
    result.claim(
        "validated value speculation ≡ standard enumeration on "
        f"{len(_PROGRAMS)} programs × {len(_MODELS)} models",
        [],
        mismatches,
    )

    mp = get_test("MP").program
    naive_mp = enumerate_value_speculation(mp, "sc", validate=False)
    stale = frozenset({(("P1", "r1"), 1), (("P1", "r2"), 0)})
    result.claim(
        "naive machine admits the MP stale read under SC",
        True,
        stale in naive_mp.register_outcomes(),
    )
    result.claim(
        "the stale read is flagged illegal (closure unsatisfiable)",
        True,
        stale in naive_mp.violating_outcomes(),
    )
    result.claim(
        "naive machine's LEGAL outcomes equal standard SC on MP",
        enumerate_behaviors(mp, get_model("sc")).register_outcomes(),
        naive_mp.legal_outcomes(),
    )

    sb = get_test("SB").program
    naive_sb = enumerate_value_speculation(sb, "sc", validate=False)
    both_zero = frozenset({(("P0", "r1"), 0), (("P1", "r2"), 0)})
    result.claim(
        "naive machine admits (and flags) SB both-zero under SC",
        True,
        both_zero in naive_sb.violating_outcomes(),
    )

    result.details = (
        f"MP/sc naive: {len(naive_mp)} executions, "
        f"{naive_mp.stats.unvalidated} closure-unsatisfiable\n"
        f"SB/sc naive: {len(naive_sb)} executions, "
        f"{naive_sb.stats.unvalidated} closure-unsatisfiable"
    )
    return result
