"""TAB-OOO — an out-of-order core provably implements TSO (§4.2, §5).

§4.2: "Showing that a particular architecture obeys a particular memory
model is conceptually straightforward: simply identify all sources of
ordering constraints, make sure they are reflected in the ⊑ ordering…"

The architecture here is aggressive: loads issue speculatively out of
order (past unresolved branches' data, past stores with unknown
addresses — §5's address-aliasing speculation), stores drain from a FIFO
post-retirement buffer, and retirement re-validates every load, squashing
its dependents on a mispredict.  The claims:

* with replay, every outcome over hundreds of random schedules lies in
  the axiomatic TSO set — and the schedules reach ALL of TSO's outcomes
  on the sampled tests (exact conformance, not mere containment),
* speculation is really happening: replays fire,
* with replay disabled — the §5/Martin-et-al. naive machine — non-TSO
  outcomes appear (CoRR's inverted reads; MP's stale read),
* the leaked behaviors are flagged by the trace checker, closing the
  loop with TAB-TRACECHECK.
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.litmus.library import get_test
from repro.models.registry import get_model
from repro.ooo import run_ooo
from repro.experiments.base import ExperimentResult

TESTS = ("SB", "MP", "LB", "CoRR", "IRIW", "R", "dekker-nofence", "CAS-lock")
SEEDS = 120
#: IRIW has 15 distinct outcomes across 4 threads; full coverage needs a
#: deeper schedule sample.
_EXTRA_SEEDS = {"IRIW": 400}


def run() -> ExperimentResult:
    result = ExperimentResult("TAB-OOO", "Out-of-order core conformance to TSO")

    violations = []
    coverage_gaps = []
    total_replays = 0
    lines = []
    total_runs = 0
    for test_name in TESTS:
        program = get_test(test_name).program
        tso = enumerate_behaviors(program, get_model("tso")).register_outcomes()
        seeds = _EXTRA_SEEDS.get(test_name, SEEDS)
        seen = set()
        for seed in range(seeds):
            machine_run = run_ooo(program, seed=seed)
            total_replays += machine_run.replays
            total_runs += 1
            seen.add(machine_run.registers)
            if machine_run.registers not in tso:
                violations.append(f"{test_name} seed={seed}")
        if seen != tso:
            coverage_gaps.append(f"{test_name}: {len(seen)}/{len(tso)}")
        lines.append(
            f"{test_name:<16} {len(seen)}/{len(tso)} TSO outcomes reached over "
            f"{seeds} schedules"
        )

    result.claim(
        f"all {total_runs} replay-enabled runs produce TSO outcomes",
        [],
        violations,
    )
    result.claim(
        "random schedules reach the FULL TSO outcome set on every test",
        [],
        coverage_gaps,
    )
    result.claim("speculative replays actually fired", True, total_replays > 0)

    corr = get_test("CoRR").program
    corr_tso = enumerate_behaviors(corr, get_model("tso")).register_outcomes()
    leaked = set()
    for seed in range(300):
        machine_run = run_ooo(corr, seed=seed, replay_enabled=False)
        if machine_run.registers not in corr_tso:
            leaked.add(machine_run.registers)
    result.claim(
        "without retirement replay, the machine leaks non-TSO behaviors "
        "(naive load speculation, §5 / Martin et al.)",
        True,
        bool(leaked),
    )

    inverted = frozenset({(("P1", "r1"), 1), (("P1", "r2"), 0)})
    result.claim(
        "the leak includes CoRR's inverted reads (r1=1 before r2=0)",
        True,
        inverted in leaked,
    )

    # Coverage curves: how fast do random schedules exhaust the model?
    from repro.analysis.coverage import measure_coverage, ooo_machine

    curves = []
    for test_name in ("SB", "IRIW"):
        report = measure_coverage(
            get_test(test_name).program, ooo_machine, "tso", max_seeds=400
        )
        curves.append("coverage " + report.summary())
        if not report.complete or report.violations:
            result.claim(
                f"coverage run on {test_name} completes without violations",
                True,
                False,
            )

    result.details = (
        "\n".join(lines)
        + f"\ntotal replays: {total_replays}\n"
        + "\n".join(curves)
    )
    return result
