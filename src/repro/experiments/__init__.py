"""Experiments regenerating every figure and table of the paper.

Modules:

* ``fig1``   — the Weak Reordering Axioms table (Figure 1)
* ``fig3``   — Store Atomicity rule a (Figure 3)
* ``fig4``   — Store Atomicity rule b (Figure 4)
* ``fig5``   — Store Atomicity rule c (Figure 5)
* ``fig7``   — closure cascade across locations (Figure 7)
* ``fig89``  — address-aliasing speculation (Figures 8 & 9)
* ``fig1011``— non-atomic TSO with grey bypass edges (Figures 10 & 11)
* ``litmus_matrix`` — the litmus × model table (TAB-LITMUS)
* ``xval``   — axiomatic vs operational equivalence (TAB-XVAL)
* ``coherence_exp`` — MSI conformance (TAB-COHERENCE, §4.2)
* ``wellsync_exp``  — well-synchronization discipline (TAB-WSYNC, §8)
* ``scaling`` — enumeration cost (TAB-SCALE)
* ``report`` — run everything, emit EXPERIMENTS.md
"""

from repro.experiments.base import Claim, ExperimentResult, executions_where, node_at

__all__ = ["Claim", "ExperimentResult", "executions_where", "node_at"]
