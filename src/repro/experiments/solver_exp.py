"""TAB-SOLVER — constraint solver vs axiomatic enumeration.

Cross-validates the CDCL/AllSAT decision procedure
(:mod:`repro.analysis.solver`) against the reference enumerator on the
full litmus library under {sc, tso, pso, weak}: the behavior *sets*
must be byte-identical under ``loadstore_key`` — same final memory,
same register results, same projected ⊑ relation, same bypass
identities.  Equality here is the strongest available evidence that
the SAT encoding is a sound relaxation and that replay-through-the-
engine recovers exactly the real behaviors, nothing more.

A second set of claims exercises the unsat-core explainer on the
canonical forbidden/reachable outcomes: a forbidden outcome must come
back with a *minimal* violated-axiom core and a cycle witness, a
reachable one with a concrete witness execution.
"""

from __future__ import annotations

from repro.analysis.solver import explain_forbidden, solve_behaviors_with_stats
from repro.core.enumerate import enumerate_behaviors
from repro.experiments.base import ExperimentResult
from repro.litmus.library import all_tests, get_test
from repro.models.registry import get_model

_MODELS = ("sc", "tso", "pso", "weak")

#: (test, model, paper verdict) — the canonical explainer checks.
_EXPLAIN_CASES = (
    ("SB", "sc", True),
    ("SB", "tso", False),
    ("SB+fences", "tso", True),
    ("MP", "tso", True),
    ("MP", "weak", False),
    ("MP+fences", "weak", True),
)


def run() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-SOLVER", "SAT/AllSAT constraint solver vs axiomatic enumeration"
    )
    tests = all_tests()
    lines = []
    for model_name in _MODELS:
        model = get_model(model_name)
        mismatched = []
        proposals = feasible = 0
        for test in tests:
            enumerated = enumerate_behaviors(test.program, model)
            solved, stats = solve_behaviors_with_stats(test.program, model)
            proposals += stats.proposals
            feasible += stats.feasible
            reference = sorted(
                repr(e.loadstore_key()) for e in enumerated.executions
            )
            candidate = sorted(
                repr(e.loadstore_key()) for e in solved.executions
            )
            if reference != candidate or not (enumerated.complete and solved.complete):
                mismatched.append(test.name)
            lines.append(
                f"{test.name:<16} {model_name:<5} behaviors={len(candidate):<4} "
                f"proposals={stats.proposals:<5} infeasible={stats.infeasible:<4} "
                f"{'==' if test.name not in mismatched else 'DIFFER'}"
            )
        result.claim(
            f"{model_name}: solver == enumerator (loadstore_key) on all "
            f"{len(tests)} litmus tests",
            [],
            mismatched,
        )
        lines.append(
            f"-- {model_name}: {proposals} SAT proposals, "
            f"{proposals - feasible} relaxation artifacts rejected by replay"
        )
    for test_name, model_name, expect_forbidden in _EXPLAIN_CASES:
        explanation = explain_forbidden(get_test(test_name), model_name)
        verdict = "forbidden" if explanation.forbidden else "reachable"
        evidence_ok = (
            bool(explanation.core) and explanation.cycle is not None
            if explanation.forbidden
            else explanation.witness is not None
        )
        result.claim(
            f"explain {test_name}/{model_name}: "
            f"{'forbidden with minimal core + cycle' if expect_forbidden else 'reachable with witness'}",
            ("forbidden" if expect_forbidden else "reachable", True),
            (verdict, evidence_ok),
        )
        lines.append(
            f"explain {test_name:<12} {model_name:<5} {verdict:<9} "
            + (
                f"core={len(explanation.core)} axioms, cycle={len(explanation.cycle or [])} edges"
                if explanation.forbidden
                else "witness found"
            )
        )
    result.details = "\n".join(lines)
    return result
