"""TAB-LITMUS — the litmus-test × memory-model outcome matrix.

The paper's framework claims "it is easy to experiment with a broad range
of memory models simply by changing the requirements for instruction
reordering".  This experiment runs the full classic litmus library under
SC / TSO / PSO / WEAK / WEAK-CORR and checks every verdict against the
literature's expectations, plus the model-strength inclusion chain
SC ⊆ TSO ⊆ PSO ⊆ WEAK on outcome sets.
"""

from __future__ import annotations

from repro.analysis.compare import check_inclusion_chain
from repro.litmus.library import all_tests
from repro.litmus.runner import format_matrix, run_matrix
from repro.experiments.base import ExperimentResult

MODELS = ("sc", "tso", "pso", "weak", "weak-corr")
CHAIN = ("sc", "tso", "pso", "weak")


def run() -> ExperimentResult:
    result = ExperimentResult("TAB-LITMUS", "Litmus-test × model outcome matrix")
    tests = all_tests()
    verdicts = run_matrix(tests, MODELS)

    mismatches = [v for v in verdicts if v.matches_expectation is False]
    result.claim(
        f"all {len(verdicts)} verdicts match the literature's expectations",
        0,
        len(mismatches),
    )
    corr_divergence = [
        v
        for v in verdicts
        if v.test.name == "CoRR" and v.model.name in ("weak", "weak-corr")
    ]
    result.claim(
        "CoRR discriminates weak (observable) from weak-corr (forbidden)",
        {("weak", True), ("weak-corr", False)},
        {(v.model.name, v.holds) for v in corr_divergence},
    )

    chain = check_inclusion_chain([t.program for t in tests], CHAIN)
    result.claim(
        "outcome inclusion chain sc ⊆ tso ⊆ pso ⊆ weak holds on every test",
        (),
        chain.violations,
    )

    result.details = format_matrix(verdicts)
    return result
