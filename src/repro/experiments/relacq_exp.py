"""TAB-RELACQ — acquire/release access annotations as half fences.

The paper's conclusion calls for "an ISA specification which permits
maximum flexibility in implementation and yet provides an easy to
understand memory model".  Modern ISAs answer with per-access
acquire/release annotations; this experiment adds them to the framework
(they compose with any reordering table as half fences) and checks the
classic discriminations:

* release+acquire fix message passing on every model,
* they do NOT fix store buffering (RA is strictly weaker than SC),
* acquire loads supply exactly the load-store order LB needs,
* a release-store/acquire-CAS lock hands off its protected data,
* the annotated programs still cross-validate against the operational
  store-buffer machines (a PSO release store waits for the buffer).
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.litmus.library import get_test
from repro.litmus.runner import run_litmus
from repro.models.registry import get_model
from repro.operational.storebuffer import run_pso, run_tso
from repro.experiments.base import ExperimentResult

MODELS = ("sc", "tso", "pso", "weak")


def run() -> ExperimentResult:
    result = ExperimentResult("TAB-RELACQ", "Acquire/release annotations")

    mp_ra = get_test("MP+ra")
    result.claim(
        "MP+ra forbidden under every model",
        {name: False for name in MODELS},
        {name: run_litmus(mp_ra, name).holds for name in MODELS},
    )
    result.claim(
        "plain MP is observable under WEAK (the annotations did the work)",
        True,
        run_litmus(get_test("MP"), "weak").holds,
    )

    sb_ra = get_test("SB+ra")
    result.claim(
        "SB+ra stays observable under TSO/PSO/WEAK (RA < SC)",
        {"sc": False, "tso": True, "pso": True, "weak": True},
        {name: run_litmus(sb_ra, name).holds for name in MODELS},
    )

    lb_acq = get_test("LB+acq")
    result.claim(
        "LB+acq forbidden under WEAK (acquire supplies load→store order)",
        False,
        run_litmus(lb_acq, "weak").holds,
    )

    handoff = get_test("lock-handoff")
    result.claim(
        "lock handoff: an acquiring taker always sees the protected data",
        {name: False for name in MODELS},
        {name: run_litmus(handoff, name).holds for name in MODELS},
    )

    mismatch = []
    for test_name in ("MP+ra", "SB+ra"):
        program = get_test(test_name).program
        for model_name, machine in (("tso", run_tso), ("pso", run_pso)):
            axiomatic = enumerate_behaviors(
                program, get_model(model_name)
            ).register_outcomes()
            if axiomatic != machine(program).outcomes:
                mismatch.append(f"{test_name}/{model_name}")
    result.claim(
        "annotated programs: axiomatic ≡ operational store-buffer machines",
        [],
        mismatch,
    )
    return result
