"""TAB-FENCESYNTH — minimal fences per (test, model), synthesized.

Shasha & Snir's delay-set question run backwards through the enumerator:
how many fences — and where — does each classic idiom need under each
model?  The folklore answers fall out exactly:

* SB needs one fence per thread under everything weaker than SC,
* MP needs two fences under WEAK but only the writer-side fence under
  PSO (reader loads are already ordered there),
* test R needs exactly P1's store→load fence on TSO,
* IRIW needs both reader-side fences under WEAK and nothing else,
* fully relaxed LB is repaired by either thread's load→store fences.
"""

from __future__ import annotations

from repro.analysis.fencesynth import FenceSite, synthesize_fences
from repro.litmus.library import get_test
from repro.experiments.base import ExperimentResult

EXPECTED = {
    ("SB", "weak"): ((FenceSite("P0", 1), FenceSite("P1", 1)),),
    ("SB", "tso"): ((FenceSite("P0", 1), FenceSite("P1", 1)),),
    ("MP", "weak"): ((FenceSite("P0", 1), FenceSite("P1", 1)),),
    ("MP", "pso"): ((FenceSite("P0", 1),),),
    ("R", "tso"): ((FenceSite("P1", 1),),),
    ("IRIW", "weak"): ((FenceSite("P2", 1), FenceSite("P3", 1)),),
    ("LB", "weak"): ((FenceSite("P0", 1), FenceSite("P1", 1)),),
}


def run() -> ExperimentResult:
    result = ExperimentResult("TAB-FENCESYNTH", "Minimal fence synthesis")
    lines = []
    for (test_name, model_name), expected_solutions in EXPECTED.items():
        synthesis = synthesize_fences(get_test(test_name), model_name)
        lines.append(synthesis.summary())
        result.claim(
            f"{test_name} under {model_name}: minimal fences are "
            f"{[tuple(map(str, s)) for s in expected_solutions]}",
            sorted(expected_solutions),
            sorted(tuple(solution) for solution in synthesis.solutions),
        )

    already = synthesize_fences(get_test("SB"), "sc")
    result.claim("SB under SC needs no fences at all", 0, already.fence_count)

    mp_tso = synthesize_fences(get_test("MP"), "tso")
    result.claim("MP under TSO needs no fences", 0, mp_tso.fence_count)

    result.details = "\n".join(lines)
    return result
