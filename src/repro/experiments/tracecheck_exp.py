"""TAB-TRACECHECK — post-mortem trace checking and the TSOtool gap (§7).

Validates the trace checker and reproduces (and sharpens) the paper's
remark about TSOtool:

    "TSOtool constructs a graph representing an observed execution, and
    uses properties a and b from Store Atomicity to check for violations
    of Total Store Order.  They do not formalize or check property c;
    indeed, they give an example similar to Figure 5 which they accept
    even though it violates TSO."

Findings checked here:

1. The checker discriminates models: the SB relaxed trace is rejected
   under SC and accepted under WEAK.
2. **Soundness and completeness**: on small programs, a trace is
   accepted by the full (abc) checker iff the behavior enumerator can
   realize its load values — verified exhaustively over all load-value
   combinations of SB and MP.
3. A single Figure 5 instance is NOT an a/b-vs-c gap witness: when a
   rule-c consequence is violated *directly*, iterated rules a and b
   already derive the contradiction (the experiment proves this
   empirically over the whole fig5 trace family).
4. The gap is real one level up: the **double Figure 5** — two
   interlocked instances whose rule-c edges form a cycle — is accepted
   by the a/b checker yet rejected by the full checker, and the
   enumerator confirms the outcome is indeed illegal.  This is the
   reproduction of TSOtool's unsoundness, made precise.
"""

from __future__ import annotations

from itertools import product

from repro.core.enumerate import enumerate_behaviors
from repro.analysis.tracecheck import Trace, TraceOp, check_trace
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model
from repro.experiments.base import ExperimentResult

S, L, F = TraceOp.store, TraceOp.load, TraceOp.fence


def sb_trace(r1: int, r2: int) -> Trace:
    return Trace(
        (
            ("P0", (S("x", 1), L("y", r1))),
            ("P1", (S("y", 1), L("x", r2))),
        )
    )


def fig5_trace(l3: int, l5: int, l7: int, l9: int) -> Trace:
    return Trace(
        (
            ("A", (S("x", 1), F(), L("y", l3), L("y", l5))),
            ("B", (S("y", 2), F(), S("z", 6))),
            ("C", (S("y", 4), F(), L("z", l7), F(), S("x", 8), L("x", l9))),
        )
    )


def double_fig5_trace() -> Trace:
    """Two interlocked Figure 5 instances: each pattern's rule-c edge
    orders the other's detector, forming a cycle only rule c can see."""
    return Trace(
        (
            ("B1", (S("y1", 2), F(), S("z1", 6))),
            ("B2", (S("y2", 2), F(), S("z2", 6))),
            ("C1", (S("y1", 4), F(), L("z1", 6), F(), L("y2", 2), L("y2", 4))),
            ("C2", (S("y2", 4), F(), L("z2", 6), F(), L("y1", 2), L("y1", 4))),
        )
    )


def build_double_fig5_program():
    builder = ProgramBuilder("double-fig5")
    for index in ("1", "2"):
        writer = builder.thread(f"B{index}")
        writer.store(f"y{index}", 2)
        writer.fence()
        writer.store(f"z{index}", 6)
    for index, other in (("1", "2"), ("2", "1")):
        reader = builder.thread(f"C{index}")
        reader.store(f"y{index}", 4)
        reader.fence()
        reader.load(f"r{index}z", f"z{index}")
        reader.fence()
        reader.load(f"r{index}a", f"y{other}")
        reader.load(f"r{index}b", f"y{other}")
    return builder.build()


def _sb_program():
    builder = ProgramBuilder("SB")
    p0 = builder.thread("P0")
    p0.store("x", 1)
    p0.load("r1", "y")
    p1 = builder.thread("P1")
    p1.store("y", 1)
    p1.load("r2", "x")
    return builder.build()


def run() -> ExperimentResult:
    result = ExperimentResult("TAB-TRACECHECK", "Trace checking and the TSOtool gap")

    relaxed = sb_trace(0, 0)
    result.claim(
        "SB relaxed trace rejected under SC", False, check_trace(relaxed, "sc").accepted
    )
    result.claim(
        "SB relaxed trace accepted under WEAK", True, check_trace(relaxed, "weak").accepted
    )

    # Completeness/soundness sweep: acceptance ⟺ enumerability, for every
    # load-value combination of SB under both models.
    mismatch = []
    for model_name in ("sc", "weak"):
        outcomes = enumerate_behaviors(
            _sb_program(), get_model(model_name)
        ).register_outcomes()
        realizable = {
            (dict(outcome)[("P0", "r1")], dict(outcome)[("P1", "r2")])
            for outcome in outcomes
        }
        for r1, r2 in product((0, 1), repeat=2):
            accepted = check_trace(sb_trace(r1, r2), model_name).accepted
            if accepted != ((r1, r2) in realizable):
                mismatch.append((model_name, r1, r2))
    result.claim(
        "checker acceptance ⟺ enumerator realizability (all SB value combos, "
        "sc and weak)",
        [],
        mismatch,
    )

    # A single Figure 5 is not a gap witness: rules a&b catch every
    # illegal combination in the family.
    single_gap = []
    for l3, l5, l7, l9 in product((0, 2, 4), (0, 2, 4), (0, 6), (0, 1, 8)):
        trace = fig5_trace(l3, l5, l7, l9)
        ab = check_trace(trace, "weak", rules="ab").accepted
        abc = check_trace(trace, "weak", rules="abc").accepted
        if ab != abc:
            single_gap.append((l3, l5, l7, l9))
    result.claim(
        "no single-Figure-5 trace separates rules ab from abc (a directly "
        "violated c-consequence is derivable from iterated a&b)",
        [],
        single_gap,
    )

    # The double Figure 5 IS the gap witness.
    witness = double_fig5_trace()
    ab_verdict = check_trace(witness, "weak", rules="ab")
    abc_verdict = check_trace(witness, "weak", rules="abc")
    result.claim(
        "double Figure 5: the a/b-only (TSOtool-style) checker ACCEPTS",
        True,
        ab_verdict.accepted,
    )
    result.claim(
        "double Figure 5: the full checker (with rule c) REJECTS",
        False,
        abc_verdict.accepted,
    )
    target = frozenset(
        {
            (("C1", "r1z"), 6),
            (("C1", "r1a"), 2),
            (("C1", "r1b"), 4),
            (("C2", "r2z"), 6),
            (("C2", "r2a"), 2),
            (("C2", "r2b"), 4),
        }
    )
    enumerable = target in enumerate_behaviors(
        build_double_fig5_program(), get_model("weak")
    ).register_outcomes()
    result.claim(
        "the enumerator confirms the double-Figure-5 outcome is illegal",
        False,
        enumerable,
    )

    result.details = (
        f"double-fig5 ab : {ab_verdict}\n"
        f"double-fig5 abc: {abc_verdict}\n"
        "interpretation: property c is redundant for checking a directly "
        "observed violation, but necessary once two c-derived edges must "
        "combine — the precise shape of TSOtool's unsoundness."
    )
    return result
