"""TAB-CYCLES — critical-cycle test synthesis (Shasha & Snir via diy).

The framework is "parameterized by a set of reordering rules; it is easy
to experiment with a broad range of memory models".  This experiment
turns that around: from a *cycle of relaxations* it synthesizes a litmus
test and predicts its verdict under every model purely from the
reordering table —

    observable under M  ⟺  some plain Pod edge of the cycle is
    relaxable under M

— then validates every prediction against the full enumerator.  The
catalogue covers the canonical shapes (SB, MP, LB, 2+2W, IRIW, R, S,
Z6.*) plus fenced variants, 4 models each.
"""

from __future__ import annotations

from repro.litmus.generator import EdgeKindSpec as E
from repro.litmus.generator import generate, predict_verdict
from repro.litmus.runner import run_litmus
from repro.experiments.base import ExperimentResult

CATALOGUE = {
    "gen-SB": [E.FRE, E.POD_WR, E.FRE, E.POD_WR],
    "gen-SB+ff": [E.FRE, E.FEN_WR, E.FRE, E.FEN_WR],
    "gen-MP": [E.POD_WW, E.RFE, E.POD_RR, E.FRE],
    "gen-MP+wf": [E.FEN_WW, E.RFE, E.POD_RR, E.FRE],
    "gen-MP+ff": [E.FEN_WW, E.RFE, E.FEN_RR, E.FRE],
    "gen-LB": [E.POD_RW, E.RFE, E.POD_RW, E.RFE],
    "gen-2+2W": [E.POD_WW, E.WSE, E.POD_WW, E.WSE],
    "gen-IRIW": [E.RFE, E.POD_RR, E.FRE, E.RFE, E.POD_RR, E.FRE],
    "gen-IRIW+ff": [E.RFE, E.FEN_RR, E.FRE, E.RFE, E.FEN_RR, E.FRE],
    "gen-R": [E.POD_WW, E.WSE, E.POD_WR, E.FRE],
    "gen-S": [E.POD_WW, E.RFE, E.POD_RW, E.WSE],
    "gen-W+RWC": [E.RFE, E.POD_RR, E.FRE, E.POD_WR, E.FRE],
    "gen-Z6.3": [E.POD_WW, E.RFE, E.POD_RW, E.WSE, E.POD_WW, E.WSE],
}

MODELS = ("sc", "tso", "pso", "weak")


def run() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-CYCLES", "Critical-cycle synthesis with predicted verdicts"
    )
    mismatches = []
    lines = [f"{'cycle':<14}" + "".join(f"{m:>6}" for m in MODELS)]
    sc_observable = []
    for name, cycle in CATALOGUE.items():
        generated = generate(cycle, name)
        row = f"{name:<14}"
        for model_name in MODELS:
            predicted = predict_verdict(generated, model_name)
            observed = run_litmus(generated.test, model_name).holds
            row += f"{'Yes' if observed else 'no':>6}"
            if predicted != observed:
                mismatches.append(f"{name}/{model_name}")
            if model_name == "sc" and observed:
                sc_observable.append(name)
        lines.append(row)

    result.claim(
        f"table-derived predictions match the enumerator on all "
        f"{len(CATALOGUE)} cycles × {len(MODELS)} models",
        [],
        mismatches,
    )
    result.claim(
        "no critical cycle is observable under SC (Shasha & Snir)",
        [],
        sc_observable,
    )
    fully_fenced = [name for name in CATALOGUE if "ff" in name]
    fenced_observable = [
        name
        for name in fully_fenced
        if any(run_litmus(generate(CATALOGUE[name], name).test, m).holds for m in MODELS)
    ]
    result.claim(
        "fully fenced cycles are forbidden under every model "
        "(communication edges are global: Store Atomicity)",
        [],
        fenced_observable,
    )
    result.details = "\n".join(lines)
    return result
