"""FIG8_9 — address-aliasing speculation adds new behaviors (paper §5).

Paper Figure 8:

    Thread A: S1 x,w; Fence; S2 y,2; S4 y,4; Fence; S5 x,z
    Thread B: L3 y; Fence; r6 = L6 x; S7 [r6],7; r8 = L8 y

Location ``x`` holds a *pointer*.  ``S7`` stores through ``r6``, so
whether ``S7`` and ``L8`` alias is data-dependent.  Non-speculatively,
L8 may not be reordered until the instruction producing S7's address
(L6) has executed — the subtle ``L6 ≺ L8`` dependency — so in behaviors
with ``source(L3)=S2`` and ``source(L6)=S5`` (``r6=z``), the chain
``S2 ⊑ S4 ⊑ S5 ⊑ L6 ⊑ L8`` forbids ``r8 = 2``.

With aliasing speculation the dependency is dropped; L8 may resolve
before L6 and observe S2 (Figure 9, rightmost graph) — a *new* behavior,
while every non-speculative behavior remains valid (middle graph).
Executions where the prediction fails (the addresses do alias after all)
are rolled back, i.e. discarded by the enumerator.
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.isa.dsl import ProgramBuilder
from repro.isa.operands import Reg
from repro.models.registry import get_model
from repro.experiments.base import ExperimentResult, executions_where, register_projection


def build_program():
    builder = ProgramBuilder("fig8")
    # x starts out holding a valid pointer (to w), as the paper's pointer
    # idiom presumes.
    builder.init("x", "w")
    a = builder.thread("A")
    a.store("x", "w")  # S1 x,w
    a.fence()
    a.store("y", 2)  # S2
    a.store("y", 4)  # S4
    a.fence()
    a.store("x", "z")  # S5 x,z
    b = builder.thread("B")
    b.load("r3", "y")  # L3
    b.fence()
    b.load("r6", "x")  # L6 — loads the pointer
    b.store(Reg("r6"), 7)  # S7 [r6],7 — store through the pointer
    b.load("r8", "y")  # L8
    return builder.build()


def build_aliasing_program():
    """A variant where the pointer CAN point at ``y`` (S5 x,y), so the
    no-alias prediction is sometimes wrong and speculation must roll back
    (§5.2: "L8 and any instructions which depend upon it must be thrown
    away and re-tried")."""
    builder = ProgramBuilder("fig8-alias")
    builder.init("x", "w")
    a = builder.thread("A")
    a.store("x", "w")
    a.fence()
    a.store("y", 2)
    a.store("y", 4)
    a.fence()
    a.store("x", "y")  # the pointer now aliases location y
    b = builder.thread("B")
    b.load("r3", "y")
    b.fence()
    b.load("r6", "x")
    b.store(Reg("r6"), 7)
    b.load("r8", "y")
    return builder.build()


_REGS = ("r3", "r6", "r8")


def run() -> ExperimentResult:
    result = ExperimentResult(
        "FIG8_9", "Address-aliasing speculation introduces new behaviors"
    )
    program = build_program()
    nonspec = enumerate_behaviors(program, get_model("weak"))
    spec = enumerate_behaviors(program, get_model("weak-spec"))

    nonspec_outcomes = register_projection(nonspec, _REGS)
    spec_outcomes = register_projection(spec, _REGS)

    pictured_nonspec = executions_where(nonspec, r3=2, r6="z")
    r8_nonspec = {e.final_registers()[("B", "r8")] for e in pictured_nonspec}
    result.claim(
        "non-speculative: with r3=2 and r6=z, L8 cannot observe S2 (r8=4 only)",
        {4},
        r8_nonspec,
    )

    new_behavior = bool(executions_where(spec, r3=2, r6="z", r8=2))
    result.claim(
        "speculative: the new behavior r3=2, r6=z, r8=2 exists (Fig 9 right)",
        True,
        new_behavior,
    )
    result.claim(
        "every non-speculative behavior remains valid under speculation",
        True,
        nonspec_outcomes <= spec_outcomes,
    )
    result.claim(
        "speculation strictly enlarges the behavior set",
        True,
        spec_outcomes > nonspec_outcomes,
    )
    # In the paper's program the pointer is never y, so predictions never
    # fail; the aliasing variant makes the prediction wrong in some
    # behaviors and exercises the rollback path.
    alias_program = build_aliasing_program()
    alias_nonspec = enumerate_behaviors(alias_program, get_model("weak"))
    alias_spec = enumerate_behaviors(alias_program, get_model("weak-spec"))
    result.claim(
        "aliasing variant: failed speculations are rolled back",
        True,
        alias_spec.stats.rolled_back > 0,
    )
    result.claim(
        "aliasing variant: non-speculative behaviors all remain valid",
        True,
        register_projection(alias_nonspec, _REGS)
        <= register_projection(alias_spec, _REGS),
    )

    extra = sorted(spec_outcomes - nonspec_outcomes)
    result.details = (
        f"non-speculative outcomes (r3, r6, r8): {len(nonspec_outcomes)}\n"
        f"speculative outcomes:                  {len(spec_outcomes)}\n"
        f"speculation-only outcomes: {extra}\n"
        f"aliasing-variant rollbacks: {alias_spec.stats.rolled_back}"
    )
    return result
