"""TAB-SCALE — cost of the enumeration procedure.

The paper notes that Load Resolution "is the only place where our
enumeration procedure may duplicate effort" and relies on Load–Store
graph comparison to discard duplicates.  This experiment measures how
behavior counts and explored states grow with program size, and how much
the canonical-key deduplication saves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.enumerate import EnumerationLimits, enumerate_behaviors
from repro.isa.dsl import ProgramBuilder
from repro.isa.program import Program
from repro.models.registry import get_model
from repro.experiments.base import ExperimentResult


@dataclass(frozen=True)
class ScalePoint:
    """One measurement in the scaling sweep."""

    label: str
    executions: int
    explored: int
    resolutions: int
    duplicates: int
    seconds: float


def chain_program(threads: int, writes_per_thread: int = 1) -> Program:
    """``threads`` writers each storing to a shared location, plus one
    reader loading it ``threads`` times — store-choice fan-out."""
    builder = ProgramBuilder(f"fanout-{threads}x{writes_per_thread}")
    for tid in range(threads):
        writer = builder.thread(f"W{tid}")
        for w in range(writes_per_thread):
            writer.store("x", tid * 100 + w + 1)
    reader = builder.thread("R")
    for i in range(threads):
        reader.load(f"r{i + 1}", "x")
    return builder.build()


def sb_chain(pairs: int) -> Program:
    """``pairs`` independent SB instances side by side — multiplicative
    outcome growth."""
    builder = ProgramBuilder(f"sb-chain-{pairs}")
    for index in range(pairs):
        p0 = builder.thread(f"A{index}")
        p0.store(f"x{index}", 1)
        p0.load(f"r{2 * index + 1}", f"y{index}")
        p1 = builder.thread(f"B{index}")
        p1.store(f"y{index}", 1)
        p1.load(f"r{2 * index + 2}", f"x{index}")
    return builder.build()


def measure(program: Program, model_name: str = "weak") -> ScalePoint:
    started = time.perf_counter()
    result = enumerate_behaviors(
        program, get_model(model_name), EnumerationLimits(max_behaviors=5_000_000)
    )
    elapsed = time.perf_counter() - started
    return ScalePoint(
        label=f"{program.name}/{model_name}",
        executions=len(result.executions),
        explored=result.stats.explored,
        resolutions=result.stats.resolutions,
        duplicates=result.stats.duplicates,
        seconds=elapsed,
    )


def run(max_fanout: int = 4, max_pairs: int = 2) -> ExperimentResult:
    from repro.litmus.families import mp_chain, sb_ring

    result = ExperimentResult("TAB-SCALE", "Enumeration cost scaling")
    points = []
    for threads in range(1, max_fanout + 1):
        points.append(measure(chain_program(threads)))
    for pairs in range(1, max_pairs + 1):
        points.append(measure(sb_chain(pairs)))
    for ring in (2, 3):
        points.append(measure(sb_ring(ring).program, "tso"))
    for hops in (1, 2):
        points.append(measure(mp_chain(hops).program, "weak"))

    growth_monotone = all(
        earlier.executions <= later.executions
        for earlier, later in zip(points[: max_fanout - 1], points[1:max_fanout])
    )
    result.claim("behavior counts grow with fan-out", True, growth_monotone)
    dedup_useful = any(point.duplicates > 0 for point in points)
    result.claim(
        "the Load–Store-graph style dedup discards duplicate work",
        True,
        dedup_useful,
    )

    lines = [
        f"{'program':<18} {'executions':>10} {'explored':>9} {'resolutions':>12} "
        f"{'duplicates':>10} {'seconds':>8}"
    ]
    for point in points:
        lines.append(
            f"{point.label:<18} {point.executions:>10} {point.explored:>9} "
            f"{point.resolutions:>12} {point.duplicates:>10} {point.seconds:>8.3f}"
        )
    result.details = "\n".join(lines)
    return result
