"""FIG7 — the closure cascades across locations (edges a → b → c → d).

Paper Figure 7:

    Thread A: S1 x,1; Fence; S3 y,3; L6 y
    Thread B: S4 y,4; Fence; L5 x
    Thread C: S2 x,2

"Store atomicity may need to be enforced on multiple locations at one
time": after L5 observes S2 (edge a) and L6 observes S4 (edge b), rule a
on L6 inserts S3 ⊑ S4 (edge c).  That reveals S1 ⊑ S3 ⊑ S4 ⊑ L5, i.e.
S1 ⊑ L5, so rule a on L5 must also insert S1 ⊑ S2 (edge d).  The paper's
point: "we continue the process of adding dependencies until Store
Atomicity is satisfied" — one inserted edge exposes the need for another.
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model
from repro.experiments.base import ExperimentResult, executions_where, node_at
from repro.viz.ascii import render


def build_program():
    builder = ProgramBuilder("fig7")
    a = builder.thread("A")
    a.store("x", 1)  # S1
    a.fence()
    a.store("y", 3)  # S3
    a.load("r6", "y")  # L6
    b = builder.thread("B")
    b.store("y", 4)  # S4
    b.fence()
    b.load("r5", "x")  # L5
    c = builder.thread("C")
    c.store("x", 2)  # S2
    return builder.build()


S1, S3, L6 = ("A", 0), ("A", 2), ("A", 3)
S4, L5 = ("B", 0), ("B", 2)
S2 = ("C", 0)


def run() -> ExperimentResult:
    result = ExperimentResult("FIG7", "Closure cascade across locations")
    enumeration = enumerate_behaviors(build_program(), get_model("weak"))

    pictured = executions_where(enumeration, r5=2, r6=4)
    result.claim("the pictured execution (L5=2, L6=4) exists", True, bool(pictured))

    edge_c = all(
        execution.graph.before(node_at(execution, *S3).nid, node_at(execution, *S4).nid)
        for execution in pictured
    )
    result.claim("rule a derives S3 ⊑ S4 (edge c)", True, edge_c)

    edge_d = all(
        execution.graph.before(node_at(execution, *S1).nid, node_at(execution, *S2).nid)
        for execution in pictured
    )
    result.claim("the cascade then derives S1 ⊑ S2 (edge d)", True, edge_d)

    # Control: with L6 observing its own S3, S1 and S2 may stay unordered.
    control = executions_where(enumeration, r5=2, r6=3)
    control_unordered = any(
        not execution.graph.ordered(
            node_at(execution, *S1).nid, node_at(execution, *S2).nid
        )
        for execution in control
    )
    result.claim(
        "without edge b (r6=3), S1 and S2 can remain unordered",
        True,
        control_unordered,
    )

    if pictured:
        result.details = render(pictured[0].graph)
    return result
