"""TAB-MIXEDSIZE — mixed-size accesses and single-copy atomicity (§8).

The paper's conclusion notes that real machines access memory at many
granularities and that "a faithful model can potentially match a Load up
with several Store operations, each providing a portion of the data
being read", adding that none of this is hard to capture.  This
experiment captures it by desugaring wide accesses into byte cells:

* a racing 2-byte store/load pair can **tear** — the load observes
  0x0001 or 0x0100, half-new values no single store ever wrote —
  under plain desugaring, even on Sequential Consistency;
* wrapping each wide access in an atomic block (the TM machinery)
  restores single-copy atomicity: only 0x0000 and 0x0101 remain;
* a wide load can merge bytes written by *different* stores — a byte
  store into the middle of a word is visible in the recombined value —
  which is precisely the multi-source matching the paper describes;
* byte-cell accesses still obey the memory model: the tearing program's
  byte-level behaviors under WEAK form a superset of SC's.
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.models.registry import get_model
from repro.multibyte import MultibyteBuilder
from repro.tm import enumerate_transactional
from repro.experiments.base import ExperimentResult


def build_tearing():
    builder = MultibyteBuilder("tear")
    writer = builder.thread("W")
    writer.wide_store("x", 0x0101, 2)
    reader = builder.thread("R")
    reader.wide_load("r9", "x", 2)
    return builder.build()


def build_merge():
    """A word write, then a racing byte write into the low cell; the wide
    load may combine bytes from the two different stores."""
    builder = MultibyteBuilder("merge")
    builder.init_wide("x", 0x0000, 2)
    word_writer = builder.thread("W")
    word_writer.wide_store("x", 0x0201, 2)
    byte_writer = builder.thread("B")
    byte_writer.byte_store("x", 0, 0xFF)
    reader = builder.thread("R")
    reader.wide_load("r9", "x", 2)
    return builder.build()


def _wide_values(executions, register=("R", "r9")):
    return {execution.final_registers()[register] for execution in executions}


def run() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-MIXEDSIZE", "Mixed-size accesses: tearing and multi-source loads"
    )

    program, blocks = build_tearing()
    plain = enumerate_behaviors(program, get_model("sc"))
    result.claim(
        "plain byte desugaring tears even under SC (half-written values "
        "0x0001 and 0x0100 observable)",
        {0x0000, 0x0001, 0x0100, 0x0101},
        _wide_values(plain.executions),
    )

    atomic = enumerate_transactional(program, blocks, "sc")
    result.claim(
        "single-copy atomicity (atomic blocks) eliminates tearing",
        {0x0000, 0x0101},
        _wide_values(atomic.executions),
    )
    result.claim(
        "the torn executions were rejected, not merely unobserved",
        True,
        atomic.rejected > 0,
    )

    weak = enumerate_behaviors(program, get_model("weak"))
    result.claim(
        "byte cells obey the model: WEAK behaviors ⊇ SC behaviors",
        True,
        plain.register_outcomes() <= weak.register_outcomes(),
    )

    merge_program, merge_blocks = build_merge()
    merged = enumerate_transactional(merge_program, merge_blocks, "sc")
    values = _wide_values(merged.executions)
    result.claim(
        "a wide load can combine bytes from different stores "
        "(0x02FF = high byte from the word store, low byte from the byte store)",
        True,
        0x02FF in values,
    )
    result.claim(
        "word-store atomicity still holds in the merge program "
        "(no half-word 0x0001-style tear of the wide store ... 0x0201 intact)",
        True,
        0x0201 in values and 0x0001 not in values,
    )

    result.details = (
        f"tearing program: plain values {sorted(_wide_values(plain.executions))}, "
        f"atomic values {sorted(_wide_values(atomic.executions))}\n"
        f"merge program values: {sorted(values)}"
    )
    return result
