"""FIG1 — the Weak Reordering Axioms table (paper Figure 1).

Renders the reordering table of any model in the paper's format and
checks that the WEAK model's entries match Figure 1 exactly:

* three ``x ≠ y`` entries: (L, S), (S, L), (S, S),
* ``never`` for Branch → Store,
* fences order all prior/subsequent Loads and Stores,
* Load → Load is unconstrained (same-address loads may reorder).
"""

from __future__ import annotations

from repro.isa.instructions import OpClass
from repro.models.base import MemoryModel, OrderRequirement
from repro.models.registry import get_model
from repro.experiments.base import ExperimentResult

_COLUMNS = (OpClass.COMPUTE, OpClass.BRANCH, OpClass.LOAD, OpClass.STORE, OpClass.FENCE)
_HEADINGS = {"compute": "+, etc.", "branch": "Branch", "load": "L x", "store": "S x,v", "fence": "Fence"}
_ROW_HEADINGS = {"compute": "+, etc.", "branch": "Branch", "load": "L y", "store": "S y,w", "fence": "Fence"}
_CELL = {
    OrderRequirement.NONE: "",
    OrderRequirement.SAME_ADDRESS: "x != y",
    OrderRequirement.ALWAYS: "never",
}


def render_table(model: MemoryModel) -> str:
    """The model's reordering table in the paper's tabular format."""
    width = 10
    header = "1st\\2nd".ljust(width) + "".join(
        _HEADINGS[c.value].ljust(width) for c in _COLUMNS
    )
    lines = [f"Reordering axioms for model {model.name!r}:", header, "-" * len(header)]
    for first in _COLUMNS:
        row = _ROW_HEADINGS[first.value].ljust(width)
        for second in _COLUMNS:
            row += _CELL[model.class_requirement(first, second)].ljust(width)
        lines.append(row)
    return "\n".join(lines)


def run() -> ExperimentResult:
    result = ExperimentResult("FIG1", "Weak Reordering Axioms table")
    weak = get_model("weak")

    same_address_entries = [
        (first, second)
        for first in _COLUMNS
        for second in _COLUMNS
        if weak.class_requirement(first, second) is OrderRequirement.SAME_ADDRESS
    ]
    result.claim(
        "the three x!=y entries are exactly (L,S), (S,L), (S,S)",
        sorted([("load", "store"), ("store", "load"), ("store", "store")]),
        sorted((f.value, s.value) for f, s in same_address_entries),
    )
    result.claim(
        "Branch->Store is 'never' (stores wait for branch resolution)",
        OrderRequirement.ALWAYS,
        weak.class_requirement(OpClass.BRANCH, OpClass.STORE),
    )
    result.claim(
        "Load->Load is unconstrained (same-address loads may reorder)",
        OrderRequirement.NONE,
        weak.class_requirement(OpClass.LOAD, OpClass.LOAD),
    )
    fence_claims = all(
        weak.class_requirement(cls, OpClass.FENCE) is OrderRequirement.ALWAYS
        and weak.class_requirement(OpClass.FENCE, cls) is OrderRequirement.ALWAYS
        for cls in (OpClass.LOAD, OpClass.STORE)
    )
    result.claim("fences order all prior/subsequent Loads and Stores", True, fence_claims)
    result.claim(
        "ALU and Branch rows impose no table orderings beyond dependencies",
        True,
        all(
            weak.class_requirement(OpClass.COMPUTE, second) is OrderRequirement.NONE
            for second in _COLUMNS
            if second is not OpClass.FENCE
        )
        and weak.class_requirement(OpClass.BRANCH, OpClass.LOAD) is OrderRequirement.NONE,
    )

    result.details = "\n\n".join(
        render_table(get_model(name)) for name in ("weak", "sc", "tso", "pso")
    )
    return result
