"""FIG5 — unordered same-address pairs order third parties (rule c).

Paper Figure 5:

    Thread A: S1 x,1; Fence; L3 y; L5 y
    Thread B: S2 y,2; Fence; S6 z,6
    Thread C: S4 y,4; Fence; L7 z; Fence; S8 x,8; L9 x

With L3 = 2 (observes S2), L5 = 4 (observes S4) and L7 = 6, the two
store/load pairings to y cannot be interleaved even though S2 and S4
stay unordered; every serialization orders the mutual ancestor S1 of
{L3, L5} before the mutual successor L7 of {S2, S4}.  Rule c inserts
edge c: S1 ⊑ L7, hence S1 ⊑ L7 ⊑ S8 ⊑ L9 and L9 must read 8.
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model
from repro.experiments.base import ExperimentResult, executions_where, node_at
from repro.viz.ascii import render


def build_program():
    builder = ProgramBuilder("fig5")
    a = builder.thread("A")
    a.store("x", 1)  # S1
    a.fence()
    a.load("r3", "y")  # L3
    a.load("r5", "y")  # L5
    b = builder.thread("B")
    b.store("y", 2)  # S2
    b.fence()
    b.store("z", 6)  # S6
    c = builder.thread("C")
    c.store("y", 4)  # S4
    c.fence()
    c.load("r7", "z")  # L7
    c.fence()
    c.store("x", 8)  # S8
    c.load("r9", "x")  # L9
    return builder.build()


S1, L3, L5 = ("A", 0), ("A", 2), ("A", 3)
S2, S6 = ("B", 0), ("B", 2)
S4, L7, S8, L9 = ("C", 0), ("C", 2), ("C", 4), ("C", 5)


def run() -> ExperimentResult:
    result = ExperimentResult("FIG5", "Rule c: parallel observation pairs order outsiders")
    enumeration = enumerate_behaviors(build_program(), get_model("weak"))

    pictured = executions_where(enumeration, r3=2, r5=4, r7=6)
    result.claim("the pictured execution (r3=2, r5=4, r7=6) exists", True, bool(pictured))

    edge_c = all(
        execution.graph.before(node_at(execution, *S1).nid, node_at(execution, *L7).nid)
        for execution in pictured
    )
    result.claim("rule c derives S1 ⊑ L7 (edge c)", True, edge_c)

    stores_unordered = all(
        not execution.graph.ordered(
            node_at(execution, *S2).nid, node_at(execution, *S4).nid
        )
        for execution in pictured
    )
    result.claim("S2 and S4 remain unordered (the ambiguity is real)", True, stores_unordered)

    r9_values = {execution.final_registers()[("C", "r9")] for execution in pictured}
    result.claim("L9 cannot observe the overwritten S1: r9 is always 8", {8}, r9_values)

    # Control: without the crossed observations, L9 may still observe S1.
    relaxed = {
        execution.final_registers()[("C", "r9")]
        for execution in enumeration.executions
    }
    result.claim("in other executions L9 can observe S1 (r9=1 occurs overall)", True, 1 in relaxed)

    if pictured:
        result.details = render(pictured[0].graph)
    return result
