"""TAB-COHERENCE — cache coherence conservatively approximates Store
Atomicity (paper §4.2).

Runs the MSI and MESI machines over the litmus library under many random
schedules and checks each run's execution graph: Store Atomicity holds
declaratively, the execution is serializable, and (in-order cores) the
outcome is an SC outcome.  MESI's Exclusive state must change only the
*cost* (bus transactions), never the memory model — the §4.2 point that
protocols differ in how eagerly they order, not in what they implement.
"""

from __future__ import annotations

from repro.coherence.checker import verify_run
from repro.coherence.machine import run_coherent
from repro.litmus.library import all_tests
from repro.operational.sc import run_sc
from repro.experiments.base import ExperimentResult

SEEDS = tuple(range(25))


def run(seeds: tuple[int, ...] = SEEDS) -> ExperimentResult:
    result = ExperimentResult(
        "TAB-COHERENCE", "MSI protocol runs satisfy Store Atomicity and SC"
    )
    failures: list[str] = []
    runs = 0
    transactions = 0
    distinct_outcomes = 0
    lines = []
    for test in all_tests():
        sc_outcomes = run_sc(test.program).outcomes
        seen = set()
        for seed in seeds:
            run_artifact = run_coherent(test.program, seed=seed)
            runs += 1
            transactions += run_artifact.transactions
            seen.add(run_artifact.registers)
            report = verify_run(run_artifact, sc_outcomes=sc_outcomes)
            if not report.conforms:
                failures.append(f"{test.name} seed={seed}: {report.summary()}")
        distinct_outcomes += len(seen)
        lines.append(
            f"{test.name:<16} schedules={len(seeds)} distinct outcomes={len(seen)} "
            f"(SC admits {len(sc_outcomes)})"
        )

    result.claim(
        f"all {runs} MSI runs satisfy Store Atomicity, serializability "
        f"and SC membership",
        [],
        failures,
    )

    # MESI: same conformance, strictly fewer-or-equal transactions per
    # seed, with real savings on a private read-then-write workload.
    mesi_failures: list[str] = []
    savings_observed = False
    private = _private_workload()
    private_sc = run_sc(private).outcomes
    for test_program, sc_outcomes in (
        (all_tests()[0].program, run_sc(all_tests()[0].program).outcomes),
        (private, private_sc),
    ):
        for seed in seeds[:10]:
            msi_run = run_coherent(test_program, seed=seed, protocol="msi")
            mesi_run = run_coherent(test_program, seed=seed, protocol="mesi")
            report = verify_run(mesi_run, sc_outcomes=sc_outcomes)
            if not report.conforms:
                mesi_failures.append(f"{test_program.name} seed={seed}: {report.summary()}")
            if mesi_run.transactions > msi_run.transactions:
                mesi_failures.append(
                    f"{test_program.name} seed={seed}: MESI used MORE transactions"
                )
            if mesi_run.transactions < msi_run.transactions:
                savings_observed = True
    result.claim("all MESI runs conform and never cost more than MSI", [], mesi_failures)
    result.claim(
        "MESI's silent E→M upgrade saves transactions on private data",
        True,
        savings_observed,
    )

    result.details = "\n".join(lines) + f"\ntotal MSI bus transactions: {transactions}"
    return result


def _private_workload():
    """Each thread reads then writes its own private location — the
    pattern MESI's Exclusive state exists for."""
    from repro.isa.dsl import ProgramBuilder

    builder = ProgramBuilder("private-rw")
    for index in range(3):
        thread = builder.thread(f"P{index}")
        thread.load(f"r{index + 1}", f"p{index}")
        thread.add(f"r{index + 4}", f"r{index + 1}", 1)
        thread.store(f"p{index}", f"r{index + 4}")
    return builder.build()
