"""TAB-STATIC — static delay-set analysis cross-validated dynamically.

The Shasha & Snir layer (`repro.analysis.static`) answers race and
fence questions without enumeration; this experiment holds it to the
axiomatic/operational cross-validation discipline: on the whole litmus
library, every race `wellsync` observes dynamically and every fence
site `fencesynth` synthesizes must be predicted (or over-approximated)
statically.  Soundness is asserted — zero misses — and precision is
reported, alongside the model-linter verdicts (only the Figure 11
``naive-tso`` strawman errors) and the statically-proved
``SC ⊆ TSO ⊆ PSO ⊆ WEAK`` lattice.
"""

from __future__ import annotations

import time

from repro.analysis.fencesynth import synthesize_fences
from repro.analysis.static import (
    analyze_program,
    canonical_chain_findings,
    lint_model,
    statically_contained,
)
from repro.analysis.static.modellint import PAPER_MODELS
from repro.analysis.wellsync import check_well_synchronized
from repro.experiments.base import ExperimentResult
from repro.experiments.fencesynth_exp import EXPECTED as FENCE_EXPECTED
from repro.isa.lint import LintLevel
from repro.litmus.library import all_tests

#: Models for the fence-soundness sweep (SC needs no fences anywhere).
_FENCE_MODELS = ("tso", "pso", "weak")


def run() -> ExperimentResult:
    result = ExperimentResult("TAB-STATIC", "Static delay-set analysis, cross-validated")
    tests = all_tests()

    # --- model linter: only the Figure 11 strawman errors -------------
    erroring = sorted(
        name
        for name in PAPER_MODELS
        if any(f.level is LintLevel.ERROR for f in lint_model(name))
    )
    result.claim(
        "model linter flags exactly the naive-tso strawman as erroneous",
        ["naive-tso"],
        erroring,
    )
    result.claim(
        "the canonical lattice SC ⊆ TSO ⊆ PSO ⊆ WEAK is statically provable",
        [],
        [str(f) for f in canonical_chain_findings()],
    )
    result.claim(
        "containment of tso in the dependency-breaking naive-tso is NOT claimed",
        None,
        statically_contained("tso", "naive-tso"),
    )

    # --- race soundness: wellsync races are all predicted -------------
    static_start = time.perf_counter()
    static_reports = {test.name: analyze_program(test.program, "weak") for test in tests}
    static_seconds = time.perf_counter() - static_start

    dynamic_start = time.perf_counter()
    missed_races: list[str] = []
    dynamic_races = 0
    static_races = sum(len(report.races) for report in static_reports.values())
    for test in tests:
        report = check_well_synchronized(test.program, "weak", frozenset())
        for race in report.races:
            dynamic_races += 1
            if not static_reports[test.name].predicts_race(race.thread, race.location):
                missed_races.append(f"{test.name}: {race.thread} @ {race.location}")
    result.claim(
        "zero dynamically-observed races are missed by the static analyzer",
        [],
        missed_races,
    )

    # --- fence soundness: every synthesized fence site is covered -----
    missed_sites: list[str] = []
    precision: list[str] = []
    for model_name in _FENCE_MODELS:
        for test in tests:
            synthesis = synthesize_fences(test, model_name)
            if synthesis.fence_count in (None, 0):
                continue
            static = analyze_program(test.program, model_name)
            for solution in synthesis.solutions:
                for site in solution:
                    if not static.covers_site(site.thread, site.position):
                        missed_sites.append(
                            f"{test.name}/{model_name}: {site.thread}@{site.position}"
                        )
            precision.append(
                f"{test.name:<16} {model_name:<6} "
                f"dynamic fences={synthesis.fence_count} "
                f"static delays={len(static.delays)}"
            )
    dynamic_seconds = time.perf_counter() - dynamic_start
    result.claim(
        "zero synthesized fence sites fall outside the static delay edges",
        [],
        missed_sites,
    )

    # --- precision against the folklore table -------------------------
    for (test_name, model_name), expected_solutions in FENCE_EXPECTED.items():
        static = static_reports.get(test_name)
        if static is None or static.model_name != model_name:
            static = analyze_program(
                next(t for t in tests if t.name == test_name).program, model_name
            )
        expected_sites = sorted(
            {(site.thread, site.position) for solution in expected_solutions for site in solution}
        )
        result.claim(
            f"{test_name} under {model_name}: static fence sites match the "
            f"folklore synthesis exactly",
            expected_sites,
            sorted((s.thread, s.position) for s in static.fence_sites),
        )

    # --- speed: the whole point of the static layer --------------------
    speedup = dynamic_seconds / max(static_seconds, 1e-9)
    result.claim(
        "static analysis of the whole library is ≥10× faster than the "
        "dynamic wellsync + fencesynth runs",
        True,
        speedup >= 10.0,
    )

    result.details = "\n".join(
        [
            f"library: {len(tests)} tests; static pass {static_seconds * 1e3:.1f} ms, "
            f"dynamic pass {dynamic_seconds * 1e3:.1f} ms (speedup {speedup:.0f}×)",
            f"races: {dynamic_races} dynamic, {static_races} statically predicted "
            f"(precision {dynamic_races / max(static_races, 1):.2f})",
            "",
            "precision per fenced (test, model):",
            *precision,
        ]
    )
    return result
