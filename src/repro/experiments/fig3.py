"""FIG3 — observed overwrites order stores (Store Atomicity rule a).

Paper Figure 3:

    Thread A: S1 x,1; Fence; S2 y,2; L5 y
    Thread B: S3 y,3; Fence; S4 x,4; L6 x

"When a Store to y is observed to have been overwritten, the stores must
be ordered": when L5 observes S3 (value 3), rule a inserts S2 ⊑ S3, so
S1 ⊑ S2 ⊑ S3 ⊑ S4 and L6 cannot observe S1 (it must read 4).  When L5
instead observes its own thread's S2, no order exists between S2 and S3
and L6 may observe either S1 or S4.
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model
from repro.experiments.base import ExperimentResult, executions_where, node_at
from repro.viz.ascii import render


def build_program():
    builder = ProgramBuilder("fig3")
    a = builder.thread("A")
    a.store("x", 1)  # S1
    a.fence()
    a.store("y", 2)  # S2
    a.load("r5", "y")  # L5
    b = builder.thread("B")
    b.store("y", 3)  # S3
    b.fence()
    b.store("x", 4)  # S4
    b.load("r6", "x")  # L6
    return builder.build()


#: Dynamic node positions: (thread, index).
S1, S2, L5 = ("A", 0), ("A", 2), ("A", 3)
S3, S4, L6 = ("B", 0), ("B", 2), ("B", 3)


def run() -> ExperimentResult:
    result = ExperimentResult("FIG3", "Rule a: observed overwrite orders stores")
    enumeration = enumerate_behaviors(build_program(), get_model("weak"))

    observed_s3 = executions_where(enumeration, r5=3)
    result.claim("some execution has L5 observe S3 (r5=3)", True, bool(observed_s3))

    edge_derived = all(
        execution.graph.before(node_at(execution, *S2).nid, node_at(execution, *S3).nid)
        for execution in observed_s3
    )
    result.claim("whenever r5=3, the closure derives S2 ⊑ S3 (edge a)", True, edge_derived)

    r6_when_overwritten = {
        execution.final_registers()[("B", "r6")] for execution in observed_s3
    }
    result.claim("whenever r5=3, L6 cannot observe S1: r6 is always 4", {4}, r6_when_overwritten)

    observed_s2 = executions_where(enumeration, r5=2)
    r6_when_local = {
        execution.final_registers()[("B", "r6")] for execution in observed_s2
    }
    result.claim(
        "when r5=2, S2/S3 stay unordered and L6 may observe S1 or S4",
        {1, 4},
        r6_when_local,
    )
    # With r6=4 no cross-thread observation relates the two stores.  (With
    # r6=1 the closure derives S4 ⊑ S1, which transitively orders S3 ⊑ S2
    # — "no known ordering" in the paper refers to the state before L6
    # resolves.)
    unordered = all(
        not execution.graph.ordered(
            node_at(execution, *S2).nid, node_at(execution, *S3).nid
        )
        for execution in executions_where(enumeration, r5=2, r6=4)
    )
    result.claim("in the r5=2, r6=4 execution S2 and S3 are unordered", True, unordered)

    if observed_s3:
        result.details = render(observed_s3[0].graph)
    return result
