"""TAB-FENCEREPAIR — static fence repair cross-validated against enumeration.

The tentpole claim of the static repair layer: on every (library test,
model) pair the purely static set-cover repair of
:mod:`repro.analysis.static.fencerepair` returns *byte-identical*
minimal fence sets to the enumerative ground truth
``synthesize_fences(..., target="robust")`` — same solutions, same
order — while running orders of magnitude faster.  Alongside it:

* every static **SC-robust** certificate is confirmed by enumeration
  (the model's behavior signature collapses to SC's),
* the folklore answers fall out of the static path alone — MP needs
  both fences under WEAK but only the writer-side fence under PSO
  (the PSO/WEAK asymmetry), SB needs one per thread, IRIW both
  reader-side fences, R exactly P1's store→load fence on TSO,
* the cheapest acquire/release upgrade plans (table-priced) repair MP
  under WEAK at cost 2, and applying one makes the program
  enumeratively robust,
* portability down the SC ⊆ TSO ⊆ PSO ⊆ WEAK lattice: MP verified
  under TSO breaks on PSO (writer-side repair) and on WEAK (both).
"""

from __future__ import annotations

import time

from repro.analysis.fencesynth import behavior_signature, synthesize_fences
from repro.analysis.sites import FenceSite
from repro.analysis.static import (
    apply_repairs,
    certify_robustness,
    check_portability,
    repair_fences,
    repair_upgrades,
)
from repro.analysis.static.dataflow import compute_static_facts
from repro.core.enumerate import enumerate_behaviors
from repro.experiments.base import ExperimentResult
from repro.litmus.library import all_tests, get_test
from repro.models.registry import get_model

MODELS = ("sc", "tso", "naive-tso", "pso", "weak", "weak-spec", "weak-corr")

#: Folklore minimal repairs, reproduced by the *static* path alone.
EXPECTED_STATIC = {
    ("SB", "weak"): ((FenceSite("P0", 1), FenceSite("P1", 1)),),
    ("SB", "tso"): ((FenceSite("P0", 1), FenceSite("P1", 1)),),
    ("MP", "weak"): ((FenceSite("P0", 1), FenceSite("P1", 1)),),
    ("MP", "pso"): ((FenceSite("P0", 1),),),
    ("R", "tso"): ((FenceSite("P1", 1),),),
    ("IRIW", "weak"): ((FenceSite("P2", 1), FenceSite("P3", 1)),),
    ("LB", "weak"): ((FenceSite("P0", 1), FenceSite("P1", 1)),),
}


def _sc_robust_confirmed(program) -> bool:
    """Enumerative confirmation of a robust certificate: the model's
    behavior signature is contained in SC's."""
    locations = program.locations()
    sc_signature = behavior_signature(
        enumerate_behaviors(program, get_model("sc")), locations
    )
    return all(
        behavior_signature(enumerate_behaviors(program, get_model(name)), locations)
        <= sc_signature
        for name in ("tso", "pso", "weak")
        if certify_robustness(program, name).robust
    )


def run() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-FENCEREPAIR", "Static fence repair vs. enumerative synthesis"
    )
    tests = all_tests()

    # -- the agreement sweep: every (test, model) pair, both engines ----
    mismatches: list[str] = []
    incomplete: list[str] = []
    static_results = {}
    static_seconds = 0.0
    for test in tests:
        start = time.perf_counter()
        facts = compute_static_facts(test.program)
        for model in MODELS:
            static_results[(test.name, model)] = repair_fences(
                test.program, model, facts=facts
            )
        static_seconds += time.perf_counter() - start
    enum_seconds = 0.0
    for test in tests:
        for model in MODELS:
            static = static_results[(test.name, model)]
            start = time.perf_counter()
            enum = synthesize_fences(
                test.program, model, target="robust", max_subsets=5000
            )
            enum_seconds += time.perf_counter() - start
            if not static.complete or not enum.complete:
                incomplete.append(f"{test.name}/{model}: {enum.reason}")
                continue
            static_solutions = sorted(tuple(s) for s in static.solutions)
            enum_solutions = sorted(tuple(s) for s in enum.solutions)
            if static_solutions != enum_solutions:
                mismatches.append(
                    f"{test.name}/{model}: static={static_solutions} "
                    f"enum={enum_solutions}"
                )
    pairs = len(tests) * len(MODELS)
    result.claim(
        f"static minimal fence sets are byte-identical to enumerative "
        f"robust synthesis on all {pairs} (test, model) pairs",
        [],
        mismatches,
    )
    result.claim(
        "no pair is truncated (both searches complete within budget)",
        [],
        incomplete,
    )

    # -- robust certificates confirmed by enumeration -------------------
    unconfirmed = [
        test.name for test in tests if not _sc_robust_confirmed(test.program)
    ]
    result.claim(
        "every static SC-robust certificate (tso/pso/weak) is confirmed "
        "by enumeration producing only SC behaviors",
        [],
        unconfirmed,
    )

    # -- the folklore table, statically --------------------------------
    for (test_name, model_name), expected in EXPECTED_STATIC.items():
        static = static_results[(test_name, model_name)]
        result.claim(
            f"{test_name} under {model_name}: static minimal repair is "
            f"{[tuple(map(str, s)) for s in expected]}",
            sorted(expected),
            sorted(tuple(s) for s in static.solutions),
        )
    result.claim(
        "the PSO/WEAK asymmetry: MP needs (writer-only, both) fences",
        (1, 2),
        (
            static_results[("MP", "pso")].fence_count,
            static_results[("MP", "weak")].fence_count,
        ),
    )
    result.claim(
        "MP is certified SC-robust under TSO, SB under SC",
        ("robust", "robust"),
        (
            certify_robustness(get_test("MP").program, "tso").verdict,
            certify_robustness(get_test("SB").program, "sc").verdict,
        ),
    )

    # -- acquire/release upgrade plans ---------------------------------
    mp = get_test("MP").program
    upgrades = repair_upgrades(mp, "weak")
    rel_acq = next(
        (
            plan
            for plan in upgrades.solutions
            if {(a.kind, a.thread, a.position) for a in plan}
            == {("release", "P0", 1), ("acquire", "P1", 0)}
        ),
        None,
    )
    result.claim(
        "cheapest repair of MP under WEAK costs 2 newly-enforced pairs "
        "and includes the release-store/acquire-load plan",
        (2, True),
        (upgrades.best_cost, rel_acq is not None),
    )
    if rel_acq is not None:
        repaired = apply_repairs(mp, rel_acq)
        locations = mp.locations()
        sc_signature = behavior_signature(
            enumerate_behaviors(mp, get_model("sc")), locations
        )
        weak_signature = behavior_signature(
            enumerate_behaviors(repaired, get_model("weak")), locations
        )
        result.claim(
            "applying the release/acquire plan makes MP enumeratively "
            "SC-robust under WEAK",
            True,
            weak_signature <= sc_signature,
        )

    # -- portability down the lattice ----------------------------------
    portability = check_portability(mp, verified_under="tso")
    pso_step = portability.step("pso")
    weak_step = portability.step("weak")
    result.claim(
        "MP verified under TSO is not portable to PSO; the repair is the "
        "writer-side fence",
        ("not-portable", [(FenceSite("P0", 1),)]),
        (pso_step.verdict, pso_step.repairs),
    )
    result.claim(
        "MP verified under TSO is not portable to WEAK; the repair is "
        "both fences",
        ("not-portable", [(FenceSite("P0", 1), FenceSite("P1", 1))]),
        (weak_step.verdict, weak_step.repairs),
    )
    sb_step = check_portability(get_test("SB").program, verified_under="sc").step("tso")
    result.claim(
        "SB verified under SC is not portable to TSO",
        "not-portable",
        sb_step.verdict,
    )

    # -- the speedup claim ---------------------------------------------
    speedup = enum_seconds / static_seconds if static_seconds > 0 else float("inf")
    result.claim(
        "the static sweep is at least 10x faster than the enumerative "
        "sweep over the full library",
        True,
        speedup >= 10.0,
    )

    robust_pairs = sum(
        1 for repair in static_results.values() if repair.already_robust
    )
    result.details = "\n".join(
        [
            f"pairs: {pairs} ({len(tests)} tests x {len(MODELS)} models), "
            f"{robust_pairs} already robust",
            f"static sweep: {static_seconds:.3f}s   "
            f"enumerative sweep: {enum_seconds:.3f}s   speedup: {speedup:.1f}x",
            "",
            static_results[("MP", "weak")].summary(),
            static_results[("MP", "pso")].summary(),
            upgrades.summary(),
            "",
            portability.summary(),
        ]
    )
    return result
