"""Figure artifact generation: Graphviz files for every paper figure.

``write_figures(directory)`` regenerates the pictured execution of each
figure (the one the paper draws) and writes it as a ``.dot`` file in the
paper's visual language — solid local edges, ringed observations, dotted
Store Atomicity edges, grey TSO bypass edges.  ``dot -Tpdf`` turns them
into the figures themselves.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.enumerate import enumerate_behaviors
from repro.experiments import fig3, fig4, fig5, fig7, fig89, fig1011
from repro.experiments.base import executions_where
from repro.models.registry import get_model
from repro.viz.dot import to_dot


def _pictured_fig3():
    result = enumerate_behaviors(fig3.build_program(), get_model("weak"))
    return executions_where(result, r5=3, r6=4)[0], "Figure 3: rule a (L5 observes S3)"


def _pictured_fig4():
    result = enumerate_behaviors(fig4.build_program(), get_model("weak"))
    return executions_where(result, r4=3, r6=2)[0], "Figure 4: rule b (L4 observes S3)"


def _pictured_fig5():
    result = enumerate_behaviors(fig5.build_program(), get_model("weak"))
    return (
        executions_where(result, r3=2, r5=4, r7=6, r9=8)[0],
        "Figure 5: rule c (S1 ⊑ L7 derived)",
    )


def _pictured_fig7():
    result = enumerate_behaviors(fig7.build_program(), get_model("weak"))
    return (
        executions_where(result, r5=2, r6=4)[0],
        "Figure 7: cascade (edges c and d)",
    )


def _pictured_fig9():
    result = enumerate_behaviors(fig89.build_program(), get_model("weak-spec"))
    return (
        executions_where(result, r3=2, r6="z", r8=2)[0],
        "Figure 9 (right): the speculative behavior r8 = 2",
    )


def _pictured_fig11():
    result = enumerate_behaviors(fig1011.build_program(), get_model("tso"))
    pictured = [
        execution
        for execution in result.executions
        if frozenset(execution.final_registers().items()) == fig1011.PAPER_OUTCOME
    ]
    return pictured[0], "Figure 11 (right): TSO with grey bypass edges"


FIGURES = {
    "fig3.dot": _pictured_fig3,
    "fig4.dot": _pictured_fig4,
    "fig5.dot": _pictured_fig5,
    "fig7.dot": _pictured_fig7,
    "fig9.dot": _pictured_fig9,
    "fig11.dot": _pictured_fig11,
}


def write_figures(directory: str | Path) -> list[Path]:
    """Write every figure's pictured execution as a .dot file; returns
    the paths written."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written = []
    for filename, builder in FIGURES.items():
        execution, title = builder()
        path = target / filename
        path.write_text(to_dot(execution.graph, title=title), encoding="utf-8")
        written.append(path)
    return written
