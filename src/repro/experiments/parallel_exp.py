"""TAB-PARALLEL — the sharded parallel engine vs the sequential engine.

The enumeration procedure (paper §4) explores independent branches of
the Load-Resolution tree, so the search parallelizes across worklist
shards.  Correctness demands byte-equality: the parallel engine must
return the identical sorted Load–Store graph set and register outcomes
as the sequential engine, on the whole litmus library under every model,
deterministically for every worker count.  This experiment asserts
exactly that (wall-clock speedups are measured by
``benchmarks/bench_parallel.py``, which needs a multicore machine to be
meaningful).
"""

from __future__ import annotations

import time

from repro.core.enumerate import ParallelEnumerationConfig, enumerate_behaviors
from repro.experiments.base import ExperimentResult
from repro.litmus.library import all_tests, get_test
from repro.models.registry import get_model

EXPERIMENT_ID = "TAB-PARALLEL"
TITLE = "Parallel enumeration cross-validation"

MODELS = ("sc", "tso", "pso", "weak", "weak-spec")

#: Tiny warm-up so even the smallest litmus tests actually shard.
WARMUP = 4
SHARDS = 8


def run() -> ExperimentResult:
    from concurrent.futures import ProcessPoolExecutor

    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    tests = all_tests()

    graphs_equal = True
    outcomes_equal = True
    pairs = 0
    seq_seconds = par_seconds = 0.0
    per_model: dict[str, tuple[int, int]] = {}

    with ProcessPoolExecutor(max_workers=2) as pool:
        config = ParallelEnumerationConfig(
            workers=2, warmup_behaviors=WARMUP, shards=SHARDS, executor=pool
        )
        for model_name in MODELS:
            model = get_model(model_name)
            executions = 0
            for test in tests:
                start = time.perf_counter()
                sequential = enumerate_behaviors(test.program, model)
                seq_seconds += time.perf_counter() - start
                start = time.perf_counter()
                parallel = enumerate_behaviors(test.program, model, parallel=config)
                par_seconds += time.perf_counter() - start
                pairs += 1
                executions += len(sequential)
                graphs_equal &= [
                    e.loadstore_key() for e in parallel.executions
                ] == [e.loadstore_key() for e in sequential.executions]
                outcomes_equal &= (
                    parallel.register_outcomes() == sequential.register_outcomes()
                )
            per_model[model_name] = (len(tests), executions)

        # Determinism: the shard count (not the worker count) fixes the
        # merge, so every worker count returns the same execution order.
        deterministic = True
        for name in ("SB", "IRIW", "MP+addr"):
            program = get_test(name).program
            runs = [
                enumerate_behaviors(
                    program,
                    get_model("weak"),
                    parallel=ParallelEnumerationConfig(
                        workers=workers,
                        warmup_behaviors=WARMUP,
                        shards=SHARDS,
                        executor=pool if workers > 1 else None,
                    ),
                )
                for workers in (1, 2, 4)
            ]
            keys = [[e.loadstore_key() for e in run.executions] for run in runs]
            deterministic &= keys[0] == keys[1] == keys[2]

    # The digest dedup set must admit the same behavior set as exact keys.
    digests_exact = all(
        [
            e.loadstore_key()
            for e in enumerate_behaviors(
                test.program, get_model("weak"), dedup_exact=True
            ).executions
        ]
        == [
            e.loadstore_key()
            for e in enumerate_behaviors(test.program, get_model("weak")).executions
        ]
        for test in tests
    )

    result.claim(
        f"parallel Load–Store graph sets identical to sequential "
        f"({pairs} (test, model) pairs)",
        True,
        graphs_equal,
    )
    result.claim("parallel register outcomes identical to sequential", True, outcomes_equal)
    result.claim("worker count (1/2/4) does not change the execution order", True, deterministic)
    result.claim("blake2b digest dedup admits the same behavior set as exact keys", True, digests_exact)

    lines = [f"{'model':<12} {'tests':>6} {'executions':>11}"]
    for model_name, (count, executions) in per_model.items():
        lines.append(f"{model_name:<12} {count:>6} {executions:>11}")
    lines.append("")
    lines.append(
        f"wall clock over the sweep: sequential {seq_seconds:.2f}s, "
        f"parallel(workers=2, shared pool) {par_seconds:.2f}s "
        f"(per-call IPC dominates at litmus scale; see BENCH_parallel.json "
        f"for the scaling programs where parallelism pays)"
    )
    result.details = "\n".join(lines)
    return result
