"""TAB-WSYNC — the well-synchronization discipline (paper §8).

    "a program is well synchronized if for every load of a
    non-synchronization variable there is exactly one eligible store
    which can provide its value according to Store Atomicity"

Checks three programs under WEAK:

* fence-free MP — racy (the data load has two eligible stores),
* MP guarded by flag + branch + fence — well synchronized,
* the branch-guarded variant *without* the reader-side fence — racy
  again, because WEAK has no control-to-load ordering (a subtle point
  the discipline surfaces).
"""

from __future__ import annotations

from repro.analysis.wellsync import check_well_synchronized
from repro.isa.dsl import ProgramBuilder
from repro.litmus.library import get_test
from repro.experiments.base import ExperimentResult


def build_guarded_mp(reader_fence: bool):
    """MP whose reader only touches x after seeing flag=1 (and, optionally,
    a fence between the guard and the data load)."""
    suffix = "" if reader_fence else "-nofence"
    builder = ProgramBuilder(f"MP-guarded{suffix}")
    writer = builder.thread("P0")
    writer.store("x", 1)
    writer.fence()
    writer.store("flag", 1)
    reader = builder.thread("P1")
    reader.load("r1", "flag")
    reader.beqz("r1", "skip")
    if reader_fence:
        reader.fence()
    reader.load("r2", "x")
    reader.label("skip")
    return builder.build()


def run() -> ExperimentResult:
    result = ExperimentResult("TAB-WSYNC", "Well-synchronization discipline")
    sync = {"flag"}

    racy = check_well_synchronized(get_test("MP").program, "weak", sync)
    result.claim("fence-free MP is racy under WEAK", False, racy.well_synchronized)

    guarded = check_well_synchronized(build_guarded_mp(reader_fence=True), "weak", sync)
    result.claim(
        "flag-guarded MP with a reader fence is well synchronized",
        True,
        guarded.well_synchronized,
    )

    unfenced = check_well_synchronized(build_guarded_mp(reader_fence=False), "weak", sync)
    result.claim(
        "dropping the reader fence reintroduces the race (WEAK has no "
        "control-to-load ordering)",
        False,
        unfenced.well_synchronized,
    )

    lock = check_well_synchronized(get_test("CAS-lock").program, "weak", {"l"})
    result.claim(
        "the CAS lock protects its critical counter (well synchronized "
        "with l as the sync location)",
        True,
        lock.well_synchronized,
    )

    result.details = "\n\n".join(
        report.summary() for report in (racy, guarded, unfenced, lock)
    )
    return result
