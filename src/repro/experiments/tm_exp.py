"""TAB-TM — transactions as atomic groups (§8 future work).

Explains the "big-step, all-or-nothing" semantics of transactions with
the framework's small steps: enumerate behaviors normally, then keep
those admitting a serialization in which each block is contiguous.

Claims checked:

* the unprotected read-modify-write counter loses updates (final 1
  possible) under SC — and of course under WEAK,
* wrapping each increment in an atomic block forbids the lost update on
  top of EITHER model (transaction serializability subsumes the
  reordering differences between them),
* the transactional counter equals the fetch-and-add implementation,
* read-only transactions see consistent snapshots: a transaction reading
  x then y cannot observe another transaction's writes torn in half.
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model
from repro.tm import AtomicBlock, enumerate_transactional
from repro.experiments.base import ExperimentResult


def build_counter():
    """Two unprotected load-add-store increments of a shared counter."""
    builder = ProgramBuilder("tm-counter")
    for name, r_in, r_out in (("A", "r1", "r3"), ("B", "r2", "r4")):
        thread = builder.thread(name)
        thread.load(r_in, "c")
        thread.add(r_out, r_in, 1)
        thread.store("c", r_out)
    return builder.build()


COUNTER_BLOCKS = (AtomicBlock("A", 0, 3), AtomicBlock("B", 0, 3))


def build_snapshot():
    """A writer updates x and y inside a transaction; a reader snapshots
    both inside its own transaction.  A torn read is r1=1 ∧ r2=0."""
    builder = ProgramBuilder("tm-snapshot")
    writer = builder.thread("W")
    writer.store("x", 1)
    writer.store("y", 1)
    reader = builder.thread("R")
    reader.load("r1", "x")
    reader.load("r2", "y")
    return builder.build()


SNAPSHOT_BLOCKS = (AtomicBlock("W", 0, 2), AtomicBlock("R", 0, 2))


def _counter_finals(executions):
    values = set()
    for execution in executions:
        values |= set(execution.memory_finals()["c"])
    return values


def run() -> ExperimentResult:
    result = ExperimentResult("TAB-TM", "Transactions as atomic groups of memory ops")
    counter = build_counter()

    plain = enumerate_behaviors(counter, get_model("sc"))
    result.claim(
        "unprotected counter can lose an update under SC (final c ∈ {1,2})",
        {1, 2},
        _counter_finals(plain.executions),
    )

    for model_name in ("sc", "weak"):
        transactional = enumerate_transactional(counter, COUNTER_BLOCKS, model_name)
        result.claim(
            f"atomic blocks forbid the lost update on top of {model_name} "
            "(final c = 2 always)",
            {2},
            _counter_finals(transactional.executions),
        )
        result.claim(
            f"some {model_name} behaviors are rejected by block atomicity",
            True,
            transactional.rejected > 0,
        )

    fadd = ProgramBuilder("fadd-counter")
    fadd.thread("A").fetch_add("r1", "c", 1)
    fadd.thread("B").fetch_add("r2", "c", 1)
    fadd_result = enumerate_behaviors(fadd.build(), get_model("sc"))
    result.claim(
        "the transactional counter's final memory equals fetch-and-add's",
        _counter_finals(fadd_result.executions),
        _counter_finals(enumerate_transactional(counter, COUNTER_BLOCKS, "sc").executions),
    )

    snapshot = enumerate_transactional(build_snapshot(), SNAPSHOT_BLOCKS, "weak")
    torn = any(
        execution.final_registers()[("R", "r1")] == 1
        and execution.final_registers()[("R", "r2")] == 0
        for execution in snapshot.executions
    )
    result.claim(
        "snapshot transactions never observe a torn write (r1=1 ∧ r2=0), "
        "even over WEAK",
        False,
        torn,
    )

    result.details = (
        f"counter/sc: {len(plain)} plain executions; transactional keeps "
        f"{len(enumerate_transactional(counter, COUNTER_BLOCKS, 'sc'))}\n"
        f"snapshot/weak: {len(snapshot)} executions kept, "
        f"{snapshot.rejected} rejected"
    )
    return result
