"""TAB-XVAL — axiomatic enumeration vs operational reference machines.

The strongest end-to-end validation of the framework: for every litmus
test in the library, the axiomatic enumerator under

* the SC table must produce exactly the interleaving machine's outcomes,
* the TSO model must produce exactly the FIFO store-buffer machine's
  outcomes,
* the PSO model must produce exactly the per-address-FIFO machine's
  outcomes,
* the WEAK model (and its CoRR-strengthened variant) must produce
  exactly the ≺-linearization *dataflow machine's* outcomes — the
  operational face of the paper's serializability theorem.

Equality (not mere inclusion) means the reordering-table + Store
Atomicity formulation and the hardware-style operational formulations
define the same models on these programs.
"""

from __future__ import annotations

from repro.core.enumerate import enumerate_behaviors
from repro.litmus.library import all_tests
from repro.models.registry import get_model
from repro.operational.dataflow import run_dataflow
from repro.operational.sc import run_sc
from repro.operational.storebuffer import run_pso, run_tso
from repro.experiments.base import ExperimentResult

_PAIRS = (
    ("sc", run_sc, False),
    ("tso", run_tso, False),
    ("pso", run_pso, False),
    ("weak", lambda program: run_dataflow(program, "weak"), True),
    ("weak-corr", lambda program: run_dataflow(program, "weak-corr"), True),
)


def run() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-XVAL", "Axiomatic vs operational model equivalence"
    )
    tests = all_tests()
    lines = []
    for model_name, operational, straight_line_only in _PAIRS:
        model = get_model(model_name)
        mismatched = []
        count = 0
        for test in tests:
            if straight_line_only and test.program.has_branches():
                continue  # the dataflow machine cannot speculate branches
            count += 1
            axiomatic = enumerate_behaviors(test.program, model).register_outcomes()
            reference = operational(test.program).outcomes
            if axiomatic != reference:
                mismatched.append(test.name)
            lines.append(
                f"{test.name:<16} {model_name:<9} axiomatic={len(axiomatic):<3} "
                f"operational={len(reference):<3} "
                f"{'==' if axiomatic == reference else 'DIFFER'}"
            )
        result.claim(
            f"{model_name}: axiomatic == operational on all {count} applicable tests",
            [],
            mismatched,
        )
    result.details = "\n".join(lines)
    return result
