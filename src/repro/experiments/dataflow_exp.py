"""TAB-DATAFLOW — the dataflow layer, cross-validated on the library.

The per-thread dataflow passes (`repro.analysis.static.dataflow`) feed
three consumers, and each is held to the enumeration ground truth on the
whole litmus library:

1. **Pruned enumeration is exact.**  Handing ``StaticFacts`` to the
   enumerator prunes the candidate-store scan and settles
   statically-certain alias pairs at generation time; the resulting
   outcome sets must be *byte-identical* to unpruned enumeration on
   every (test, model) pair, with a ≥20% mean scan reduction on the
   tests that compute addresses in registers.

2. **Precision strictly improves over PR 2.**  The syntactic analyzer
   treated every finding of a branchy/indirect program as
   over-approximated; the dataflow-backed analyzer must strictly reduce
   the number of over-approximated findings without giving up soundness
   (soundness itself is TAB-STATIC's job).

3. **Speculation safety matches the Figure 8/9 machinery.**  Every
   library load is statically safe to alias-speculate, and indeed
   enumeration under ``weak`` and ``weak-spec`` agrees on every library
   test; the Figure 8 program has the one unsafe load (B's final ``L8``)
   and is exactly where ``weak-spec`` admits the extra ``r8 = 2``
   outcome.  Validated value speculation stays exact even on that
   unsafe load — rollback restores what the static verdict says
   speculation alone would break.
"""

from __future__ import annotations

import time

from repro.analysis.static import analyze_program, compute_static_facts, speculation_safety
from repro.core.enumerate import enumerate_behaviors
from repro.core.valuespec import enumerate_value_speculation
from repro.experiments.base import ExperimentResult
from repro.experiments.fig89 import build_aliasing_program, build_program
from repro.isa.operands import Reg
from repro.isa.program import Program
from repro.litmus.library import all_tests
from repro.models.registry import get_model

_MODELS = ("sc", "tso", "pso", "weak", "weak-spec")


def uses_register_addresses(program: Program) -> bool:
    """Whether any memory access computes its address in a register."""
    return any(
        isinstance(instruction.addr_operand(), Reg)
        for thread in program.threads
        for instruction in thread.code
        if instruction.op_class.is_memory()
    )


def run() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-DATAFLOW", "Dataflow facts: exact pruning, sharper verdicts, safe speculation"
    )
    tests = all_tests()
    programs = [test.program for test in tests]
    fig8 = build_program()
    fig8_alias = build_aliasing_program()

    # --- 1. pruned enumeration is exact --------------------------------
    mismatches: list[str] = []
    reductions: dict[str, float] = {}
    base_seconds = pruned_seconds = 0.0
    for program in programs + [fig8, fig8_alias]:
        facts = compute_static_facts(program)
        scanned = pruned = 0
        for model_name in _MODELS:
            model = get_model(model_name)
            start = time.perf_counter()
            baseline = enumerate_behaviors(program, model)
            base_seconds += time.perf_counter() - start
            start = time.perf_counter()
            accelerated = enumerate_behaviors(program, model, facts=facts)
            pruned_seconds += time.perf_counter() - start
            if baseline.register_outcomes() != accelerated.register_outcomes():
                mismatches.append(f"{program.name}/{model_name}")
            scanned += accelerated.stats.candidates_scanned
            pruned += accelerated.stats.candidates_pruned
        if scanned:
            reductions[program.name] = pruned / scanned
    result.claim(
        f"pruned enumeration is outcome-identical to unpruned on "
        f"{len(programs) + 2} programs × {len(_MODELS)} models",
        [],
        mismatches,
    )

    register_tests = [
        program.name
        for program in programs + [fig8, fig8_alias]
        if uses_register_addresses(program) and program.name in reductions
    ]
    mean_reduction = sum(reductions[name] for name in register_tests) / max(
        len(register_tests), 1
    )
    result.claim(
        "mean candidate-scan reduction on register-computed-address tests ≥ 20%",
        True,
        mean_reduction >= 0.20,
    )

    # --- 2. precision strictly improves over the syntactic analyzer ----
    legacy_approx = precise_approx = 0
    legacy_conservative = precise_conservative = 0
    regressions: list[str] = []
    for test in tests:
        legacy = analyze_program(test.program, "weak", precise=False)
        precise = analyze_program(test.program, "weak")
        legacy_conservative += legacy.conservative
        precise_conservative += precise.conservative
        # PR 2 had no per-finding provenance: a conservative program's
        # findings all counted as over-approximated.
        if legacy.conservative:
            legacy_approx += len(legacy.races) + len(legacy.delays)
        precise_approx += precise.finding_provenance()[1]
        if precise.conservative and not legacy.conservative:
            regressions.append(test.name)
    result.claim(
        "over-approximated finding count strictly decreases vs the "
        "syntactic analyzer",
        True,
        precise_approx < legacy_approx,
    )
    result.claim(
        "no test becomes conservative that the syntactic analyzer "
        "resolved exactly",
        [],
        regressions,
    )

    # --- 3. speculation safety vs the fig89/valuespec machinery --------
    weak = get_model("weak")
    weak_spec = get_model("weak-spec")
    disagreements: list[str] = []
    unsafe_library: list[str] = []
    for test in tests:
        report = speculation_safety(test.program, "weak")
        weak_outcomes = enumerate_behaviors(test.program, weak).register_outcomes()
        spec_outcomes = enumerate_behaviors(test.program, weak_spec).register_outcomes()
        if not report.all_safe:
            unsafe_library.append(test.name)
        if report.all_safe and weak_outcomes != spec_outcomes:
            disagreements.append(test.name)
    result.claim(
        "every load statically safe ⇒ weak and weak-spec outcome sets "
        "agree (whole library)",
        [],
        disagreements,
    )
    result.claim(
        "no library test needs an unsafe-to-speculate verdict",
        [],
        unsafe_library,
    )

    fig8_report = speculation_safety(fig8, "weak")
    unsafe = [(v.thread, v.index) for v in fig8_report.unsafe_loads()]
    result.claim(
        "Figure 8: exactly B's final load (L8) is unsafe to alias-speculate",
        [("B", 4)],
        unsafe,
    )
    fig8_weak = enumerate_behaviors(fig8, weak).register_outcomes()
    fig8_spec = enumerate_behaviors(fig8, weak_spec).register_outcomes()
    result.claim(
        "Figure 8: speculation admits strictly more behaviors, as the "
        "unsafe verdict predicts",
        True,
        fig8_weak < fig8_spec,
    )
    alias_report = speculation_safety(fig8_alias, "weak")
    result.claim(
        "Figure 9 aliasing variant: the same load is flagged unsafe",
        [("B", 4)],
        [(v.thread, v.index) for v in alias_report.unsafe_loads()],
    )
    validated = enumerate_value_speculation(fig8, "weak", validate=True)
    result.claim(
        "validated value speculation stays exact on Figure 8 despite the "
        "unsafe load (rollback restores soundness)",
        fig8_weak,
        validated.register_outcomes(),
    )

    top = sorted(reductions.items(), key=lambda item: -item[1])[:8]
    result.details = "\n".join(
        [
            f"enumeration wall-clock: baseline {base_seconds:.2f}s, "
            f"with facts {pruned_seconds:.2f}s",
            f"register-address tests: {', '.join(register_tests)} "
            f"(mean scan reduction {mean_reduction:.0%})",
            f"conservative programs: {legacy_conservative} syntactic -> "
            f"{precise_conservative} precise; over-approximated findings: "
            f"{legacy_approx} -> {precise_approx}",
            "",
            "largest candidate-scan reductions:",
            *(f"  {name:<16} {reduction:.0%}" for name, reduction in top),
        ]
    )
    return result
