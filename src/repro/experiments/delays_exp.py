"""TAB-DELAYS — Shasha & Snir's delay sets, statically and semantically.

§7: "Shasha and Snir take a program and discover which local orderings
are involved in potential cycles and are therefore actually necessary to
preserve SC behavior."  This experiment runs the static analysis and
checks it against the enumerator:

* the classic idioms each have exactly one minimal critical cycle and
  the folklore delay pairs,
* **the theorem**: fencing every delay pair makes the program robust
  (SC-indistinguishable) under WEAK — verified by exhaustive enumeration
  on every straight-line litmus test in the library,
* delays are *necessary*, not just sufficient: un-fenced SB/MP/LB are
  not robust,
* programs without critical cycles (single-writer, atomics-only) need
  no fences at all.
"""

from __future__ import annotations

from repro.analysis.compare import check_robustness
from repro.analysis.delays import delay_set, fence_delays
from repro.litmus.library import all_tests, get_test
from repro.errors import ProgramError
from repro.experiments.base import ExperimentResult

_CLASSIC_DELAYS = {
    "SB": 2,
    "MP": 2,
    "LB": 2,
    "IRIW": 2,
    "R": 2,
    "S": 2,
    "2+2W": 2,
    "CoRR": 1,
}


def run() -> ExperimentResult:
    result = ExperimentResult("TAB-DELAYS", "Shasha–Snir delay sets vs the enumerator")

    counts = {}
    for name in _CLASSIC_DELAYS:
        counts[name] = len(delay_set(get_test(name).program).delays)
    result.claim(
        "classic idioms have the folklore delay counts",
        _CLASSIC_DELAYS,
        counts,
    )

    failures = []
    skipped = 0
    checked = 0
    for test in all_tests():
        try:
            report = delay_set(test.program)
        except ProgramError:
            skipped += 1  # branchy or pointer-based tests
            continue
        checked += 1
        fenced = fence_delays(test.program, report)
        if not check_robustness(fenced, "weak").robust:
            failures.append(test.name)
    result.claim(
        f"fencing the delay set restores SC-robustness under WEAK on all "
        f"{checked} straight-line library tests",
        [],
        failures,
    )

    not_robust = [
        name
        for name in ("SB", "MP", "LB")
        if check_robustness(get_test(name).program, "weak").robust
    ]
    result.claim(
        "the un-fenced idioms really are non-robust (delays are necessary)",
        [],
        not_robust,
    )

    no_cycle = delay_set(get_test("INC+INC").program)
    result.claim(
        "an atomics-only program has no critical cycles",
        0,
        len(no_cycle.critical_cycles),
    )

    result.details = "\n".join(
        delay_set(get_test(name).program).summary() for name in _CLASSIC_DELAYS
    ) + f"\n(straight-line tests checked: {checked}, skipped: {skipped})"
    return result
