"""The service worker pool: checkpointed enumeration slices.

A job never runs as one opaque blob of work.  The pool drives it in
*slices* — each slice ships to a worker process, explores at most
``slice_behaviors`` more behaviors through the ordinary
:class:`~repro.core.enumerate.EnumerationLimits` budget machinery, and
atomically saves an :class:`~repro.core.enumerate.EnumerationCheckpoint`
before returning.  This one structure buys every robustness property:

* **crash-safety** — after ``kill -9`` the job resumes from its last
  durable checkpoint; PR 1's resume semantics guarantee the final
  behavior set is identical to an uninterrupted run;
* **worker-crash containment** — a died worker surfaces as
  :class:`~concurrent.futures.process.BrokenProcessPool`; the pool
  rebuilds the executor and retries from the checkpoint, at most
  ``retries`` times, then **quarantines** the job with a clear error
  instead of looping forever;
* **deadlines** — the driver checks the injectable clock between slices
  and hands each slice only the remaining budget;
* **cancellation** — a :class:`~repro.core.enumerate.CancellationToken`
  is polled between slices (and inside them when running inline).

``workers=0`` runs slices inline in the calling thread — no processes,
same code path — which tests and the fault injector use.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

from repro.core.enumerate import (
    CancellationToken,
    EnumerationCheckpoint,
    EnumerationResult,
    ExhaustionReason,
    enumerate_behaviors,
    resume_enumeration,
)
from repro.errors import ReproError
from repro.isa.assembler import assemble
from repro.models.registry import get_model
from repro.service.jobs import canonical_result, limits_from_dict


def _run_slice(payload: dict) -> dict:
    """One bounded enumeration slice.  Module-level so it pickles into a
    worker process; also called inline when ``workers=0``.

    Returns ``{"status": "partial"|"done", "explored": n, ...}`` — on
    ``done`` the canonical result rides along; on ``partial`` a
    checkpoint has been durably saved at ``checkpoint_path`` first.
    """
    source = payload["source"]
    model = get_model(payload["model"])
    limits = limits_from_dict(payload["limits"])
    checkpoint_path = Path(payload["checkpoint_path"])
    slice_budget = payload["slice_budget"]
    slice_deadline = payload.get("slice_deadline")
    token = payload.get("token")
    cache_dir = payload.get("cache_dir")
    cache = None
    if cache_dir is not None:
        from repro.cache import BehaviorCache

        cache = BehaviorCache.shared(cache_dir)

    checkpoint = None
    if checkpoint_path.exists():
        try:
            checkpoint = EnumerationCheckpoint.load(checkpoint_path)
        except ReproError:
            # Unreadable/foreign-version checkpoint: degrade by starting
            # the enumeration over rather than failing the job.
            checkpoint = None

    # Cache consultation happens on the first slice only (a checkpoint
    # means partial work this key has never finished); the key is the
    # *job's* full limits — slices are an implementation detail that the
    # resume semantics make behavior-invisible.
    if checkpoint is None and cache is not None:
        program = assemble(source).program
        entry = cache.lookup(cache.key_for(program, model, limits))
        if entry is not None:
            replayed = EnumerationResult(
                program=entry.program,
                model=entry.model,
                executions=list(entry.executions),
                stats=entry.stats,
                complete=True,
                cached=True,
            )
            return {
                "status": "done",
                "explored": entry.stats.explored,
                "result": canonical_result(replayed),
                "cached": True,
            }

    explored_base = checkpoint.stats.explored if checkpoint is not None else 0
    slice_cap = min(limits.max_behaviors, explored_base + slice_budget)
    slice_limits = replace(
        limits, max_behaviors=slice_cap, deadline_seconds=slice_deadline
    )
    if checkpoint is not None:
        result = resume_enumeration(checkpoint, slice_limits, token=token)
    else:
        program = assemble(source).program
        result = enumerate_behaviors(program, model, slice_limits, token=token)

    explored = result.stats.explored
    if result.complete:
        if cache is not None:
            cache.store(
                cache.key_for(result.program, model, limits),
                result.program,
                model,
                limits,
                result.executions,
                result.stats,
            )
            cache.flush()
        return {
            "status": "done",
            "explored": explored,
            "result": canonical_result(result),
        }
    exhausted_slice_budget = (
        result.reason is ExhaustionReason.BEHAVIOR_BUDGET
        and explored < limits.max_behaviors
    )
    if exhausted_slice_budget:
        result.checkpoint.save(checkpoint_path)
        return {"status": "partial", "explored": explored}
    if result.reason is ExhaustionReason.CANCELLED:
        result.checkpoint.save(checkpoint_path)
        return {"status": "cancelled", "explored": explored}
    if result.reason is ExhaustionReason.DEADLINE:
        # The slice deadline is the job's remaining budget: save the
        # checkpoint so a restart under a fresh deadline can resume,
        # and let the driver decide (job deadline vs user deadline).
        result.checkpoint.save(checkpoint_path)
        return {"status": "deadline", "explored": explored}
    # A real user budget (behavior count, memory) exhausted: the job is
    # finished with an honestly-labeled partial result.
    return {
        "status": "done",
        "explored": explored,
        "result": canonical_result(result),
        "reason": result.reason.value,
    }


@dataclass
class JobOutcome:
    """What :meth:`WorkerPool.run_job` resolved a job to."""

    status: str  #: "completed" | "failed" | "quarantined" | "cancelled"
    result: dict | None = None
    error: str = ""
    explored: int = 0
    attempts: int = 1


class WorkerPool:
    """A bounded pool of enumeration workers shared by all jobs."""

    def __init__(
        self,
        workers: int = 1,
        slice_behaviors: int = 500,
        retries: int = 1,
        slice_delay: float = 0.0,
        clock: Callable[[], float] | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.workers = workers
        self.slice_behaviors = max(1, slice_behaviors)
        self.retries = retries
        self.slice_delay = slice_delay
        self.clock = clock or time.monotonic
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None

    # -- executor lifecycle --------------------------------------------

    def _get_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            return self._executor

    def _discard_executor(self, broken: ProcessPoolExecutor) -> None:
        """Drop a broken executor (a crashed worker poisons the whole
        pool); the next slice lazily builds a fresh one."""
        with self._lock:
            if self._executor is broken:
                self._executor = None
        broken.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None

    # -- the fault-injection seam --------------------------------------

    def _submit_slice(self, payload: dict) -> dict:
        """Run one slice, in a worker process (or inline for
        ``workers=0``).  The service fault injector patches this method
        to simulate worker death mid-job."""
        if self.workers <= 0:
            return _run_slice(payload)
        executor = self._get_executor()
        shipped = dict(payload)
        shipped.pop("token", None)  # threading primitives don't pickle
        try:
            return executor.submit(_run_slice, shipped).result()
        except BrokenProcessPool:
            self._discard_executor(executor)
            raise

    # -- the job driver -------------------------------------------------

    def run_job(
        self,
        source: str,
        model: str,
        limits: dict,
        deadline_seconds: float | None,
        checkpoint_path: str | Path,
        token: CancellationToken | None = None,
        progress: Callable[[int], None] | None = None,
    ) -> JobOutcome:
        """Drive one job to a terminal outcome (blocking; called from a
        worker thread of the server, or directly by tests)."""
        checkpoint_path = Path(checkpoint_path)
        start = self.clock()
        attempts = 1
        explored = 0
        while True:
            if token is not None and token.cancelled:
                return JobOutcome(
                    status="cancelled", explored=explored, attempts=attempts
                )
            slice_deadline: float | None = None
            if deadline_seconds is not None:
                slice_deadline = deadline_seconds - (self.clock() - start)
                if slice_deadline <= 0:
                    return JobOutcome(
                        status="failed",
                        error=f"deadline of {deadline_seconds}s exceeded",
                        explored=explored,
                        attempts=attempts,
                    )
            payload = {
                "source": source,
                "model": model,
                "limits": limits,
                "checkpoint_path": str(checkpoint_path),
                "slice_budget": self.slice_behaviors,
                "slice_deadline": slice_deadline,
                "token": token,
                "cache_dir": self.cache_dir,
            }
            try:
                outcome = self._submit_slice(payload)
            except BrokenProcessPool:
                attempts += 1
                if attempts > self.retries + 1:
                    return JobOutcome(
                        status="quarantined",
                        error=(
                            f"worker process crashed {attempts - 1} times "
                            f"(retry budget {self.retries} exhausted); job "
                            f"quarantined — last checkpoint kept at "
                            f"{checkpoint_path.name}"
                        ),
                        explored=explored,
                        attempts=attempts,
                    )
                continue  # retry resumes from the last saved checkpoint
            except ReproError as exc:
                return JobOutcome(
                    status="failed",
                    error=str(exc),
                    explored=explored,
                    attempts=attempts,
                )

            explored = outcome.get("explored", explored)
            if outcome["status"] == "done":
                self._cleanup_checkpoint(checkpoint_path)
                result = outcome["result"]
                if "reason" in outcome:
                    result = dict(result)
                    result["reason"] = outcome["reason"]
                return JobOutcome(
                    status="completed",
                    result=result,
                    explored=explored,
                    attempts=attempts,
                )
            if outcome["status"] == "cancelled":
                return JobOutcome(
                    status="cancelled", explored=explored, attempts=attempts
                )
            if outcome["status"] == "deadline":
                # The slice hit the wall clock; loop back — the driver's
                # own deadline check above decides whether the job is
                # out of time or may continue.
                if deadline_seconds is None:
                    # User-specified enumeration deadline (inside
                    # limits); treat like any other exhausted budget.
                    return JobOutcome(
                        status="failed",
                        error="enumeration deadline exceeded",
                        explored=explored,
                        attempts=attempts,
                    )
                continue
            # "partial": a checkpoint was saved; report progress and go on.
            if progress is not None:
                progress(explored)
            if self.slice_delay > 0:
                time.sleep(self.slice_delay)

    @staticmethod
    def _cleanup_checkpoint(checkpoint_path: Path) -> None:
        try:
            checkpoint_path.unlink()
        except OSError:
            pass
