"""Blocking HTTP client for the analysis service.

The CLI's ``repro submit``/``repro status`` commands are thin wrappers
around this; tests drive the server through it too.  Errors surface as
:class:`~repro.errors.ServiceError` carrying the HTTP status and, for
throttled requests, the server's ``Retry-After`` value — callers can
back off exactly as instructed.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

from repro.errors import ServiceError


class ServiceClient:
    """One server endpoint, e.g. ``ServiceClient("http://127.0.0.1:8642")``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("http", ""):
            raise ServiceError(f"unsupported scheme {split.scheme!r} (http only)")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
    ) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            connection.request(method, path, body=payload, headers=headers or {})
            response = connection.getresponse()
            raw = response.read()
            try:
                document = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                document = {"error": raw.decode("latin-1", "replace")}
            if response.status >= 400:
                retry_after = response.getheader("Retry-After")
                raise ServiceError(
                    document.get("error", f"HTTP {response.status}"),
                    status=response.status,
                    retry_after=float(retry_after) if retry_after else None,
                )
            return document
        except (ConnectionError, OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()

    # -- API ------------------------------------------------------------

    def submit(
        self,
        program: str,
        model: str = "weak",
        limits: dict | None = None,
        deadline_seconds: float | None = None,
        account: str = "anonymous",
    ) -> dict:
        body: dict = {"program": program, "model": model}
        if limits:
            body["limits"] = limits
        if deadline_seconds is not None:
            body["deadline_seconds"] = deadline_seconds
        return self._request("POST", "/jobs", body, {"X-Account": account})

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def list_jobs(self) -> list[dict]:
        return self._request("GET", "/jobs").get("jobs", [])

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def wait(
        self, job_id: str, timeout: float = 60.0, poll_interval: float = 0.1
    ) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in ("completed", "failed", "quarantined", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']!r} after {timeout}s"
                )
            time.sleep(poll_interval)
