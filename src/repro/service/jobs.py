"""Job records, content-addressed keys, and the WAL-backed job store.

A job is one enumeration request: a litmus program source, a model name
and resource limits.  Its identity is *content-addressed* — a blake2b
digest of the canonical request — so re-submitting identical work is
idempotent: the server answers with the existing job instead of queuing
a duplicate (the same digest machinery the enumeration dedup layer uses).

:class:`JobStore` owns every state transition and appends each one to
the :class:`~repro.service.wal.WriteAheadLog` *before* applying it, so
the in-memory state is always reconstructible:
:meth:`JobStore.recover` replays the WAL and re-queues jobs that were
queued or running when the process died (their enumeration resumes from
the per-job :class:`~repro.core.enumerate.EnumerationCheckpoint` if one
was saved).  Completed-job retention is bounded: beyond
``completed_retention`` terminal jobs, the oldest are evicted — memory
and (after compaction) disk stay bounded no matter how long the server
runs.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field

from repro.core.enumerate import EnumerationLimits, EnumerationResult
from repro.errors import ServiceError
from repro.service.wal import WALRecord, WriteAheadLog

_KEY_SIZE = 16  #: digest bytes in a job id (matches the dedup digests)


class JobState(str, enum.Enum):
    """Lifecycle of a job.  ``QUARANTINED`` is terminal failure after
    repeated worker crashes — the job is preserved for inspection but
    never retried again."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    QUARANTINED = "quarantined"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    {JobState.COMPLETED, JobState.FAILED, JobState.QUARANTINED, JobState.CANCELLED}
)


def job_key(source: str, model: str, limits: dict | None = None) -> str:
    """The content-addressed identity of a request.

    Whitespace-insensitive over the program source (line-stripped) so a
    resubmission with different indentation still deduplicates; the
    limits dict is canonicalized by sorted keys.
    """
    canonical_source = "\n".join(
        line.strip() for line in source.strip().splitlines() if line.strip()
    )
    canonical = json.dumps(
        [canonical_source, model, limits or {}],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(canonical.encode(), digest_size=_KEY_SIZE).hexdigest()


def limits_from_dict(data: dict | None) -> EnumerationLimits:
    """Build :class:`EnumerationLimits` from a request's limits dict,
    rejecting unknown fields with a clear client error."""
    data = dict(data or {})
    known = set(EnumerationLimits.__dataclass_fields__)
    unknown = set(data) - known
    if unknown:
        raise ServiceError(
            f"unknown limits field(s): {sorted(unknown)}; known: {sorted(known)}",
            status=400,
        )
    try:
        return EnumerationLimits(**data)
    except TypeError as exc:
        raise ServiceError(f"bad limits: {exc}", status=400) from exc


def canonical_result(result: EnumerationResult) -> dict:
    """The canonical JSON-able payload of a finished enumeration.

    Deterministic (sorted) so a resumed-after-crash run and a direct
    :func:`~repro.core.enumerate.enumerate_behaviors` call serialize to
    byte-identical JSON whenever their behavior sets agree.
    """
    outcomes = sorted(
        sorted([thread, register, value] for (thread, register), value in outcome)
        for outcome in result.register_outcomes()
    )
    return {
        "complete": result.complete,
        "executions": len(result),
        "outcomes": outcomes,
    }


@dataclass
class Job:
    """One enumeration request and its current state."""

    id: str
    account: str
    source: str
    model: str
    limits: dict = field(default_factory=dict)
    deadline_seconds: float | None = None
    program_name: str = ""
    state: JobState = JobState.QUEUED
    attempts: int = 0
    explored: int = 0
    result: dict | None = None
    error: str = ""
    submitted_seq: int = 0

    def view(self) -> dict:
        """The JSON document ``GET /jobs/<id>`` serves."""
        view = {
            "id": self.id,
            "state": self.state.value,
            "account": self.account,
            "model": self.model,
            "program": self.program_name,
            "attempts": self.attempts,
            "explored": self.explored,
        }
        if self.deadline_seconds is not None:
            view["deadline_seconds"] = self.deadline_seconds
        if self.result is not None:
            view["result"] = self.result
        if self.error:
            view["error"] = self.error
        return view

    def snapshot(self) -> dict:
        """Everything needed to rebuild the job (compaction record)."""
        return {
            "account": self.account,
            "source": self.source,
            "model": self.model,
            "limits": self.limits,
            "deadline_seconds": self.deadline_seconds,
            "program_name": self.program_name,
            "state": self.state.value,
            "attempts": self.attempts,
            "explored": self.explored,
            "result": self.result,
            "error": self.error,
        }


class JobStore:
    """The WAL-backed authoritative map of jobs.

    Every mutation appends to the WAL first; if the append fails the
    mutation does not happen — the caller surfaces the failure (503)
    and the in-memory state still matches the durable state.
    """

    def __init__(
        self, wal: WriteAheadLog, completed_retention: int = 1000
    ) -> None:
        self.wal = wal
        self.completed_retention = completed_retention
        self.jobs: dict[str, Job] = {}
        self._terminal_order: list[str] = []

    # -- mutations ------------------------------------------------------

    def submit(
        self,
        account: str,
        source: str,
        model: str,
        limits: dict | None,
        deadline_seconds: float | None,
        program_name: str,
    ) -> Job:
        """Durably accept a new job (the caller has already checked for
        an existing job under the same key)."""
        job = Job(
            id=job_key(source, model, limits),
            account=account,
            source=source,
            model=model,
            limits=dict(limits or {}),
            deadline_seconds=deadline_seconds,
            program_name=program_name,
        )
        record = self.wal.append(
            "submitted",
            job.id,
            {
                "account": account,
                "source": source,
                "model": model,
                "limits": job.limits,
                "deadline_seconds": deadline_seconds,
                "program_name": program_name,
            },
        )
        job.submitted_seq = record.seq
        self.jobs[job.id] = job
        return job

    def transition(
        self,
        job_id: str,
        state: JobState,
        *,
        error: str = "",
        result: dict | None = None,
        attempts: int | None = None,
        explored: int | None = None,
    ) -> Job:
        job = self.jobs[job_id]
        data: dict = {"state": state.value}
        if error:
            data["error"] = error
        if result is not None:
            data["result"] = result
        if attempts is not None:
            data["attempts"] = attempts
        if explored is not None:
            data["explored"] = explored
        self.wal.append("state", job_id, data)
        self._apply_state(job, data)
        if job.state in TERMINAL_STATES:
            self._note_terminal(job_id)
        return job

    def record_progress(self, job_id: str, explored: int) -> None:
        """A checkpoint was durably saved for a running job; the WAL
        record makes the progress visible across a restart."""
        self.wal.append("progress", job_id, {"explored": explored})
        job = self.jobs.get(job_id)
        if job is not None:
            job.explored = explored

    # -- recovery -------------------------------------------------------

    @staticmethod
    def _apply_state(job: Job, data: dict) -> None:
        job.state = JobState(data["state"])
        if "error" in data:
            job.error = data["error"]
        if "result" in data:
            job.result = data["result"]
        if "attempts" in data:
            job.attempts = data["attempts"]
        if "explored" in data:
            job.explored = data["explored"]

    @classmethod
    def recover(
        cls,
        wal: WriteAheadLog,
        records: list[WALRecord],
        completed_retention: int = 1000,
    ) -> tuple["JobStore", list[str]]:
        """Rebuild a store from replayed WAL records.

        Returns the store plus the ids to re-queue, in original
        submission order: every job that was queued or running when the
        process died.  The caller appends the ``requeued`` transitions
        (so the *next* crash replays correctly too) and re-dispatches.
        """
        store = cls(wal, completed_retention)
        for record in records:
            if record.event == "submitted":
                data = record.data
                job = Job(
                    id=record.job_id,
                    account=data.get("account", "anonymous"),
                    source=data.get("source", ""),
                    model=data.get("model", ""),
                    limits=dict(data.get("limits") or {}),
                    deadline_seconds=data.get("deadline_seconds"),
                    program_name=data.get("program_name", ""),
                    submitted_seq=record.seq,
                )
                store.jobs[job.id] = job
            elif record.event == "snapshot":
                data = dict(record.data)
                state = JobState(data.pop("state", JobState.QUEUED.value))
                job = Job(id=record.job_id, **data)
                job.state = state
                job.submitted_seq = record.seq
                store.jobs[job.id] = job
            elif record.event == "state":
                job = store.jobs.get(record.job_id)
                if job is not None:
                    cls._apply_state(job, record.data)
            elif record.event == "progress":
                job = store.jobs.get(record.job_id)
                if job is not None:
                    job.explored = record.data.get("explored", job.explored)
            # Unknown events are ignored: a newer server's log replays
            # on an older one without losing the transitions it knows.

        requeue = [
            job.id
            for job in sorted(store.jobs.values(), key=lambda j: j.submitted_seq)
            if job.state in (JobState.QUEUED, JobState.RUNNING)
        ]
        for job_id in requeue:
            store.jobs[job_id].state = JobState.QUEUED
        for job in store.jobs.values():
            if job.state in TERMINAL_STATES:
                store._terminal_order.append(job.id)
        return store, requeue

    def compact(self) -> None:
        """Rewrite the WAL as one snapshot record per live job."""
        records = []
        for seq, job in enumerate(
            sorted(self.jobs.values(), key=lambda j: j.submitted_seq), start=1
        ):
            records.append(
                WALRecord(seq=seq, event="snapshot", job_id=job.id, data=job.snapshot())
            )
        self.wal.rewrite(records)

    # -- retention ------------------------------------------------------

    def _note_terminal(self, job_id: str) -> None:
        self._terminal_order.append(job_id)
        while len(self._terminal_order) > self.completed_retention:
            victim = self._terminal_order.pop(0)
            self.jobs.pop(victim, None)

    # -- queries --------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def counts(self) -> dict:
        counts = {state.value: 0 for state in JobState}
        for job in self.jobs.values():
            counts[job.state.value] += 1
        return counts
