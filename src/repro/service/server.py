"""The asyncio HTTP job server (stdlib only — no web framework).

Endpoints::

    POST   /jobs       submit {program, model, limits?, deadline_seconds?}
                       → 201 {"id": …} (or 200 for an idempotent replay)
    GET    /jobs/<id>  poll state/result
    GET    /jobs       list job summaries
    DELETE /jobs/<id>  cancel a queued/running job
    GET    /healthz    liveness + queue/worker counters

Robustness properties, in the order a request meets them:

1. **rate limiting** — per-account token bucket (``X-Account`` header);
   a dry bucket answers 429 with a deterministic ``Retry-After``;
2. **backpressure** — the job queue is bounded; a full queue answers
   429 + ``Retry-After`` instead of growing server memory;
3. **durability** — the submission is appended to the WAL *before* the
   201 goes out; if the WAL write fails the client gets 503 and the job
   was never accepted (no silent loss either way);
4. **idempotency** — job ids are content-addressed, so retrying a
   submission (e.g. after a timeout) lands on the same job;
5. **crash recovery** — on startup the WAL is replayed: terminal jobs
   keep their results, interrupted jobs re-queue and resume from their
   enumeration checkpoints (see :mod:`repro.service.pool`).

The HTTP layer itself is deliberately minimal: one request per
connection, ``Content-Length`` bodies only — the clients under our
control (``repro submit``, the test-suite client) speak exactly this.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.enumerate import CancellationToken, EnumerationResult
from repro.errors import ReproError, ServiceError, WALError
from repro.isa.assembler import assemble
from repro.models.registry import available_models, get_model
from repro.service.jobs import (
    TERMINAL_STATES,
    JobState,
    JobStore,
    canonical_result,
    job_key,
    limits_from_dict,
)
from repro.service.pool import WorkerPool
from repro.service.ratelimit import RateLimiter, retry_after_header
from repro.service.wal import WriteAheadLog, replay_wal

_MAX_BODY = 1 << 20  #: request-body cap (1 MiB) — backpressure, not a DoS fix
_MAX_HEADER = 64 * 1024


@dataclass
class ServiceConfig:
    """Everything tunable about a :class:`JobServer`."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 → ephemeral (the bound port is ``server.port``)
    wal_dir: str | Path = "service-data"
    workers: int = 1  #: enumeration worker processes (0 = inline slices)
    queue_limit: int = 64  #: bounded submission queue (backpressure)
    rate_capacity: float = 10  #: token-bucket burst per account
    rate_refill: float = 1.0  #: tokens per second per account
    max_accounts: int = 1024  #: LRU bound on live rate-limit buckets
    retries: int = 1  #: worker-crash retries before quarantine
    slice_behaviors: int = 500  #: behaviors per checkpointed slice
    slice_delay: float = 0.0  #: pause between slices (testing knob)
    completed_retention: int = 1000  #: terminal jobs kept queryable
    queue_retry_after: float = 1.0  #: Retry-After when the queue is full
    fsync: bool = True  #: durability vs. test speed
    #: behavior-cache directory; a submission whose (program, model,
    #: limits) is already cached completes instantly, skipping the pool
    cache_dir: str | Path | None = None
    clock: Callable[[], float] = field(default=time.monotonic)


class _HTTPError(Exception):
    def __init__(self, status: int, message: str, headers: dict | None = None):
        self.status = status
        self.message = message
        self.headers = headers or {}


_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class JobServer:
    """The long-running analysis service.  Use programmatically::

        server = JobServer(ServiceConfig(wal_dir=tmp))
        await server.start()
        … requests against 127.0.0.1:server.port …
        await server.stop()
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.wal_dir = Path(self.config.wal_dir)
        self.checkpoint_dir = self.wal_dir / "checkpoints"
        self.port: int | None = None
        self.store: JobStore | None = None
        self.wal: WriteAheadLog | None = None
        self.pool = WorkerPool(
            workers=self.config.workers,
            slice_behaviors=self.config.slice_behaviors,
            retries=self.config.retries,
            slice_delay=self.config.slice_delay,
            clock=self.config.clock,
            cache_dir=self.config.cache_dir,
        )
        self.cache = None
        if self.config.cache_dir is not None:
            from repro.cache import BehaviorCache

            self.cache = BehaviorCache.shared(self.config.cache_dir)
        self.limiter = RateLimiter(
            capacity=self.config.rate_capacity,
            refill_rate=self.config.rate_refill,
            clock=self.config.clock,
            max_accounts=self.config.max_accounts,
        )
        self._queue: asyncio.Queue[str] = asyncio.Queue()
        self._queued_ids: set[str] = set()
        self._tokens: dict[str, CancellationToken] = {}
        self._server: asyncio.base_events.Server | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._recovered: list[str] = []

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Recover from the WAL, compact it, bind the socket, and start
        the worker tasks."""
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        wal_path = self.wal_dir / "jobs.wal"
        records = replay_wal(wal_path)
        self.wal = WriteAheadLog(wal_path, fsync=self.config.fsync)
        self.store, requeue = JobStore.recover(
            self.wal, records, self.config.completed_retention
        )
        self.store.compact()
        self._recovered = list(requeue)
        for job_id in requeue:
            self.wal.append("requeued", job_id, {})
            self._enqueue(job_id)

        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        loop_workers = max(1, self.config.workers)
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(), name=f"job-worker-{i}")
            for i in range(loop_workers)
        ]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Ask in-flight jobs to stop at their next slice boundary; their
        # RUNNING state stays in the WAL, so a restart re-queues them and
        # they resume from their checkpoints.
        for token in self._tokens.values():
            token.cancel()
        for task in self._worker_tasks:
            task.cancel()
        for task in self._worker_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        # Join the executor threads driving pool.run_job, so no orphan
        # thread keeps writing checkpoints after we return.
        await asyncio.get_running_loop().shutdown_default_executor()
        self.pool.shutdown()
        if self.wal is not None:
            self.wal.close()

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    # -- queue plumbing -------------------------------------------------

    def _enqueue(self, job_id: str) -> None:
        self._queued_ids.add(job_id)
        self._queue.put_nowait(job_id)

    @property
    def backlog(self) -> int:
        return len(self._queued_ids)

    # -- the worker coroutines ------------------------------------------

    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            self._queued_ids.discard(job_id)
            job = self.store.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                continue
            token = self._tokens.setdefault(job_id, CancellationToken())
            base_attempts = job.attempts
            try:
                self.store.transition(
                    job_id, JobState.RUNNING, attempts=base_attempts + 1
                )
            except WALError:
                # Can't durably record the start: leave the job queued
                # and back off rather than running unlogged work.
                self._enqueue(job_id)
                await asyncio.sleep(0.2)
                continue

            def report_progress(explored: int, job_id: str = job_id) -> None:
                loop.call_soon_threadsafe(self._record_progress, job_id, explored)

            outcome = await loop.run_in_executor(
                None,
                lambda: self.pool.run_job(
                    job.source,
                    job.model,
                    job.limits,
                    job.deadline_seconds,
                    self.checkpoint_dir / f"{job_id}.ckpt",
                    token=token,
                    progress=report_progress,
                ),
            )
            self._tokens.pop(job_id, None)
            state = {
                "completed": JobState.COMPLETED,
                "failed": JobState.FAILED,
                "quarantined": JobState.QUARANTINED,
                "cancelled": JobState.CANCELLED,
            }[outcome.status]
            try:
                self.store.transition(
                    job_id,
                    state,
                    result=outcome.result,
                    error=outcome.error,
                    explored=outcome.explored,
                    attempts=base_attempts + outcome.attempts,
                )
            except WALError:
                # The work is done but the result can't be made durable;
                # requeue so a later attempt (or a restart) redoes the
                # idempotent enumeration instead of losing the job.
                job.state = JobState.QUEUED
                self._enqueue(job_id)
                await asyncio.sleep(0.2)

    def _record_progress(self, job_id: str, explored: int) -> None:
        try:
            self.store.record_progress(job_id, explored)
        except WALError:
            pass  # progress records are advisory; the checkpoint is on disk

    # -- HTTP -----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, headers, body = await self._handle_request(reader)
        except _HTTPError as exc:
            status, headers, body = (
                exc.status,
                exc.headers,
                {"error": exc.message},
            )
        except Exception as exc:  # noqa: BLE001 — the server must not die
            status, headers, body = 500, {}, {"error": f"internal error: {exc}"}
        try:
            payload = json.dumps(body, sort_keys=True).encode()
            lines = [
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(payload)}",
                "Connection: close",
            ]
            lines += [f"{name}: {value}" for name, value in headers.items()]
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict, dict]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, OSError):
            raise _HTTPError(400, "connection dropped") from None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise _HTTPError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]

        headers: dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER:
                raise _HTTPError(413, "headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HTTPError(413, f"body exceeds {_MAX_BODY} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _HTTPError(400, "truncated request body") from None

        return self._route(method, target, headers, body)

    def _route(
        self, method: str, target: str, headers: dict, body: bytes
    ) -> tuple[int, dict, dict]:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return 200, {}, self._health()
        if path == "/jobs":
            if method == "POST":
                return self._submit(headers, body)
            if method == "GET":
                return 200, {}, {"jobs": [
                    job.view()
                    for job in sorted(
                        self.store.jobs.values(), key=lambda j: j.submitted_seq
                    )
                ]}
            raise _HTTPError(405, f"{method} not allowed on /jobs")
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            if method == "GET":
                return self._status(job_id)
            if method == "DELETE":
                return self._cancel(job_id)
            raise _HTTPError(405, f"{method} not allowed on {path}")
        raise _HTTPError(404, f"no route for {method} {path}")

    def _health(self) -> dict:
        counts = self.store.counts()
        return {
            "status": "ok",
            "backlog": self.backlog,
            "jobs": counts,
            "recovered": len(self._recovered),
            "wal_seq": self.wal.last_seq,
        }

    def _submit(self, headers: dict, body: bytes) -> tuple[int, dict, dict]:
        account = headers.get("x-account", "anonymous")

        # 1. rate limit — cheapest check first, before parsing anything.
        allowed, retry_after = self.limiter.check(account)
        if not allowed:
            raise _HTTPError(
                429,
                f"rate limit exceeded for account {account!r}; "
                f"retry in {retry_after:.2f}s",
                {"Retry-After": retry_after_header(retry_after)},
            )

        # 2. parse + validate the request.
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HTTPError(400, "body must be a JSON object")
        source = payload.get("program")
        model = payload.get("model", "weak")
        if not isinstance(source, str) or not source.strip():
            raise _HTTPError(400, "missing or empty 'program' field")
        if model not in available_models():
            raise _HTTPError(
                400,
                f"unknown model {model!r}; available: "
                f"{', '.join(available_models())}",
            )
        get_model(model)
        limits = payload.get("limits") or {}
        deadline = payload.get("deadline_seconds")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise _HTTPError(400, "'deadline_seconds' must be a positive number")
        try:
            enum_limits = limits_from_dict(limits)
            program = assemble(source).program
        except ServiceError as exc:
            raise _HTTPError(400, str(exc)) from None
        except ReproError as exc:
            raise _HTTPError(400, f"program does not assemble: {exc}") from None

        # 3. idempotency — the same content maps to the same job.
        key = job_key(source, model, limits)
        existing = self.store.get(key)
        if existing is not None:
            return 200, {}, existing.view()

        # 3b. behavior-cache fast path — a previously enumerated
        # (program, model, limits) completes instantly: the job is still
        # WAL-durable (submitted, then transitioned terminal) but never
        # queues, so it consumes no backpressure budget and no worker.
        if self.cache is not None:
            entry = self.cache.lookup(
                self.cache.key_for(program, get_model(model), enum_limits)
            )
            if entry is not None:
                replayed = EnumerationResult(
                    program=entry.program,
                    model=entry.model,
                    executions=list(entry.executions),
                    stats=entry.stats,
                    complete=True,
                    cached=True,
                )
                try:
                    job = self.store.submit(
                        account, source, model, limits, deadline, program.name
                    )
                    self.store.transition(
                        job.id, JobState.RUNNING, attempts=1
                    )
                    self.store.transition(
                        job.id,
                        JobState.COMPLETED,
                        result=canonical_result(replayed),
                        explored=entry.stats.explored,
                    )
                except WALError as exc:
                    raise _HTTPError(
                        503, f"cannot persist submission: {exc}"
                    ) from None
                return 201, {}, self.store.get(job.id).view()

        # 4. backpressure — bounded queue, never unbounded memory.
        if self.backlog >= self.config.queue_limit:
            raise _HTTPError(
                429,
                f"job queue is full ({self.config.queue_limit} pending); "
                f"retry later",
                {"Retry-After": retry_after_header(self.config.queue_retry_after)},
            )

        # 5. durability — WAL append happens inside submit(), *before*
        # the job becomes visible or this 201 is sent.
        try:
            job = self.store.submit(
                account, source, model, limits, deadline, program.name
            )
        except WALError as exc:
            raise _HTTPError(503, f"cannot persist submission: {exc}") from None
        self._enqueue(job.id)
        return 201, {}, job.view()

    def _status(self, job_id: str) -> tuple[int, dict, dict]:
        job = self.store.get(job_id)
        if job is None:
            raise _HTTPError(404, f"no job {job_id!r}")
        return 200, {}, job.view()

    def _cancel(self, job_id: str) -> tuple[int, dict, dict]:
        job = self.store.get(job_id)
        if job is None:
            raise _HTTPError(404, f"no job {job_id!r}")
        if job.state in TERMINAL_STATES:
            return 200, {}, job.view()
        token = self._tokens.setdefault(job_id, CancellationToken())
        token.cancel()
        if job.state is JobState.QUEUED:
            try:
                self.store.transition(job_id, JobState.CANCELLED)
            except WALError as exc:
                raise _HTTPError(503, f"cannot persist cancellation: {exc}") from None
            self._tokens.pop(job_id, None)
        return 200, {}, self.store.get(job_id).view()


async def run_server(config: ServiceConfig) -> None:
    """Start a server and run until cancelled (the CLI entry point)."""
    server = JobServer(config)
    await server.start()
    print(
        f"serving on http://{config.host}:{server.port} "
        f"(wal={server.wal_dir}, workers={config.workers})",
        flush=True,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
