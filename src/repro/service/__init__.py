"""Analysis-as-a-service: a crash-safe async job server for the engine.

The service wraps :func:`repro.core.enumerate.enumerate_behaviors` in a
long-running asyncio HTTP server so heavy enumeration campaigns survive
process crashes and share one worker pool:

* :mod:`repro.service.server` — the HTTP front end (``POST /jobs``,
  ``GET /jobs/<id>``) with per-account token-bucket rate limiting and a
  bounded queue for backpressure (429 + ``Retry-After``);
* :mod:`repro.service.wal` — the write-ahead log every job-state
  transition is appended to *before* it is acknowledged, so a
  ``kill -9`` + restart loses no accepted job;
* :mod:`repro.service.jobs` — job records, content-addressed job keys
  (idempotent submission) and the WAL-backed store + recovery;
* :mod:`repro.service.pool` — the worker pool running enumerations in
  checkpointed slices through the existing
  ``EnumerationLimits``/``EnumerationCheckpoint`` machinery, with
  worker-crash detection and bounded retry-then-quarantine;
* :mod:`repro.service.ratelimit` — deterministic token buckets;
* :mod:`repro.service.client` — the thin blocking client the CLI's
  ``repro submit``/``repro status`` commands use.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobState, JobStore, canonical_result, job_key
from repro.service.pool import WorkerPool
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.server import JobServer, ServiceConfig
from repro.service.wal import WALRecord, WriteAheadLog

__all__ = [
    "Job",
    "JobServer",
    "JobState",
    "JobStore",
    "RateLimiter",
    "ServiceClient",
    "ServiceConfig",
    "TokenBucket",
    "WALRecord",
    "WorkerPool",
    "WriteAheadLog",
    "canonical_result",
    "job_key",
]
