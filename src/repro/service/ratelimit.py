"""Deterministic per-account token-bucket rate limiting.

A bucket holds up to ``capacity`` tokens and refills at ``refill_rate``
tokens/second; each accepted submission spends one token.  Time comes
from an injectable ``clock`` (default ``time.monotonic``), so tests —
and the clock-jump fault injector — drive the limiter deterministically:
for a given clock sequence the allow/deny decisions and ``Retry-After``
values are exact, not probabilistic.

The account table is bounded: beyond ``max_accounts`` live buckets the
least-recently-used one is evicted (its account restarts with a full
bucket — strictly more permissive, never a lockout), so an adversary
inventing account names cannot grow server memory without bound.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from typing import Callable


class TokenBucket:
    """One account's bucket.  Not thread-safe on its own; the server
    calls it from the event loop only."""

    def __init__(
        self, capacity: float, refill_rate: float, now: float
    ) -> None:
        if capacity <= 0 or refill_rate <= 0:
            raise ValueError("capacity and refill_rate must be positive")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self.tokens = float(capacity)
        self.updated = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.refill_rate)
        self.updated = now

    def acquire(self, now: float) -> tuple[bool, float]:
        """Try to spend one token.  Returns ``(allowed, retry_after)``;
        ``retry_after`` is 0 when allowed, else the exact seconds until
        a token will be available at the current refill rate."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.refill_rate

    @property
    def full(self) -> bool:
        return self.tokens >= self.capacity


class RateLimiter:
    """Per-account buckets with LRU-bounded memory."""

    def __init__(
        self,
        capacity: float = 10,
        refill_rate: float = 1.0,
        clock: Callable[[], float] | None = None,
        max_accounts: int = 1024,
    ) -> None:
        self.capacity = capacity
        self.refill_rate = refill_rate
        self.clock = clock or time.monotonic
        self.max_accounts = max_accounts
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    def check(self, account: str) -> tuple[bool, float]:
        """One submission attempt by ``account``: ``(allowed,
        retry_after_seconds)``."""
        now = self.clock()
        bucket = self._buckets.get(account)
        if bucket is None:
            bucket = TokenBucket(self.capacity, self.refill_rate, now)
            self._buckets[account] = bucket
            while len(self._buckets) > self.max_accounts:
                self._buckets.popitem(last=False)
        self._buckets.move_to_end(account)
        return bucket.acquire(now)

    @property
    def accounts(self) -> int:
        return len(self._buckets)


def retry_after_header(seconds: float) -> str:
    """HTTP ``Retry-After`` is integral seconds; round up so a client
    honoring it is never throttled again on arrival."""
    return str(max(1, math.ceil(seconds)))
