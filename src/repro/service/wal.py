"""Write-ahead log for job-state transitions.

Durability contract: :meth:`WriteAheadLog.append` returns only after the
record is on disk (written, flushed, fsynced), so any state the server
has *acknowledged* — an accepted submission, a completed result — is
recoverable after ``kill -9``.  The log is a sequence of JSON lines::

    {"seq": 3, "event": "state", "job": "ab12…", "data": {…}, "crc": "…"}

``crc`` is a blake2b digest over the canonical encoding of the other
fields, so replay detects corruption.  A crash mid-append can leave one
*torn* record at the tail; :func:`replay_wal` silently drops it (the
transition was never acknowledged).  A bad record followed by good ones,
or a sequence-number regression, means real corruption and raises
:class:`~repro.errors.WALError`.

:meth:`WriteAheadLog.rewrite` compacts the log atomically (temp file +
``os.replace``), bounding disk growth across restarts.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.errors import WALError

_CRC_SIZE = 8  #: digest bytes per record (collision-detection, not crypto)


def _crc(seq: int, event: str, job_id: str, data: dict) -> str:
    canonical = json.dumps(
        [seq, event, job_id, data], sort_keys=True, separators=(",", ":")
    )
    return hashlib.blake2b(canonical.encode(), digest_size=_CRC_SIZE).hexdigest()


@dataclass(frozen=True)
class WALRecord:
    """One durable job-state transition."""

    seq: int
    event: str
    job_id: str
    data: dict

    def encode(self) -> str:
        payload = {
            "seq": self.seq,
            "event": self.event,
            "job": self.job_id,
            "data": self.data,
            "crc": _crc(self.seq, self.event, self.job_id, self.data),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _decode_line(line: str) -> WALRecord:
    """Parse and verify one WAL line; raises ``ValueError`` on any
    malformation (the caller decides whether that is a torn tail)."""
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("record is not an object")
    try:
        seq = payload["seq"]
        event = payload["event"]
        job_id = payload["job"]
        data = payload["data"]
        crc = payload["crc"]
    except KeyError as exc:
        raise ValueError(f"record missing field {exc.args[0]!r}") from None
    if crc != _crc(seq, event, job_id, data):
        raise ValueError("checksum mismatch")
    return WALRecord(seq=seq, event=event, job_id=job_id, data=data)


def replay_wal(path: str | Path) -> list[WALRecord]:
    """Read every durable record from a WAL file.

    A missing file replays to an empty history (fresh server).  A torn
    final record is dropped; corruption anywhere else raises
    :class:`WALError`.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError as exc:
        raise WALError(f"cannot read WAL {str(path)!r}: {exc}") from exc

    records: list[WALRecord] = []
    bad_at: int | None = None
    bad_reason = ""
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if bad_at is not None:
            raise WALError(
                f"WAL {str(path)!r} is corrupt at line {bad_at} "
                f"({bad_reason}) but has records after it"
            )
        try:
            record = _decode_line(line)
        except ValueError as exc:
            bad_at, bad_reason = number, str(exc)
            continue
        if records and record.seq <= records[-1].seq:
            raise WALError(
                f"WAL {str(path)!r} sequence regressed at line {number}: "
                f"{records[-1].seq} -> {record.seq}"
            )
        records.append(record)
    return records


class WriteAheadLog:
    """Append-only, fsynced, thread-safe job-transition log."""

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = replay_wal(self.path)
        self._seq = existing[-1].seq if existing else 0
        # "a" keeps durable records; a torn tail line (no newline) is
        # neutralized by starting every append on a fresh line.
        self._handle = open(self.path, "a", encoding="utf-8")
        if self._handle.tell() > 0:
            self._handle.write("\n")

    @property
    def last_seq(self) -> int:
        return self._seq

    def append(self, event: str, job_id: str, data: dict | None = None) -> WALRecord:
        """Durably append one record; returns it (with its sequence
        number) only after the bytes are on disk."""
        with self._lock:
            record = WALRecord(
                seq=self._seq + 1, event=event, job_id=job_id, data=dict(data or {})
            )
            try:
                self._handle.write(record.encode() + "\n")
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
            except OSError as exc:
                raise WALError(f"WAL append failed: {exc}") from exc
            self._seq = record.seq
            return record

    def rewrite(self, records: list[WALRecord]) -> None:
        """Atomically replace the log with ``records`` (compaction).
        Sequence numbers are preserved so replay ordering survives."""
        with self._lock:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.path.parent, prefix=f".{self.path.name}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    for record in records:
                        handle.write(record.encode() + "\n")
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
                self._handle.close()
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                self._handle = open(self.path, "a", encoding="utf-8")
                raise
            self._handle = open(self.path, "a", encoding="utf-8")
            if records:
                self._seq = max(self._seq, records[-1].seq)

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()
