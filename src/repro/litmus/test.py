"""Litmus tests: a program + a final-state condition + expectations.

A :class:`LitmusTest` bundles a program with a herd-style condition and a
table of *expected verdicts* per model — whether the condition's relaxed
outcome should be observable — which the test suite and the litmus-matrix
experiment check against the enumerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConditionError
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.litmus.conditions import Condition, parse_condition


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus test.

    ``expected`` maps a model name to the expected truth of the
    *condition* under that model (for ``exists`` conditions: is the
    relaxed outcome observable?).  Models absent from the map carry no
    expectation.  ``description`` says what the test discriminates.
    """

    name: str
    program: Program
    condition: Condition
    expected: dict[str, bool] = field(default_factory=dict)
    description: str = ""

    def expectation(self, model_name: str) -> bool | None:
        return self.expected.get(model_name)


def litmus_from_source(
    source: str,
    expected: dict[str, bool] | None = None,
    description: str = "",
) -> LitmusTest:
    """Assemble a litmus test from the textual format (the condition line
    is mandatory here)."""
    assembled = assemble(source)
    if assembled.condition_text is None:
        raise ConditionError(
            f"litmus source for {assembled.program.name!r} has no condition line"
        )
    return LitmusTest(
        name=assembled.program.name,
        program=assembled.program,
        condition=parse_condition(assembled.condition_text),
        expected=dict(expected or {}),
        description=description,
    )
