"""Realizable final-memory states of a partially ordered execution.

An execution graph determines final register values uniquely, but the
final *memory* contents depend on which serialization happened: for each
address, the last store in the chosen total order.  A store ``S`` to
address ``a`` can be last iff a linear extension exists in which every
other visible store to ``a`` precedes it — i.e. iff the edge set
``{S' → S : S' =a S}`` can be added without creating a cycle.  Choices
for different addresses interact through ``⊑``, so joint assignments are
validated by trial edge insertion on a scratch copy of the graph.

This gives herd-comparable semantics to ``[x]=v`` condition atoms while
staying faithful to the paper's partial-order representation.
"""

from __future__ import annotations

from itertools import product

from repro.errors import AtomicityViolation, CycleError
from repro.core.atomicity import close_store_atomicity
from repro.core.execution import Execution
from repro.core.graph import EdgeKind
from repro.core.node import Node


def _stores_by_location(execution: Execution, locations: frozenset[str]) -> dict[str, list[Node]]:
    grouped: dict[str, list[Node]] = {location: [] for location in locations}
    for node in execution.graph.nodes:
        if node.is_visible_store and node.addr in grouped:
            grouped[node.addr].append(node)
    return grouped


def _last_candidates(execution: Execution, stores: list[Node]) -> list[Node]:
    """Stores with no same-address ⊑-successor store (potentially last)."""
    graph = execution.graph
    return [
        store
        for store in stores
        if not any(
            other.nid != store.nid and graph.before(store.nid, other.nid)
            for other in stores
        )
    ]


def _jointly_realizable(
    execution: Execution, choice: dict[str, Node], grouped: dict[str, list[Node]]
) -> bool:
    """Can every chosen store be the last one to its address simultaneously?"""
    scratch = execution.graph.copy()
    try:
        for location, final in choice.items():
            for other in grouped[location]:
                if other.nid != final.nid and not scratch.before(other.nid, final.nid):
                    scratch.add_edge(other.nid, final.nid, EdgeKind.IMPOSED)
        # Imposed orderings may trigger further Store Atomicity obligations
        # (§3.3: inserting edges is legal only if the closure stays acyclic).
        close_store_atomicity(scratch)
    except (CycleError, AtomicityViolation):
        return False
    return True


def realizable_final_memory(
    execution: Execution, locations: frozenset[str]
) -> list[dict[str, object]]:
    """All final-memory assignments for ``locations`` that some
    serialization of ``execution`` can produce.

    Returns a list of ``{location: value}`` dicts; with no locations the
    single empty assignment is returned (conditions without memory atoms
    need exactly one evaluation).  Locations never written resolve to no
    assignment at all, making any memory atom on them false.
    """
    if not locations:
        return [{}]
    grouped = _stores_by_location(execution, locations)
    if any(not stores for stores in grouped.values()):
        return []
    ordered_locations = sorted(grouped)
    candidate_lists = [
        _last_candidates(execution, grouped[location]) for location in ordered_locations
    ]
    assignments = []
    for combination in product(*candidate_lists):
        choice = dict(zip(ordered_locations, combination))
        if _jointly_realizable(execution, choice, grouped):
            assignments.append(
                {location: store.stored for location, store in choice.items()}
            )
    # Distinct store nodes may have stored equal values; deduplicate.
    unique: list[dict[str, object]] = []
    seen = set()
    for assignment in assignments:
        key = tuple(sorted(assignment.items(), key=lambda kv: kv[0]))
        if key not in seen:
            seen.add(key)
            unique.append(assignment)
    return unique
