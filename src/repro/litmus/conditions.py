"""herd-style final-state conditions for litmus tests.

Grammar (whitespace-insensitive)::

    condition := ('exists' | '~exists' | 'forall') expr
    expr      := term ( '\\/' term )*
    term      := factor ( '/\\' factor )*
    factor    := '(' expr ')' | 'not' factor | atom
    atom      := THREAD ':' REG '=' VALUE        register equality
               | '[' LOC ']' '=' VALUE           final memory contents

Values are integers or location names.  Expressions are evaluated against
one execution's final registers plus one *concrete final-memory
assignment*.  Because an execution is a partial order, its final memory
can be ambiguous (unobserved stores race); the realizable assignments are
computed by :mod:`repro.litmus.finalstate` and the quantifier ranges over
(execution, assignment) pairs:

* ``exists`` — some execution has some realizable final state satisfying
  the expression,
* ``~exists`` — no (execution, final state) pair satisfies it,
* ``forall`` — every realizable final state of every execution satisfies it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from repro.errors import ConditionError
from repro.isa.operands import Value


@dataclass(frozen=True)
class RegisterAtom:
    """``thread:register = value``."""

    thread: str
    register: str
    value: Value

    def evaluate(self, registers: dict, memory: dict) -> bool:
        return registers.get((self.thread, self.register)) == self.value

    def locations(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.thread}:{self.register}={self.value}"


@dataclass(frozen=True)
class MemoryAtom:
    """``[location] = value`` against a concrete final-memory assignment."""

    location: str
    value: Value

    def evaluate(self, registers: dict, memory: dict) -> bool:
        return memory.get(self.location) == self.value

    def locations(self) -> frozenset[str]:
        return frozenset({self.location})

    def __str__(self) -> str:
        return f"[{self.location}]={self.value}"


@dataclass(frozen=True)
class Not:
    operand: "Expr"

    def evaluate(self, registers: dict, memory: dict) -> bool:
        return not self.operand.evaluate(registers, memory)

    def locations(self) -> frozenset[str]:
        return self.operand.locations()

    def __str__(self) -> str:
        return f"not {self.operand}"


@dataclass(frozen=True)
class And:
    operands: tuple["Expr", ...]

    def evaluate(self, registers: dict, memory: dict) -> bool:
        return all(op.evaluate(registers, memory) for op in self.operands)

    def locations(self) -> frozenset[str]:
        return frozenset().union(*(op.locations() for op in self.operands))

    def __str__(self) -> str:
        return "(" + " /\\ ".join(map(str, self.operands)) + ")"


@dataclass(frozen=True)
class Or:
    operands: tuple["Expr", ...]

    def evaluate(self, registers: dict, memory: dict) -> bool:
        return any(op.evaluate(registers, memory) for op in self.operands)

    def locations(self) -> frozenset[str]:
        return frozenset().union(*(op.locations() for op in self.operands))

    def __str__(self) -> str:
        return "(" + " \\/ ".join(map(str, self.operands)) + ")"


Expr = Union[RegisterAtom, MemoryAtom, Not, And, Or]


@dataclass(frozen=True)
class Condition:
    """A quantified condition: ``exists`` / ``~exists`` / ``forall``."""

    quantifier: str  # "exists" | "~exists" | "forall"
    expr: Expr

    def __post_init__(self) -> None:
        if self.quantifier not in ("exists", "~exists", "forall"):
            raise ConditionError(f"unknown quantifier {self.quantifier!r}")

    def holds_in(self, registers: dict, memory: dict) -> bool:
        """Whether the bare expression holds in one concrete final state."""
        return self.expr.evaluate(registers, memory)

    def locations(self) -> frozenset[str]:
        """Memory locations the condition constrains."""
        return self.expr.locations()

    def judge(self, satisfied_count: int, total: int) -> bool:
        """Apply the quantifier to counts over the behavior set."""
        if self.quantifier == "exists":
            return satisfied_count > 0
        if self.quantifier == "~exists":
            return satisfied_count == 0
        return satisfied_count == total

    def __str__(self) -> str:
        return f"{self.quantifier} {self.expr}"


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<op>/\\|\\/|\(|\)|\[|\]|:|=)"
    r"|(?P<int>-?\d+)"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_]*)"
    r")"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            raise ConditionError(f"cannot tokenize condition at: {text[position:]!r}")
        position = match.end()
        for kind in ("op", "int", "word"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def pop(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ConditionError("unexpected end of condition")
        self.position += 1
        return token

    def expect(self, value: str) -> None:
        token = self.pop()
        if token[1] != value:
            raise ConditionError(f"expected {value!r}, got {token[1]!r}")

    def parse_expr(self) -> Expr:
        terms = [self.parse_term()]
        while self.peek() == ("op", "\\/"):
            self.pop()
            terms.append(self.parse_term())
        return terms[0] if len(terms) == 1 else Or(tuple(terms))

    def parse_term(self) -> Expr:
        factors = [self.parse_factor()]
        while self.peek() == ("op", "/\\"):
            self.pop()
            factors.append(self.parse_factor())
        return factors[0] if len(factors) == 1 else And(tuple(factors))

    def parse_factor(self) -> Expr:
        token = self.peek()
        if token is None:
            raise ConditionError("unexpected end of condition")
        if token == ("op", "("):
            self.pop()
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if token == ("word", "not"):
            self.pop()
            return Not(self.parse_factor())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.pop()
        if token == ("op", "["):
            location = self.pop()
            if location[0] != "word":
                raise ConditionError(f"expected location name, got {location[1]!r}")
            self.expect("]")
            self.expect("=")
            return MemoryAtom(location[1], self._value())
        if token[0] != "word":
            raise ConditionError(f"expected thread name, got {token[1]!r}")
        thread = token[1]
        self.expect(":")
        register = self.pop()
        if register[0] != "word":
            raise ConditionError(f"expected register name, got {register[1]!r}")
        self.expect("=")
        return RegisterAtom(thread, register[1], self._value())

    def _value(self) -> Value:
        token = self.pop()
        if token[0] == "int":
            return int(token[1])
        if token[0] == "word":
            return token[1]
        raise ConditionError(f"expected a value, got {token[1]!r}")


def parse_condition(text: str) -> Condition:
    """Parse a full condition line, e.g. ``exists (P0:r1=0 /\\ P1:r2=0)``."""
    stripped = text.strip()
    quantifier = None
    for candidate in ("~exists", "exists", "forall"):
        if stripped.startswith(candidate):
            quantifier = candidate
            stripped = stripped[len(candidate) :]
            break
    if quantifier is None:
        raise ConditionError(
            f"condition must start with exists/~exists/forall: {text!r}"
        )
    parser = _Parser(_tokenize(stripped))
    expr = parser.parse_expr()
    if parser.peek() is not None:
        raise ConditionError(f"trailing tokens in condition: {text!r}")
    return Condition(quantifier, expr)
