"""Parametric litmus-test families.

Classic tests generalize to whole families indexed by a size parameter;
these scale the discriminating patterns to arbitrarily many threads,
both for correctness testing (the expectations stay uniform in ``n``)
and as realistic enumeration workloads for the scaling benchmarks.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.isa.dsl import ProgramBuilder
from repro.isa.program import Program
from repro.litmus.conditions import parse_condition
from repro.litmus.test import LitmusTest


def sb_ring(n: int, fenced: bool = False) -> LitmusTest:
    """The n-thread store-buffering ring: thread i stores to ``x_i`` then
    loads ``x_{i+1 mod n}``.  All-zero loads require every store to pass
    its own thread's load — forbidden under SC, observable once
    store→load reorders (TSO and weaker), forbidden again with fences.
    ``sb_ring(2)`` is the classic SB.
    """
    if n < 2:
        raise ProgramError("an SB ring needs at least two threads")
    builder = ProgramBuilder(f"sb-ring-{n}{'+f' if fenced else ''}")
    for index in range(n):
        thread = builder.thread(f"P{index}")
        thread.store(f"x{index}", 1)
        if fenced:
            thread.fence()
        thread.load(f"r{index + 1}", f"x{(index + 1) % n}")
    atoms = " /\\ ".join(f"P{index}:r{index + 1}=0" for index in range(n))
    return LitmusTest(
        name=f"sb-ring-{n}{'+f' if fenced else ''}",
        program=builder.build(),
        condition=parse_condition(f"exists ({atoms})"),
        expected={
            "sc": False,
            "tso": not fenced,
            "pso": not fenced,
            "weak": not fenced,
        },
        description=f"{n}-thread store-buffering ring"
        + (" with fences" if fenced else ""),
    )


def mp_chain(n: int, fenced: bool = False) -> LitmusTest:
    """Message passing through ``n`` forwarding hops: the writer
    publishes data then a flag; each hop copies flag i to flag i+1; the
    reader checks the last flag and reads the data.  The stale read needs
    a store→store or load→load (or load→store at a hop) reordering
    somewhere along the chain.
    """
    if n < 1:
        raise ProgramError("an MP chain needs at least one hop")
    builder = ProgramBuilder(f"mp-chain-{n}{'+f' if fenced else ''}")
    writer = builder.thread("W")
    writer.store("data", 1)
    if fenced:
        writer.fence()
    writer.store("f1", 1)
    for hop in range(1, n):
        thread = builder.thread(f"H{hop}")
        thread.load(f"r{hop}", f"f{hop}")
        if fenced:
            thread.fence()
        thread.store(f"f{hop + 1}", f"r{hop}")
    reader = builder.thread("R")
    reader.load("r97", f"f{n}")
    if fenced:
        reader.fence()
    reader.load("r98", "data")
    return LitmusTest(
        name=f"mp-chain-{n}{'+f' if fenced else ''}",
        program=builder.build(),
        condition=parse_condition("exists (R:r97=1 /\\ R:r98=0)"),
        expected={
            "sc": False,
            "tso": False,
            "pso": not fenced,
            "weak": not fenced,
        },
        description=f"message passing through {n} hop(s)"
        + (" with fences" if fenced else ""),
    )


def independent_writers(readers: int) -> LitmusTest:
    """IRIW generalized to ``readers`` reader threads over two writers;
    any two readers disagreeing on the store order witnesses the
    violation, so the condition uses the first two readers."""
    if readers < 2:
        raise ProgramError("need at least two readers")
    builder = ProgramBuilder(f"iriw-{readers}r")
    builder.thread("W0").store("x", 1)
    builder.thread("W1").store("y", 1)
    for index in range(readers):
        thread = builder.thread(f"R{index}")
        first, second = ("x", "y") if index % 2 == 0 else ("y", "x")
        thread.load(f"r{2 * index + 1}", first)
        thread.load(f"r{2 * index + 2}", second)
    return LitmusTest(
        name=f"iriw-{readers}r",
        program=builder.build(),
        condition=parse_condition("exists (R0:r1=1 /\\ R0:r2=0 /\\ R1:r3=1 /\\ R1:r4=0)"),
        expected={"sc": False, "tso": False, "pso": False, "weak": True},
        description=f"independent writers observed by {readers} readers",
    )


def family_programs(max_ring: int = 3, max_chain: int = 2) -> list[Program]:
    """A bundle of family instances for scaling sweeps."""
    programs = [sb_ring(n).program for n in range(2, max_ring + 1)]
    programs += [mp_chain(n).program for n in range(1, max_chain + 1)]
    return programs
