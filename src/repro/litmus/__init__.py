"""Litmus tests: condition language, classic library, runner."""

from repro.litmus.conditions import (
    And,
    Condition,
    MemoryAtom,
    Not,
    Or,
    RegisterAtom,
    parse_condition,
)
from repro.litmus.families import independent_writers, mp_chain, sb_ring
from repro.litmus.finalstate import realizable_final_memory
from repro.litmus.generator import EdgeKindSpec, GeneratedTest, generate, predict_verdict
from repro.litmus.library import all_tests, get_test, test_names
from repro.litmus.runner import LitmusVerdict, format_matrix, run_litmus, run_matrix
from repro.litmus.test import LitmusTest, litmus_from_source

__all__ = [
    "And",
    "Condition",
    "MemoryAtom",
    "Not",
    "Or",
    "RegisterAtom",
    "parse_condition",
    "realizable_final_memory",
    "independent_writers",
    "mp_chain",
    "sb_ring",
    "EdgeKindSpec",
    "GeneratedTest",
    "generate",
    "predict_verdict",
    "all_tests",
    "get_test",
    "test_names",
    "LitmusVerdict",
    "format_matrix",
    "run_litmus",
    "run_matrix",
    "LitmusTest",
    "litmus_from_source",
]
