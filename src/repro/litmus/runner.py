"""Run litmus tests against memory models and judge their conditions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.enumerate import EnumerationLimits, EnumerationResult, enumerate_behaviors
from repro.litmus.finalstate import realizable_final_memory
from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel
from repro.models.registry import get_model


@dataclass
class LitmusVerdict:
    """The result of running one litmus test under one model."""

    test: LitmusTest
    model: MemoryModel
    executions: int  #: distinct executions enumerated
    total_pairs: int  #: (execution, final-memory assignment) pairs judged
    satisfied_pairs: int  #: pairs satisfying the condition expression
    holds: bool  #: quantified condition verdict
    expected: bool | None  #: expectation from the test, if any
    result: EnumerationResult
    complete: bool = True  #: False when the enumeration was budget-limited

    @property
    def matches_expectation(self) -> bool | None:
        if self.expected is None:
            return None
        return self.holds == self.expected

    def summary(self) -> str:
        mark = {True: "ok", False: "MISMATCH", None: "-"}[self.matches_expectation]
        partial = "" if self.complete else f" [{self.result.status}]"
        return (
            f"{self.test.name:<16} {self.model.name:<10} "
            f"executions={self.executions:<5} {self.test.condition.quantifier:>7}: "
            f"{'Yes' if self.holds else 'No':<3} [{mark}]{partial}"
        )


def run_litmus(
    test: LitmusTest,
    model: MemoryModel | str,
    limits: EnumerationLimits | None = None,
    strict: bool = False,
    cache=None,
) -> LitmusVerdict:
    """Enumerate the test's behaviors under ``model`` and judge the condition.

    With a budget-limited enumeration the verdict is judged over the
    partial behavior set and flagged ``complete=False``; ``strict=True``
    raises instead of degrading.  ``cache`` (a
    :class:`~repro.cache.store.BehaviorCache`) memoizes the enumeration."""
    if isinstance(model, str):
        model = get_model(model)
    result = enumerate_behaviors(test.program, model, limits, strict=strict, cache=cache)

    locations = test.condition.locations()
    total_pairs = 0
    satisfied = 0
    for execution in result.executions:
        registers = execution.final_registers()
        for assignment in realizable_final_memory(execution, locations):
            total_pairs += 1
            if test.condition.holds_in(registers, assignment):
                satisfied += 1

    return LitmusVerdict(
        test=test,
        model=model,
        executions=len(result.executions),
        total_pairs=total_pairs,
        satisfied_pairs=satisfied,
        holds=test.condition.judge(satisfied, total_pairs),
        expected=test.expectation(model.name),
        result=result,
        complete=result.complete,
    )


def run_matrix(
    tests: list[LitmusTest],
    model_names: tuple[str, ...],
    limits: EnumerationLimits | None = None,
    strict: bool = False,
    cache=None,
) -> list[LitmusVerdict]:
    """Run every test under every model (the TAB-LITMUS experiment)."""
    verdicts = []
    for test in tests:
        for name in model_names:
            verdicts.append(run_litmus(test, name, limits, strict=strict, cache=cache))
    return verdicts


def format_matrix(verdicts: list[LitmusVerdict]) -> str:
    """Render verdicts as a test × model table (condition verdict, with
    ``!`` marking an expectation mismatch)."""
    tests: list[str] = []
    models: list[str] = []
    cells: dict[tuple[str, str], str] = {}
    for verdict in verdicts:
        if verdict.test.name not in tests:
            tests.append(verdict.test.name)
        if verdict.model.name not in models:
            models.append(verdict.model.name)
        text = "Yes" if verdict.holds else "No"
        if not verdict.complete:
            text += "~"  # judged over a budget-limited partial behavior set
        if verdict.matches_expectation is False:
            text += "!"
        cells[(verdict.test.name, verdict.model.name)] = text

    name_width = max(len("test"), *(len(name) for name in tests)) + 2
    column_width = max(6, *(len(name) for name in models)) + 2
    header = "test".ljust(name_width) + "".join(m.ljust(column_width) for m in models)
    lines = [header, "-" * len(header)]
    for test_name in tests:
        row = test_name.ljust(name_width)
        for model_name in models:
            row += cells.get((test_name, model_name), "?").ljust(column_width)
        lines.append(row)
    return "\n".join(lines)
