"""diy-style litmus-test synthesis from critical cycles.

Shasha & Snir [27] (cited in §7) showed that non-SC behavior always
involves a *critical cycle* alternating program-order edges with
communication edges.  Tools in the diy family synthesize litmus tests by
walking such a cycle; this module does the same over this framework's
edge vocabulary, giving an unbounded family of tests with *predictable*
verdicts for stress-testing the enumerator:

Edge kinds:

* ``Rfe``  — write → read, different thread, same address (the read
  observes the write),
* ``Fre``  — read → write, different thread, same address (the read
  observes the *initial* value, so it is from-read before the write),
* ``Wse``  — write → write, different thread, same address (coherence
  order: the first write is overwritten; checked via final memory),
* ``PodXY`` — program order, same thread, different address, where
  X,Y ∈ {R,W} are the endpoint kinds,
* ``FenXY`` — like PodXY with a full fence between.

The synthesized condition asserts that every communication edge happened
as drawn; the cycle then requires every program-order edge to be
violated simultaneously, so the prediction is:

    the condition is observable under model M  ⟺  every Pod edge of the
    cycle is relaxable under M (Fen edges are never relaxable; a cycle
    with none of its po edges relaxable is forbidden by Store Atomicity).

``predict_verdict`` implements that rule and the test suite validates it
against the enumerator on a catalogue of generated cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ProgramError
from repro.isa.dsl import ProgramBuilder
from repro.isa.instructions import OpClass
from repro.litmus.conditions import parse_condition
from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel, OrderRequirement
from repro.models.registry import get_model


class EdgeKindSpec(enum.Enum):
    """Cycle edge vocabulary (diy naming)."""

    RFE = "Rfe"
    FRE = "Fre"
    WSE = "Wse"
    POD_RR = "PodRR"
    POD_RW = "PodRW"
    POD_WR = "PodWR"
    POD_WW = "PodWW"
    FEN_RR = "FenRR"
    FEN_RW = "FenRW"
    FEN_WR = "FenWR"
    FEN_WW = "FenWW"

    @property
    def external(self) -> bool:
        return self in (EdgeKindSpec.RFE, EdgeKindSpec.FRE, EdgeKindSpec.WSE)

    @property
    def fenced(self) -> bool:
        return self.value.startswith("Fen")

    @property
    def source_kind(self) -> str:
        """'R' or 'W' — the kind of the edge's source event."""
        if self is EdgeKindSpec.RFE:
            return "W"
        if self is EdgeKindSpec.FRE:
            return "R"
        if self is EdgeKindSpec.WSE:
            return "W"
        return self.value[-2]

    @property
    def target_kind(self) -> str:
        if self is EdgeKindSpec.RFE:
            return "R"
        if self is EdgeKindSpec.FRE:
            return "W"
        if self is EdgeKindSpec.WSE:
            return "W"
        return self.value[-1]


@dataclass(frozen=True)
class GeneratedTest:
    """The synthesis result: a litmus test plus the cycle metadata."""

    test: LitmusTest
    cycle: tuple[EdgeKindSpec, ...]
    pod_edges: tuple[EdgeKindSpec, ...]


def _validate_cycle(cycle: tuple[EdgeKindSpec, ...]) -> None:
    if len(cycle) < 2:
        raise ProgramError("a cycle needs at least two edges")
    if not any(edge.external for edge in cycle):
        raise ProgramError("a cycle needs at least one communication edge")
    if not any(not edge.external for edge in cycle):
        raise ProgramError("a cycle needs at least one program-order edge")
    for position, edge in enumerate(cycle):
        following = cycle[(position + 1) % len(cycle)]
        if edge.target_kind != following.source_kind:
            raise ProgramError(
                f"edge {edge.value} (target {edge.target_kind}) cannot precede "
                f"{following.value} (source {following.source_kind})"
            )
    # Consecutive coherence edges would need three-writer final-memory
    # conditions; everything else chains soundly.
    for position, edge in enumerate(cycle):
        following = cycle[(position + 1) % len(cycle)]
        if edge is EdgeKindSpec.WSE and following is EdgeKindSpec.WSE:
            raise ProgramError("consecutive Wse edges are not supported")


def generate(cycle: list[EdgeKindSpec] | tuple[EdgeKindSpec, ...], name: str | None = None) -> GeneratedTest:
    """Synthesize a litmus test from a cycle of edges.

    Threads break at external edges; addresses change at program-order
    edges and are shared across each external edge.  Every write stores a
    unique non-zero value.
    """
    cycle = tuple(cycle)
    _validate_cycle(cycle)
    if name is None:
        name = "+".join(edge.value for edge in cycle)

    # Rotate so the cycle starts right after an external edge — thread
    # boundaries then fall between events cleanly.
    first_external = next(i for i, edge in enumerate(cycle) if edge.external)
    rotated = cycle[first_external + 1 :] + cycle[: first_external + 1]

    event_count = len(rotated)
    addresses: list[str] = []
    address_index = 0
    for position in range(event_count):
        addresses.append(f"loc{address_index}")
        edge = rotated[position]
        if not edge.external:
            address_index += 1
    # The final edge returns to event 0: if it is external it must share
    # event 0's address — rename the last address accordingly.
    if rotated[-1].external:
        last = addresses[-1]
        addresses = [addresses[0] if a == last else a for a in addresses]

    # Pod/Fen edges are *different-address* program-order edges by
    # definition, and the whole prediction theory assumes each thread
    # touches each address at most once.  Some cycles (e.g. Rfe+Fre
    # sharing the read's location) collapse the address alternation so
    # that two events of one thread hit the same address, creating
    # implicit same-address po enforcement outside the edge vocabulary.
    # Reject those cycles.
    for position in range(event_count):
        for other in range(position + 1, event_count):
            if (
                addresses[position] == addresses[other]
                and _thread_of(rotated, position) == _thread_of(rotated, other)
            ):
                raise ProgramError(
                    f"cycle collapses events {position} and {other} onto the "
                    f"same thread and address ({addresses[position]}); not "
                    f"representable with Pod/Fen edges"
                )

    # Event kinds: event i's kind is rotated[i-1].target_kind == rotated[i].source_kind.
    kinds = [rotated[position].source_kind for position in range(event_count)]

    builder = ProgramBuilder(name)
    thread = builder.thread()
    register_counter = 0
    value_counter = 0
    store_values: dict[int, int] = {}
    registers: dict[int, str] = {}

    for position in range(event_count):
        kind = kinds[position]
        address = addresses[position]
        if kind == "W":
            value_counter += 1
            store_values[position] = value_counter
            thread.store(address, value_counter)
        else:
            register_counter += 1
            registers[position] = f"r{register_counter}"
            thread.load(registers[position], address)
        edge = rotated[position]
        if position + 1 < event_count:
            if edge.external:
                thread = builder.thread()
            elif edge.fenced:
                thread.fence()
        elif edge.fenced:
            # Final edge wraps to event 0 in the FIRST thread: a trailing
            # same-thread fence would be wrong; the cycle rotation above
            # guarantees the final edge is external, so this cannot occur.
            raise ProgramError("internal: rotated cycle must end externally")

    # Conditions per edge.
    atoms: list[str] = []
    for position in range(event_count):
        edge = rotated[position]
        target = (position + 1) % event_count
        if edge is EdgeKindSpec.RFE:
            atoms.append(f"P{_thread_of(rotated, target)}:{registers[target]}={store_values[position]}")
        elif edge is EdgeKindSpec.FRE:
            atoms.append(f"P{_thread_of(rotated, position)}:{registers[position]}=0")
        elif edge is EdgeKindSpec.WSE:
            atoms.append(f"[{addresses[target]}]={store_values[target]}")
    condition_text = "exists (" + " /\\ ".join(atoms) + ")"

    test = LitmusTest(
        name=name,
        program=builder.build(),
        condition=parse_condition(condition_text),
        description=f"generated from cycle {'+'.join(e.value for e in cycle)}",
    )
    pods = tuple(edge for edge in cycle if not edge.external and not edge.fenced)
    return GeneratedTest(test, cycle, pods)


def _thread_of(rotated: tuple[EdgeKindSpec, ...], event: int) -> int:
    """Thread index of an event (threads break after external edges)."""
    breaks = 0
    for position in range(event):
        if rotated[position].external:
            breaks += 1
    return breaks


_KIND_CLASS = {"R": OpClass.LOAD, "W": OpClass.STORE}


def predict_verdict(generated: GeneratedTest, model: MemoryModel | str) -> bool:
    """Predicted observability of the generated condition under ``model``.

    A critical cycle forbids its outcome iff *every* edge is globally
    enforced; communication edges always are (Store Atomicity), and a
    fenced po edge always is, so the outcome is observable iff **at
    least one** plain Pod edge is relaxable under the model — its
    different-address ordering requirement is not ALWAYS (SAME_ADDRESS
    entries do not bind different-address pairs).
    """
    if isinstance(model, str):
        model = get_model(model)
    for edge in generated.pod_edges:
        first = _KIND_CLASS[edge.source_kind]
        second = _KIND_CLASS[edge.target_kind]
        if model.class_requirement(first, second) is not OrderRequirement.ALWAYS:
            return True
    return False
