"""The classic litmus-test library.

Each test is written in the textual assembly format (exercising the
assembler) with a herd-style condition and the expected verdict per
model.  Expectations follow the standard literature (Adve & Gharachorloo,
the SPARC V9 manual, herd's catalogue) adapted to this paper's models:

* ``sc``   — sequential consistency,
* ``tso``  — SPARC TSO with store-to-load forwarding,
* ``pso``  — SPARC PSO,
* ``weak`` — the paper's Figure 1 model (note: same-address load-load
  reordering is *allowed*, so CoRR is observable — a deliberate property
  of the paper's model),
* ``weak-corr`` — WEAK plus same-address load-load ordering.

All tests here use constant addresses; the pointer/aliasing tests live in
:mod:`repro.experiments.fig89`.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.litmus.test import LitmusTest, litmus_from_source

_CATALOG: dict[str, LitmusTest] = {}


def _define(source: str, expected: dict[str, bool], description: str) -> None:
    test = litmus_from_source(source, expected, description)
    if test.name in _CATALOG:
        raise ReproError(f"duplicate litmus test {test.name!r}")
    _CATALOG[test.name] = test


# ----------------------------------------------------------------------
# Store buffering (Dekker's core) and fenced variant

_define(
    """
    test SB
    thread P0
        S x, 1
        r1 = L y
    thread P1
        S y, 1
        r2 = L x
    exists (P0:r1=0 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": True, "pso": True, "weak": True, "weak-corr": True},
    "Store buffering: both loads miss both stores; the first TSO/SC divider.",
)

_define(
    """
    test SB+fences
    thread P0
        S x, 1
        fence
        r1 = L y
    thread P1
        S y, 1
        fence
        r2 = L x
    exists (P0:r1=0 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "SB with full fences: forbidden in every model here.",
)

# ----------------------------------------------------------------------
# Message passing family

_define(
    """
    test MP
    thread P0
        S x, 1
        S flag, 1
    thread P1
        r1 = L flag
        r2 = L x
    exists (P1:r1=1 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": True, "weak": True, "weak-corr": True},
    "Message passing without fences: needs S-S and L-L program order.",
)

_define(
    """
    test MP+fences
    thread P0
        S x, 1
        fence
        S flag, 1
    thread P1
        r1 = L flag
        fence
        r2 = L x
    exists (P1:r1=1 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "MP with both fences: forbidden everywhere.",
)

_define(
    """
    test MP+wfence
    thread P0
        S x, 1
        fence
        S flag, 1
    thread P1
        r1 = L flag
        r2 = L x
    exists (P1:r1=1 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": True, "weak-corr": True},
    "MP with only the writer fenced: the reader's load-load reordering "
    "still breaks it under WEAK.",
)

_define(
    """
    test MP+addr
    init flag=z
    thread P0
        S x, 1
        fence
        S flag, x
    thread P1
        r1 = L flag
        r2 = L r1
    exists (P1:r1=x /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "MP via a published pointer: the reader's address dependency orders "
    "the loads even under WEAK (a true data dependency, not droppable "
    "by aliasing speculation).",
)

# ----------------------------------------------------------------------
# Load buffering family

_define(
    """
    test LB
    thread P0
        r1 = L y
        S x, 1
    thread P1
        r2 = L x
        S y, 1
    exists (P0:r1=1 /\\ P1:r2=1)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": True, "weak-corr": True},
    "Load buffering: loads see the other thread's later store; requires "
    "L-S reordering (WEAK only).",
)

_define(
    """
    test LB+data
    thread P0
        r1 = L y
        S x, r1
    thread P1
        r2 = L x
        S y, r2
    exists (P0:r1=1 /\\ P1:r2=1)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "LB with data dependencies: the out-of-thin-air test; no model here "
    "can conjure the value 1.",
)

# ----------------------------------------------------------------------
# Independent reads of independent writes (store atomicity's signature)

_define(
    """
    test IRIW
    thread P0
        S x, 1
    thread P1
        S y, 1
    thread P2
        r1 = L x
        r2 = L y
    thread P3
        r3 = L y
        r4 = L x
    exists (P2:r1=1 /\\ P2:r2=0 /\\ P3:r3=1 /\\ P3:r4=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": True, "weak-corr": True},
    "IRIW without fences: observable under WEAK only via load reordering.",
)

_define(
    """
    test IRIW+fences
    thread P0
        S x, 1
    thread P1
        S y, 1
    thread P2
        r1 = L x
        fence
        r2 = L y
    thread P3
        r3 = L y
        fence
        r4 = L x
    exists (P2:r1=1 /\\ P2:r2=0 /\\ P3:r3=1 /\\ P3:r4=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "IRIW with fences: forbidden by Store Atomicity itself — the two "
    "readers cannot disagree on the store order.  The signature property "
    "of every store-atomic model (paper §3).",
)

_define(
    """
    test WRC
    thread P0
        S x, 1
    thread P1
        r1 = L x
        S y, 1
    thread P2
        r2 = L y
        fence
        r3 = L x
    exists (P1:r1=1 /\\ P2:r2=1 /\\ P2:r3=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": True, "weak-corr": True},
    "Write-to-read causality: hinges on P1's load-store order (WEAK "
    "reorders it).",
)

_define(
    """
    test WRC+fences
    thread P0
        S x, 1
    thread P1
        r1 = L x
        fence
        S y, 1
    thread P2
        r2 = L y
        fence
        r3 = L x
    exists (P1:r1=1 /\\ P2:r2=1 /\\ P2:r3=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "WRC fully fenced: store atomicity makes causality transitive.",
)

# ----------------------------------------------------------------------
# Two-writer shapes with final-memory conditions

_define(
    """
    test 2+2W
    thread P0
        S x, 1
        S y, 2
    thread P1
        S y, 1
        S x, 2
    exists ([x]=1 /\\ [y]=1)
    """,
    {"sc": False, "tso": False, "pso": True, "weak": True, "weak-corr": True},
    "2+2W: both second stores lose; needs store-store reordering.",
)

_define(
    """
    test R
    thread P0
        S x, 1
        S y, 1
    thread P1
        S y, 2
        r1 = L x
    exists (P1:r1=0 /\\ [y]=2)
    """,
    {"sc": False, "tso": True, "pso": True, "weak": True, "weak-corr": True},
    "Test R: store-load reordering in P1 suffices (observable on TSO).",
)

_define(
    """
    test S
    thread P0
        S x, 2
        S y, 1
    thread P1
        r1 = L y
        S x, 1
    exists (P1:r1=1 /\\ [x]=2)
    """,
    {"sc": False, "tso": False, "pso": True, "weak": True, "weak-corr": True},
    "Test S: needs P0's store-store (PSO) or P1's load-store (WEAK) "
    "reordering.",
)

# ----------------------------------------------------------------------
# Coherence shapes

_define(
    """
    test CoRR
    thread P0
        S x, 1
    thread P1
        r1 = L x
        r2 = L x
    exists (P1:r1=1 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": True, "weak-corr": False},
    "Coherent read-read: the paper's WEAK model deliberately allows "
    "same-address load-load reordering, so this IS observable under it "
    "— the weak-corr variant restores the ordering.",
)

_define(
    """
    test CoWW
    thread P0
        S x, 1
        S x, 2
    exists ([x]=1)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "Coherent write-write: same-address stores never reorder (the x≠y "
    "table entries).",
)

_define(
    """
    test CoWR
    thread P0
        S x, 1
        r1 = L x
    thread P1
        S x, 2
    exists (P0:r1=2 /\\ [x]=1)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "Coherent write-read: observing the remote overwrite orders the local "
    "store before it (Store Atomicity rule a), fixing the final value.",
)

# ----------------------------------------------------------------------
# Atomics and locking

_define(
    """
    test INC+INC
    thread P0
        r1 = fadd c, 1
    thread P1
        r2 = fadd c, 1
    forall ([c]=2)
    """,
    {"sc": True, "tso": True, "pso": True, "weak": True, "weak-corr": True},
    "Two fetch-and-adds always sum: RMW atomicity in every model.",
)

_define(
    """
    test CAS-lock
    thread P0
        r1 = cas l, 0, 1
        bnez r1, out0
        r3 = fadd c, 1
    out0:
    thread P1
        r2 = cas l, 0, 1
        bnez r2, out1
        r4 = fadd c, 1
    out1:
    forall ([c]=1 /\\ [l]=1)
    """,
    {"sc": True, "tso": True, "pso": True, "weak": True, "weak-corr": True},
    "One-shot CAS lock: exactly one thread wins in every model — the "
    "paper's 'check that a locking algorithm meets its specification'.",
)

_define(
    """
    test dekker
    thread P0
        S fa, 1
        fence
        r1 = L fb
        bnez r1, out0
        r3 = fadd c, 1
    out0:
    thread P1
        S fb, 1
        fence
        r2 = L fa
        bnez r2, out1
        r4 = fadd c, 1
    out1:
    exists ([c]=2)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "Dekker-style entry with fences: mutual exclusion holds everywhere.",
)

_define(
    """
    test dekker-nofence
    thread P0
        S fa, 1
        r1 = L fb
        bnez r1, out0
        r3 = fadd c, 1
    out0:
    thread P1
        S fb, 1
        r2 = L fa
        bnez r2, out1
        r4 = fadd c, 1
    out1:
    exists ([c]=2)
    """,
    {"sc": False, "tso": True, "pso": True, "weak": True, "weak-corr": True},
    "Dekker without fences: broken by store-load reordering — the classic "
    "TSO pitfall.",
)

_define(
    """
    test SB+rmw
    thread P0
        r1 = xchg x, 1
        r2 = L y
    thread P1
        r3 = xchg y, 1
        r4 = L x
    exists (P0:r2=0 /\\ P1:r4=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": True, "weak-corr": True},
    "SB with atomic exchanges: atomics drain TSO/PSO buffers, but under "
    "WEAK an RMW and a later load to a different address still reorder.",
)


# ----------------------------------------------------------------------
# Fenced variants of the two-writer shapes

_define(
    """
    test S+fences
    thread P0
        S x, 2
        fence
        S y, 1
    thread P1
        r1 = L y
        fence
        S x, 1
    exists (P1:r1=1 /\\ [x]=2)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "Test S fully fenced: forbidden everywhere.",
)

_define(
    """
    test R+fences
    thread P0
        S x, 1
        fence
        S y, 1
    thread P1
        S y, 2
        fence
        r1 = L x
    exists (P1:r1=0 /\\ [y]=2)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "Test R with a store-load fence in P1: forbidden everywhere.",
)

_define(
    """
    test 2+2W+fences
    thread P0
        S x, 1
        fence
        S y, 2
    thread P1
        S y, 1
        fence
        S x, 2
    exists ([x]=1 /\\ [y]=1)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "2+2W with store-store fences: forbidden everywhere.",
)

_define(
    """
    test 3.2W
    thread P0
        S x, 1
        S y, 2
    thread P1
        S y, 1
        S z, 2
    thread P2
        S z, 1
        S x, 2
    exists ([x]=1 /\\ [y]=1 /\\ [z]=1)
    """,
    {"sc": False, "tso": False, "pso": True, "weak": True, "weak-corr": True},
    "Three-thread write cycle: every second store loses; needs "
    "store-store reordering (PSO/WEAK).",
)

# ----------------------------------------------------------------------
# Causality shapes

_define(
    """
    test RWC
    thread P0
        S x, 1
    thread P1
        r1 = L x
        fence
        r2 = L y
    thread P2
        S y, 1
        r3 = L x
    exists (P1:r1=1 /\\ P1:r2=0 /\\ P2:r3=0)
    """,
    {"sc": False, "tso": True, "pso": True, "weak": True, "weak-corr": True},
    "Read-write causality: P2's store-load reordering suffices, so it IS "
    "observable on TSO (unlike IRIW).",
)

_define(
    """
    test WWC+fences
    thread P0
        S x, 2
    thread P1
        r1 = L x
        fence
        S y, 1
    thread P2
        r2 = L y
        fence
        S x, 1
    exists (P1:r1=2 /\\ P2:r2=1 /\\ [x]=2)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "Write-write causality: the observation chain orders S x,2 ⊑ S x,1 "
    "(rules a/b through the fences), so x cannot finish as 2 — forbidden "
    "by Store Atomicity in every model.",
)

_define(
    """
    test LB+fences
    thread P0
        r1 = L y
        fence
        S x, 1
    thread P1
        r2 = L x
        fence
        S y, 1
    exists (P0:r1=1 /\\ P1:r2=1)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "LB with load-store fences: forbidden everywhere.",
)

# ----------------------------------------------------------------------
# Fine-grained fence discrimination

_define(
    """
    test SB+stld
    thread P0
        S x, 1
        fence st-ld
        r1 = L y
    thread P1
        S y, 1
        fence st-ld
        r2 = L x
    exists (P0:r1=0 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "SB with the *minimal* store-load fence: already forbidden — the "
    "exact fence TSO programmers need.",
)

_define(
    """
    test SB+ldld
    thread P0
        S x, 1
        fence ld-ld
        r1 = L y
    thread P1
        S y, 1
        fence ld-ld
        r2 = L x
    exists (P0:r1=0 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": True, "pso": True, "weak": True, "weak-corr": True},
    "SB with the WRONG fence kind (load-load): the store-load reordering "
    "survives, so the relaxed outcome remains observable.",
)

_define(
    """
    test MP+minfences
    thread P0
        S x, 1
        fence st-st
        S flag, 1
    thread P1
        r1 = L flag
        fence ld-ld
        r2 = L x
    exists (P1:r1=1 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "MP with exactly the two fence kinds it needs (st-st writer, ld-ld "
    "reader): forbidden everywhere.",
)

# ----------------------------------------------------------------------
# Control dependencies

_define(
    """
    test MP+ctrl
    thread P0
        S x, 1
        fence
        S flag, 1
    thread P1
        r1 = L flag
        beqz r1, skip
        r2 = L x
    skip:
    exists (P1:r1=1 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": True, "weak-corr": True},
    "MP guarded only by a branch: WEAK has no control-to-load ordering "
    "(Branch's 'never' entry covers Stores only), so the stale read "
    "survives the guard.",
)

_define(
    """
    test MP+ctrl+fence
    thread P0
        S x, 1
        fence
        S flag, 1
    thread P1
        r1 = L flag
        beqz r1, skip
        fence
        r2 = L x
    skip:
    exists (P1:r1=1 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "Branch guard plus a fence: forbidden everywhere — the fence supplies "
    "the ordering the branch alone cannot.",
)

_define(
    """
    test CoRW1
    thread P0
        r1 = L x
        S x, 1
    exists (P0:r1=1)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "A load may never observe its own thread's later store (the x≠y "
    "Load/Store entry keeps them ordered).",
)


# ----------------------------------------------------------------------
# Acquire/release access annotations (half fences)

_define(
    """
    test MP+ra
    thread P0
        S x, 1
        S.rel flag, 1
    thread P1
        r1 = L.acq flag
        r2 = L x
    exists (P1:r1=1 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "MP with a release store and an acquire load: the half fences are "
    "exactly what message passing needs — forbidden everywhere.",
)

_define(
    """
    test SB+ra
    thread P0
        S.rel x, 1
        r1 = L.acq y
    thread P1
        S.rel y, 1
        r2 = L.acq x
    exists (P0:r1=0 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": True, "pso": True, "weak": True, "weak-corr": True},
    "SB with release/acquire everywhere: still observable — RA never "
    "orders a store before a later load (the classic 'RA < SC').",
)

_define(
    """
    test LB+acq
    thread P0
        r1 = L.acq y
        S x, 1
    thread P1
        r2 = L.acq x
        S y, 1
    exists (P0:r1=1 /\\ P1:r2=1)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "LB with acquire loads: the acquire half-fence supplies the "
    "load-store ordering WEAK lacks.",
)

_define(
    """
    test lock-handoff
    init lock=1
    thread P0
        S data, 42
        S.rel lock, 0
    thread P1
        r1 = cas.acq lock, 0, 1
        r2 = L data
    exists (P1:r1=0 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "Lock handoff: a taker that acquires the released lock always sees "
    "the protected data (release/acquire on the lock word suffice).",
)


_define(
    """
    test WRC+data
    thread P0
        S x, 1
    thread P1
        r1 = L x
        S y, r1
    thread P2
        r2 = L y
        fence
        r3 = L x
    exists (P2:r2=1 /\\ P2:r3=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "WRC with a data dependency in the middle thread: the register flow "
    "orders the load before the store even under WEAK.",
)

_define(
    """
    test IRIW+acq
    thread P0
        S x, 1
    thread P1
        S y, 1
    thread P2
        r1 = L.acq x
        r2 = L y
    thread P3
        r3 = L.acq y
        r4 = L x
    exists (P2:r1=1 /\\ P2:r2=0 /\\ P3:r3=1 /\\ P3:r4=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": False, "weak-corr": False},
    "IRIW with acquire first loads: the half fence restores load-load "
    "order, and Store Atomicity does the rest.",
)

_define(
    """
    test 2+2W+rmw
    thread P0
        r1 = xchg x, 1
        r2 = xchg y, 2
    thread P1
        r3 = xchg y, 1
        r4 = xchg x, 2
    exists ([x]=1 /\\ [y]=1)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": True, "weak-corr": True},
    "2+2W with atomic exchanges: atomics drain TSO/PSO buffers, but under "
    "WEAK two RMWs to different addresses still reorder.",
)

_define(
    """
    test MP+relonly
    thread P0
        S x, 1
        S.rel flag, 1
    thread P1
        r1 = L flag
        r2 = L x
    exists (P1:r1=1 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": False, "weak": True, "weak-corr": True},
    "MP with only the writer's release: PSO is fixed (loads were already "
    "ordered) but WEAK's reader still reorders its loads.",
)

_define(
    """
    test MP+acqonly
    thread P0
        S x, 1
        S flag, 1
    thread P1
        r1 = L.acq flag
        r2 = L x
    exists (P1:r1=1 /\\ P1:r2=0)
    """,
    {"sc": False, "tso": False, "pso": True, "weak": True, "weak-corr": True},
    "MP with only the reader's acquire: the writer's store-store "
    "reordering (PSO/WEAK) still breaks it.",
)


def all_tests() -> list[LitmusTest]:
    """Every test in the library, in definition order."""
    return list(_CATALOG.values())


def test_names() -> tuple[str, ...]:
    return tuple(_CATALOG)


def get_test(name: str) -> LitmusTest:
    try:
        return _CATALOG[name]
    except KeyError:
        known = ", ".join(_CATALOG)
        raise ReproError(f"unknown litmus test {name!r}; known tests: {known}") from None
