"""Bloom filter fronting the behavior cache's negative lookups.

A fuzz campaign asks the cache about thousands of *novel* programs for
every repeat it ever sees, so the common lookup outcome is a miss.  The
filter answers those from a few kilobytes of memory — no segment scan,
no index build, no disk touch — while guaranteeing **no false
negatives**: a key that was ever added always answers "maybe", so a
bloom "no" is a definite miss.

The filter is the classic k-hash bit array with Kirsch–Mitzenmacher
double hashing: two 64-bit lanes are carved out of one ``blake2b``
digest of the key and combined as ``h1 + i*h2`` for the *i*-th probe.
Sizing follows the standard formulas — ``m = -n·ln(p)/ln(2)²`` bits and
``k = (m/n)·ln(2)`` hashes for ``n`` expected keys at false-positive
rate ``p``.

``encode``/``decode`` give a checksummed byte serialization for the
``bloom.filter`` sidecar file; a damaged sidecar decodes to ``None`` and
the cache rebuilds the filter from the segments instead of trusting it
(a stale or corrupt bloom could otherwise manufacture false negatives).
"""

from __future__ import annotations

import hashlib
import math
import struct

_MAGIC = b"RBLM"  #: sidecar magic ("repro bloom")
_VERSION = 1
#: magic, version, hash count, bit count, key count
_HEADER = struct.Struct("!4sBBQQ")
_CRC_SIZE = 8


def _lanes(key: bytes) -> tuple[int, int]:
    digest = hashlib.blake2b(key, digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:], "big") | 1  # odd => full-period stride
    return h1, h2


class BloomFilter:
    """A fixed-size bloom filter over byte-string keys."""

    def __init__(self, bits: int, hashes: int) -> None:
        if bits <= 0 or hashes <= 0:
            raise ValueError(f"bloom needs positive sizing, got {bits=} {hashes=}")
        self.bits = bits
        self.hashes = hashes
        self.count = 0  #: keys added (an estimate after a union)
        self._array = bytearray((bits + 7) // 8)

    @classmethod
    def sized_for(cls, expected: int, fpr: float = 0.005) -> "BloomFilter":
        """A filter sized for ``expected`` keys at false-positive rate
        ``fpr`` (defaults well under the 1% gate, leaving headroom for
        growth past the estimate)."""
        expected = max(expected, 64)
        bits = int(-expected * math.log(fpr) / (math.log(2) ** 2)) + 1
        hashes = max(1, round((bits / expected) * math.log(2)))
        return cls(bits, hashes)

    def add(self, key: bytes) -> None:
        h1, h2 = _lanes(key)
        for probe in range(self.hashes):
            bit = (h1 + probe * h2) % self.bits
            self._array[bit >> 3] |= 1 << (bit & 7)
        self.count += 1

    def __contains__(self, key: bytes) -> bool:
        h1, h2 = _lanes(key)
        for probe in range(self.hashes):
            bit = (h1 + probe * h2) % self.bits
            if not self._array[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    def estimated_fpr(self) -> float:
        """The fill-based false-positive estimate ``(set_bits/m)^k`` —
        what a random novel key's "maybe" probability actually is now."""
        set_bits = sum(byte.bit_count() for byte in self._array)
        if set_bits == 0:
            return 0.0
        return (set_bits / self.bits) ** self.hashes

    @property
    def saturated(self) -> bool:
        """Whether the filter has grown past its design point (measured
        FPR above 1%) and should be rebuilt larger at the next compaction."""
        return self.estimated_fpr() > 0.01

    def encode(self) -> bytes:
        header = _HEADER.pack(_MAGIC, _VERSION, self.hashes, self.bits, self.count)
        body = header + bytes(self._array)
        crc = hashlib.blake2b(body, digest_size=_CRC_SIZE).digest()
        return body + crc

    @classmethod
    def decode(cls, raw: bytes) -> "BloomFilter | None":
        """Rebuild a filter from :meth:`encode` output; ``None`` when the
        bytes are damaged in any way (the caller rebuilds from scratch)."""
        if len(raw) < _HEADER.size + _CRC_SIZE:
            return None
        body, crc = raw[:-_CRC_SIZE], raw[-_CRC_SIZE:]
        if hashlib.blake2b(body, digest_size=_CRC_SIZE).digest() != crc:
            return None
        magic, version, hashes, bits, count = _HEADER.unpack_from(body)
        if magic != _MAGIC or version != _VERSION or bits <= 0 or hashes <= 0:
            return None
        if len(body) != _HEADER.size + (bits + 7) // 8:
            return None
        bloom = cls(bits, hashes)
        bloom._array[:] = body[_HEADER.size:]
        bloom.count = count
        return bloom
