"""Persistent, content-addressed memoization of enumeration results.

Behaviors are a pure function of ``(program, model, limits)``, so a
finished enumeration can be stored once and replayed forever — see
:class:`~repro.cache.store.BehaviorCache` for the architecture (LRU
front, bloom-filtered negative lookups, append-only checksummed
segments) and the safety model, and
:func:`~repro.core.serialization.behavior_cache_key` for the canonical
digest the store is keyed by.
"""

from repro.cache.bloom import BloomFilter
from repro.cache.store import (
    CACHE_PAYLOAD_VERSION,
    BehaviorCache,
    CacheCounters,
    CachedBehaviors,
)

__all__ = [
    "BehaviorCache",
    "BloomFilter",
    "CacheCounters",
    "CachedBehaviors",
    "CACHE_PAYLOAD_VERSION",
]
