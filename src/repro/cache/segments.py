"""Append-only segment files: the cache's durable layer.

The store is LSM-flavored: every writer appends records to its own
immutable-once-sealed segment file (``seg-*.log``), readers scan the
union of all segments, and compaction folds them into one.  Because a
segment is only ever appended to by the process that created it
(creation is ``O_CREAT | O_EXCL``), concurrent workers sharing a cache
directory never interleave writes inside a file — they interleave whole
files, which is always safe.

Record layout (all integers big-endian)::

    key[16]  type[1]  gen[8]  length[4]  header_crc[4]
    payload[length]  payload_crc[8]

``gen`` is a wall-clock nanosecond stamp giving records a global
newest-wins order across segments (ties broken by file name, then
offset).  Both CRCs are truncated ``blake2b`` digests; the payload CRC
covers the header too, so a payload spliced between records is caught.

Damage tolerance mirrors the service WAL:

* a **torn tail** — the header or payload is cut short by a crash
  mid-append — is silently discarded (the entry was never acknowledged);
* a complete record whose **checksum flips** is skipped with a
  :class:`~repro.errors.CacheIntegrityWarning`, and scanning stops at
  the first unparseable header (framing after it cannot be trusted);
* an unrecognized file header skips the whole segment with a warning
  (a future format, or garbage) — every case degrades to cache misses,
  never to wrong results or a crash.
"""

from __future__ import annotations

import hashlib
import os
import struct
import time
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CacheError, CacheIntegrityWarning

SEGMENT_SUFFIX = ".log"
_SEGMENT_MAGIC = b"RSEG"
_SEGMENT_VERSION = 1
_FILE_HEADER = struct.Struct("!4sB")

KEY_SIZE = 16
VALUE = 1  #: record carries a pickled enumeration payload
TOMBSTONE = 2  #: record marks the key as deleted (until a newer VALUE)

_REC_HEADER = struct.Struct(f"!{KEY_SIZE}sBQI")
_HEADER_CRC_SIZE = 4
_PAYLOAD_CRC_SIZE = 8


def _header_crc(header: bytes) -> bytes:
    return hashlib.blake2b(header, digest_size=_HEADER_CRC_SIZE).digest()


def _payload_crc(header: bytes, payload: bytes) -> bytes:
    return hashlib.blake2b(header + payload, digest_size=_PAYLOAD_CRC_SIZE).digest()


@dataclass(frozen=True)
class SegmentRecord:
    """One record's location, as discovered by :func:`scan_segment`.

    The payload is *not* read during a scan — only sought over — so
    building an index touches a few dozen bytes per record.  ``order``
    is the global newest-wins sort key.
    """

    key: bytes
    rtype: int
    gen: int
    path: Path
    payload_offset: int
    payload_length: int

    @property
    def order(self) -> tuple:
        return (self.gen, self.path.name, self.payload_offset)


def encode_record(key: bytes, rtype: int, payload: bytes, gen: int | None = None) -> bytes:
    """The framed bytes of one record (append-ready)."""
    if len(key) != KEY_SIZE:
        raise CacheError(f"cache keys are {KEY_SIZE} bytes, got {len(key)}")
    if gen is None:
        gen = time.time_ns()
    header = _REC_HEADER.pack(key, rtype, gen, len(payload))
    return header + _header_crc(header) + payload + _payload_crc(header, payload)


def file_header() -> bytes:
    return _FILE_HEADER.pack(_SEGMENT_MAGIC, _SEGMENT_VERSION)


def list_segments(directory: Path) -> list[Path]:
    """Every segment in the cache directory, in name order (scan order
    only — newest-wins uses record generations, not file order)."""
    try:
        return sorted(directory.glob(f"seg-*{SEGMENT_SUFFIX}"))
    except OSError:
        return []


def create_segment(directory: Path) -> Path:
    """A fresh, uniquely named segment file with its header written.

    ``O_CREAT | O_EXCL`` guarantees two processes can never share one
    segment, which is the whole concurrency story of the durable layer.
    """
    directory.mkdir(parents=True, exist_ok=True)
    for _ in range(16):
        name = f"seg-{os.urandom(8).hex()}{SEGMENT_SUFFIX}"
        path = directory / name
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        with os.fdopen(fd, "wb") as handle:
            handle.write(file_header())
            handle.flush()
        return path
    raise CacheError(f"cannot create a unique segment under {directory}")


def scan_segment(path: Path) -> list[SegmentRecord]:
    """Locate every intact record in one segment (payloads unverified —
    :func:`read_payload` checks them on access).  See the module
    docstring for the damage policy."""
    records: list[SegmentRecord] = []
    try:
        handle = open(path, "rb")
    except OSError as exc:
        warnings.warn(
            CacheIntegrityWarning(f"cannot open cache segment {path.name}: {exc}"),
            stacklevel=2,
        )
        return records
    with handle:
        head = handle.read(_FILE_HEADER.size)
        if len(head) < _FILE_HEADER.size:
            return records  # empty/torn header: a crash before first append
        magic, version = _FILE_HEADER.unpack(head)
        if magic != _SEGMENT_MAGIC or version != _SEGMENT_VERSION:
            warnings.warn(
                CacheIntegrityWarning(
                    f"cache segment {path.name} has an unrecognized header "
                    f"(magic={magic!r}, version={version}); skipping it"
                ),
                stacklevel=2,
            )
            return records
        size = os.fstat(handle.fileno()).st_size
        offset = _FILE_HEADER.size
        while True:
            header = handle.read(_REC_HEADER.size + _HEADER_CRC_SIZE)
            if len(header) < _REC_HEADER.size + _HEADER_CRC_SIZE:
                break  # clean end, or a torn tail: both fine
            raw_header, crc = header[: _REC_HEADER.size], header[_REC_HEADER.size :]
            if _header_crc(raw_header) != crc:
                warnings.warn(
                    CacheIntegrityWarning(
                        f"cache segment {path.name} has a corrupt record header "
                        f"at offset {offset}; discarding the rest of the segment"
                    ),
                    stacklevel=2,
                )
                break
            key, rtype, gen, length = _REC_HEADER.unpack(raw_header)
            payload_offset = offset + len(header)
            record_end = payload_offset + length + _PAYLOAD_CRC_SIZE
            if record_end > size:
                break  # torn tail mid-payload: the append never finished
            records.append(
                SegmentRecord(
                    key=key,
                    rtype=rtype,
                    gen=gen,
                    path=path,
                    payload_offset=payload_offset,
                    payload_length=length,
                )
            )
            handle.seek(record_end)
            offset = record_end
    return records


def read_payload(record: SegmentRecord) -> bytes | None:
    """The checksum-verified payload of a record, or ``None`` (with a
    warning) when the bytes on disk no longer match — the caller treats
    that as a miss."""
    try:
        with open(record.path, "rb") as handle:
            handle.seek(record.payload_offset - _REC_HEADER.size - _HEADER_CRC_SIZE)
            raw_header = handle.read(_REC_HEADER.size)
            handle.seek(record.payload_offset)
            payload = handle.read(record.payload_length)
            crc = handle.read(_PAYLOAD_CRC_SIZE)
    except OSError as exc:
        warnings.warn(
            CacheIntegrityWarning(
                f"cannot read cache record from {record.path.name}: {exc}"
            ),
            stacklevel=2,
        )
        return None
    if len(payload) != record.payload_length or len(crc) != _PAYLOAD_CRC_SIZE:
        return None  # segment shrank underneath us (compaction race)
    if _payload_crc(raw_header, payload) != crc:
        warnings.warn(
            CacheIntegrityWarning(
                f"cache record {record.key.hex()} in {record.path.name} failed "
                f"its checksum; treating it as a miss"
            ),
            stacklevel=2,
        )
        return None
    return payload


class SegmentWriter:
    """This process's private append handle.

    The segment file is created lazily on the first append, so read-only
    cache users never litter the directory.  Appends are flushed to the
    OS immediately (a dying *process* loses nothing already ``put``);
    ``fsync=True`` additionally survives a dying *machine*, at a large
    per-put cost — future hits are an optimization, not a durability
    contract, so it defaults off.
    """

    def __init__(self, directory: Path, fsync: bool = False) -> None:
        self.directory = directory
        self.fsync = fsync
        self.path: Path | None = None
        self._handle = None

    def append(self, key: bytes, rtype: int, payload: bytes, gen: int | None = None) -> SegmentRecord:
        if self._handle is None:
            self.path = create_segment(self.directory)
            self._handle = open(self.path, "ab")
        framed = encode_record(key, rtype, payload, gen)
        offset = self._handle.tell()
        try:
            self._handle.write(framed)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        except OSError as exc:
            raise CacheError(f"cache append to {self.path} failed: {exc}") from exc
        header_span = _REC_HEADER.size + _HEADER_CRC_SIZE
        gen_written = _REC_HEADER.unpack(framed[: _REC_HEADER.size])[2]
        return SegmentRecord(
            key=key,
            rtype=rtype,
            gen=gen_written,
            path=self.path,
            payload_offset=offset + header_span,
            payload_length=len(payload),
        )

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
