"""The content-addressed behavior cache.

Behaviors are a pure function of ``(program, model, limits)`` — the
paper's enumeration has no other inputs — so a finished enumeration can
be memoized under the canonical
:func:`~repro.core.serialization.behavior_cache_key` digest and replayed
forever.  :class:`BehaviorCache` is that memo store, layered for the
access patterns of this repository's consumers:

1. an **LRU front** of decoded results (repeat hits inside one process
   pay a dict lookup, not an unpickle);
2. a :class:`~repro.cache.bloom.BloomFilter` answering negative lookups
   from memory — in a fuzz campaign nearly every program is novel, and
   the bloom keeps those lookups from ever building the index or
   touching a segment;
3. LSM-style append-only **segments**
   (:mod:`~repro.cache.segments`) shared safely by concurrent workers,
   folded together by :meth:`compact`.

Safety model
------------

* only **complete** results are ever stored (the enumerator enforces
  it), so a hit can never silently truncate a behavior set;
* hits are **verified-decodable**: the payload checksum, the pickle
  decode, and the recomputed cache key must all agree before a cached
  result is returned — anything less degrades to a miss with a
  :class:`~repro.errors.CacheIntegrityWarning`;
* ``validate=True`` makes every hit re-enumerate and assert
  byte-identical ``loadstore_key`` sets — the paranoid mode for
  qualifying a cache directory of unknown provenance.

The ``bloom.json`` and ``index.json`` sidecars are pure accelerators,
rebuilt from the segments whenever stale or missing; a *hard-corrupt*
index (unparseable, checksum-mismatched) raises
:class:`~repro.errors.CacheError` instead of being silently trusted or
discarded — delete the file to rebuild.
"""

from __future__ import annotations

import atexit
import base64
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.cache.bloom import BloomFilter
from repro.cache.segments import (
    TOMBSTONE,
    VALUE,
    SegmentRecord,
    SegmentWriter,
    create_segment,
    encode_record,
    list_segments,
    read_payload,
    scan_segment,
)
from repro.core.enumerate import EnumerationStats
from repro.core.serialization import behavior_cache_key
from repro.errors import CacheError, CacheIntegrityWarning

#: Version stamped into every pickled payload; unknown versions decode
#: to misses (a cache directory is shareable across builds, not a
#: compatibility contract).
CACHE_PAYLOAD_VERSION = 1

_BLOOM_FILE = "bloom.json"
_INDEX_FILE = "index.json"
_PARTIAL_SUBDIR = "partial"
_INDEX_CRC_SIZE = 8


@dataclass
class CacheCounters:
    """Per-instance lookup/store accounting (process-local, not persisted)."""

    hits: int = 0  #: lookups answered from the store (any layer)
    misses: int = 0  #: lookups that found nothing usable
    bloom_negatives: int = 0  #: of the misses, answered by the bloom alone
    puts: int = 0  #: complete results appended
    duplicate_puts: int = 0  #: puts skipped because the key was already live
    decode_failures: int = 0  #: hits degraded to misses by damage
    validations: int = 0  #: hits re-enumerated under ``validate=True``
    invalidations: int = 0  #: tombstones written
    partial_hits: int = 0  #: budget-exhausted searches resumed from a checkpoint
    partial_misses: int = 0  #: partial lookups with no (usable) checkpoint
    partial_puts: int = 0  #: partial-search checkpoints persisted
    partial_drops: int = 0  #: checkpoints retired (search completed)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


@dataclass(frozen=True)
class CachedBehaviors:
    """One decoded cache entry: everything the enumerator stored."""

    program: object
    model: object
    limits: object
    executions: tuple
    stats: EnumerationStats


def _atomic_write(path: Path, data: bytes) -> None:
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _index_crc(body: dict) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=_INDEX_CRC_SIZE).hexdigest()


class BehaviorCache:
    """A persistent, content-addressed memo store for enumeration results.

    Open it on a directory and pass it to
    ``enumerate_behaviors(..., cache=...)`` (or any of the CLI/fuzz/
    service surfaces that accept ``--cache-dir``).  Instances are cheap:
    nothing is read from disk until the first lookup, and the first
    lookup reads only the bloom sidecar plus headers of segments the
    sidecar does not cover yet.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        validate: bool = False,
        fsync: bool = False,
        lru_size: int = 128,
    ) -> None:
        self.directory = Path(directory)
        self.validate = validate
        self.lru_size = max(1, lru_size)
        self.counters = CacheCounters()
        self._writer = SegmentWriter(self.directory, fsync=fsync)
        self._lru: OrderedDict[bytes, CachedBehaviors] = OrderedDict()
        self._bloom: BloomFilter | None = None
        self._bloom_covered: dict[str, int] = {}
        self._scanned: dict[str, list[SegmentRecord]] = {}
        self._index: dict[bytes, SegmentRecord] | None = None
        self._dirty = False

    # -- process-shared instances --------------------------------------

    _SHARED: dict[str, "BehaviorCache"] = {}

    @classmethod
    def shared(cls, directory: str | Path, **kwargs) -> "BehaviorCache":
        """One instance per (process, directory) — what long-lived batch
        workers use so the bloom/index load once, with sidecars flushed
        at interpreter exit."""
        key = str(Path(directory).resolve())
        cache = cls._SHARED.get(key)
        if cache is None:
            cache = cls(directory, **kwargs)
            cls._SHARED[key] = cache
            atexit.register(cache.close)
        return cache

    # -- key derivation -------------------------------------------------

    @staticmethod
    def key_for(program, model, limits) -> bytes:
        return behavior_cache_key(program, model, limits)

    # -- lazy state -----------------------------------------------------

    def _segment_sizes(self) -> dict[str, int]:
        sizes = {}
        for path in list_segments(self.directory):
            try:
                sizes[path.name] = path.stat().st_size
            except OSError:
                continue
        return sizes

    def _ensure_bloom(self) -> BloomFilter:
        if self._bloom is not None:
            self._refresh_uncovered()
            return self._bloom
        bloom = None
        covered: dict[str, int] = {}
        bloom_path = self.directory / _BLOOM_FILE
        if bloom_path.exists():
            try:
                payload = json.loads(bloom_path.read_text(encoding="utf-8"))
                bloom = BloomFilter.decode(base64.b64decode(payload["bloom"]))
                covered = {str(k): int(v) for k, v in payload["segments"].items()}
            except (OSError, ValueError, KeyError, TypeError):
                bloom = None
            if bloom is None:
                warnings.warn(
                    CacheIntegrityWarning(
                        f"bloom sidecar {bloom_path} is unreadable; rebuilding "
                        f"from the segments"
                    ),
                    stacklevel=3,
                )
                covered = {}
        if bloom is None:
            bloom = BloomFilter.sized_for(max(4096, 2 * self._estimate_records()))
        self._bloom = bloom
        self._bloom_covered = covered
        self._refresh_uncovered()
        return self._bloom

    def _estimate_records(self) -> int:
        # ~200 bytes of framing+index per record is a safe *under*estimate
        # of real record size, so the bloom is sized generously.
        return sum(self._segment_sizes().values()) // 200

    def _refresh_uncovered(self) -> None:
        """Fold keys of segments (or segment tails) the bloom sidecar has
        not seen into the in-memory filter — the no-false-negative
        repair for sidecars that lag the append-only segments."""
        for name, size in self._segment_sizes().items():
            if self._bloom_covered.get(name) == size:
                continue
            records = self._scan(name)
            for record in records:
                self._bloom.add(record.key)
            self._bloom_covered[name] = size
            self._dirty = True

    def _scan(self, name: str) -> list[SegmentRecord]:
        if name not in self._scanned:
            self._scanned[name] = scan_segment(self.directory / name)
        return self._scanned[name]

    def _load_index_file(self) -> dict[str, dict]:
        """The persisted index, validated; ``{}`` when absent.  Raises
        :class:`CacheError` on hard corruption — a damaged index must
        never be silently trusted *or* silently discarded."""
        index_path = self.directory / _INDEX_FILE
        if not index_path.exists():
            return {}
        try:
            payload = json.loads(index_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CacheError(
                f"cache index {index_path} is corrupt ({exc}); delete it to "
                f"rebuild from the segments"
            ) from exc
        try:
            body = {"format": payload["format"], "segments": payload["segments"]}
            crc = payload["crc"]
        except (KeyError, TypeError) as exc:
            raise CacheError(
                f"cache index {index_path} is malformed (missing {exc}); "
                f"delete it to rebuild from the segments"
            ) from exc
        if body["format"] != 1 or _index_crc(body) != crc:
            raise CacheError(
                f"cache index {index_path} failed its checksum; delete it to "
                f"rebuild from the segments"
            )
        return body["segments"]

    def _ensure_index(self) -> dict[bytes, SegmentRecord]:
        if self._index is not None:
            return self._index
        persisted = self._load_index_file()
        index: dict[bytes, SegmentRecord] = {}
        for name, size in sorted(self._segment_sizes().items()):
            entry = persisted.get(name)
            if entry is not None and entry.get("size") == size:
                records = [
                    SegmentRecord(
                        key=bytes.fromhex(keyhex),
                        rtype=rtype,
                        gen=gen,
                        path=self.directory / name,
                        payload_offset=offset,
                        payload_length=length,
                    )
                    for keyhex, rtype, gen, offset, length in entry["records"]
                ]
                self._scanned.setdefault(name, records)
            else:
                records = self._scan(name)
            for record in records:
                current = index.get(record.key)
                if current is None or record.order > current.order:
                    index[record.key] = record
        self._index = index
        return index

    # -- the read path --------------------------------------------------

    def lookup(self, key: bytes) -> CachedBehaviors | None:
        """The decoded entry for ``key``, or ``None``.  Never raises for
        damaged data — every failure mode is a miss."""
        entry = self._lru.get(key)
        if entry is not None:
            self._lru.move_to_end(key)
            self.counters.hits += 1
            return entry
        bloom = self._ensure_bloom()
        if key not in bloom:
            self.counters.bloom_negatives += 1
            self.counters.misses += 1
            return None
        record = self._ensure_index().get(key)
        if record is None or record.rtype == TOMBSTONE:
            self.counters.misses += 1
            return None
        entry = self._decode(key, record)
        if entry is None:
            self.counters.decode_failures += 1
            self.counters.misses += 1
            return None
        self._remember(key, entry)
        self.counters.hits += 1
        return entry

    def _decode(self, key: bytes, record: SegmentRecord) -> CachedBehaviors | None:
        payload = read_payload(record)
        if payload is None:
            return None
        try:
            decoded = pickle.loads(payload)
            version = decoded["version"]
            program = decoded["program"]
            model = decoded["model"]
            limits = decoded["limits"]
            executions = tuple(decoded["executions"])
            stats = decoded["stats"]
        except Exception as exc:  # noqa: BLE001 — pickle raises anything
            warnings.warn(
                CacheIntegrityWarning(
                    f"cache record {key.hex()} does not decode ({exc}); "
                    f"treating it as a miss"
                ),
                stacklevel=3,
            )
            return None
        if version != CACHE_PAYLOAD_VERSION:
            return None
        # Verified-decodable: the payload must hash back to its own key,
        # binding the stored result to the request that produced it.
        if behavior_cache_key(program, model, limits) != key:
            warnings.warn(
                CacheIntegrityWarning(
                    f"cache record {key.hex()} fails key verification "
                    f"(payload is for a different request); treating it as a miss"
                ),
                stacklevel=3,
            )
            return None
        return CachedBehaviors(
            program=program,
            model=model,
            limits=limits,
            executions=executions,
            stats=replace(stats),
        )

    def _remember(self, key: bytes, entry: CachedBehaviors) -> None:
        self._lru[key] = entry
        self._lru.move_to_end(key)
        while len(self._lru) > self.lru_size:
            self._lru.popitem(last=False)

    # -- the write path -------------------------------------------------

    def store(self, key: bytes, program, model, limits, executions, stats) -> bool:
        """Append one complete result.  Returns False when the key is
        already live (nothing written) — re-putting is cheap and safe,
        it just wastes a segment record until compaction."""
        if key in self._lru or (
            self._index is not None
            and key in self._index
            and self._index[key].rtype == VALUE
        ):
            self.counters.duplicate_puts += 1
            return False
        payload = pickle.dumps(
            {
                "version": CACHE_PAYLOAD_VERSION,
                "program": program,
                "model": model,
                "limits": limits,
                "executions": tuple(executions),
                "stats": stats,
            }
        )
        record = self._writer.append(key, VALUE, payload)
        bloom = self._ensure_bloom()
        bloom.add(key)
        self._bloom_covered[record.path.name] = record.payload_offset + record.payload_length + 8
        if self._index is not None:
            self._index[key] = record
        self._scanned.pop(record.path.name, None)
        self._remember(
            key,
            CachedBehaviors(
                program=program,
                model=model,
                limits=limits,
                executions=tuple(executions),
                stats=replace(stats),
            ),
        )
        self._dirty = True
        self.counters.puts += 1
        return True

    def invalidate(self, key: bytes) -> None:
        """Tombstone a key (e.g. after a failed validation); compaction
        physically drops the dead records."""
        self._writer.append(key, TOMBSTONE, b"")
        self._lru.pop(key, None)
        if self._index is not None:
            self._index.pop(key, None)
        if self._writer.path is not None:
            self._scanned.pop(self._writer.path.name, None)
            self._bloom_covered.pop(self._writer.path.name, None)
        self._dirty = True
        self.counters.invalidations += 1

    # -- partial-search checkpoints -------------------------------------

    def _partial_path(self, program, model) -> Path:
        # Keyed with *default* limits: a partial search's identity is the
        # (program, model) pair — the whole point is resuming it under a
        # different (larger) budget.
        key = behavior_cache_key(program, model)
        return self.directory / _PARTIAL_SUBDIR / f"{key.hex()}.ckpt"

    def lookup_partial(self, program, model):
        """The persisted partial-search checkpoint for ``(program,
        model)``, or ``None``.  The checkpoint carries the enumeration
        dedup set (seen-state digests) and remaining worklist, so a
        resumed budget-exhausted search skips every state it already
        explored instead of restarting.  A damaged checkpoint is deleted
        and degrades to a miss — never an error."""
        from repro.core.enumerate import EnumerationCheckpoint, EnumerationError

        path = self._partial_path(program, model)
        if not path.exists():
            self.counters.partial_misses += 1
            return None
        try:
            checkpoint = EnumerationCheckpoint.load(path)
        except EnumerationError:
            try:
                os.unlink(path)
            except OSError:
                pass
            self.counters.decode_failures += 1
            self.counters.partial_misses += 1
            return None
        self.counters.partial_hits += 1
        return checkpoint

    def store_partial(self, program, model, checkpoint) -> Path:
        """Persist a budget-exhausted search's checkpoint (atomic write;
        replaces any earlier, shallower one for the same pair)."""
        path = self._partial_path(program, model)
        path.parent.mkdir(parents=True, exist_ok=True)
        checkpoint.save(path)
        self.counters.partial_puts += 1
        return path

    def drop_partial(self, program, model) -> bool:
        """Retire the checkpoint once the search completes (the complete
        result now lives in the value store)."""
        path = self._partial_path(program, model)
        try:
            os.unlink(path)
        except OSError:
            return False
        self.counters.partial_drops += 1
        return True

    def _partial_count(self) -> int:
        directory = self.directory / _PARTIAL_SUBDIR
        if not directory.is_dir():
            return 0
        return sum(1 for _ in directory.glob("*.ckpt"))

    # -- sidecar persistence --------------------------------------------

    def flush(self) -> None:
        """Write the bloom/index sidecars if anything changed.  Purely an
        accelerator for the *next* open — correctness never depends on
        sidecars being current."""
        if not self._dirty:
            return
        if self._bloom is not None:
            # Cover exactly what the filter has folded in, at the sizes
            # observed; appended tails are re-scanned by the next open.
            covered = dict(self._bloom_covered)
            sizes = self._segment_sizes()
            covered = {
                name: min(size, sizes.get(name, 0))
                for name, size in covered.items()
                if name in sizes
            }
            body = {
                "bloom": base64.b64encode(self._bloom.encode()).decode("ascii"),
                "segments": covered,
            }
            self.directory.mkdir(parents=True, exist_ok=True)
            _atomic_write(
                self.directory / _BLOOM_FILE,
                json.dumps(body, sort_keys=True).encode("utf-8"),
            )
        if self._index is not None:
            self._save_index()
        self._dirty = False

    def _save_index(self) -> None:
        segments: dict[str, dict] = {}
        sizes = self._segment_sizes()
        for name in sizes:
            records = self._scanned.get(name)
            if records is None:
                records = self._scan(name)
            segments[name] = {
                "size": sizes[name],
                "records": [
                    [r.key.hex(), r.rtype, r.gen, r.payload_offset, r.payload_length]
                    for r in records
                ],
            }
        body = {"format": 1, "segments": segments}
        body_with_crc = dict(body)
        body_with_crc["crc"] = _index_crc(body)
        self.directory.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            self.directory / _INDEX_FILE,
            json.dumps(body_with_crc, sort_keys=True).encode("utf-8"),
        )

    def close(self) -> None:
        try:
            self.flush()
        finally:
            self._writer.close()

    # -- maintenance ----------------------------------------------------

    def stats(self) -> dict:
        """Store-level accounting plus this instance's counters."""
        index = self._ensure_index()
        sizes = self._segment_sizes()
        total_records = sum(len(self._scan(name)) for name in sizes)
        live = [r for r in index.values() if r.rtype == VALUE]
        return {
            "directory": str(self.directory),
            "segments": len(sizes),
            "disk_bytes": sum(sizes.values()),
            "records": total_records,
            "live_entries": len(live),
            "tombstoned": sum(1 for r in index.values() if r.rtype == TOMBSTONE),
            "redundant_records": total_records - len(index),
            "partial_checkpoints": self._partial_count(),
            "bloom_fpr_estimate": self._ensure_bloom().estimated_fpr(),
            "counters": self.counters.as_dict(),
        }

    def verify(self, full: bool = False) -> dict:
        """Decode-verify every live entry; with ``full=True`` also
        re-enumerate each and compare ``loadstore_key`` sets (slow —
        this re-pays the whole store's worth of enumeration)."""
        index = self._ensure_index()
        checked = ok = 0
        bad: list[str] = []
        for key, record in sorted(index.items()):
            if record.rtype != VALUE:
                continue
            checked += 1
            entry = self._decode(key, record)
            if entry is None:
                bad.append(key.hex())
                continue
            if full:
                from repro.core.enumerate import enumerate_behaviors

                fresh = enumerate_behaviors(entry.program, entry.model, entry.limits)
                if not fresh.complete or _loadstore_set(
                    fresh.executions
                ) != _loadstore_set(entry.executions):
                    bad.append(key.hex())
                    continue
            ok += 1
        return {"checked": checked, "ok": ok, "bad": bad, "full": full}

    def compact(self) -> dict:
        """Fold every segment into one: newest record per key, tombstoned
        and superseded records dropped, sidecars rebuilt.  Run it from a
        quiescent store (the CLI's ``repro cache compact``) — a campaign
        writing concurrently would keep appending to a deleted file.
        """
        index = self._ensure_index()
        sizes_before = self._segment_sizes()
        records_before = sum(len(self._scan(name)) for name in sizes_before)
        live = sorted(
            (record for record in index.values() if record.rtype == VALUE),
            key=lambda r: r.key,
        )
        self._writer.close()
        self._writer = SegmentWriter(self.directory, fsync=self._writer.fsync)

        new_path = create_segment(self.directory)
        kept = 0
        with open(new_path, "ab") as handle:
            for record in live:
                payload = read_payload(record)
                if payload is None:
                    continue  # damaged: drop it, the entry degrades to a miss
                handle.write(encode_record(record.key, VALUE, payload, gen=record.gen))
                kept += 1
            handle.flush()
            os.fsync(handle.fileno())

        for name in sizes_before:
            try:
                os.unlink(self.directory / name)
            except OSError:
                pass

        # Rebuild every derived structure from the compacted reality.
        self._scanned.clear()
        self._index = None
        self._lru.clear()
        self._bloom = BloomFilter.sized_for(max(4096, 2 * kept))
        self._bloom_covered = {}
        self._refresh_uncovered()
        self._ensure_index()
        self._dirty = True
        self.flush()
        return {
            "segments_before": len(sizes_before),
            "records_before": records_before,
            "live_entries": kept,
            "bytes_before": sum(sizes_before.values()),
            "bytes_after": sum(self._segment_sizes().values()),
        }


def _loadstore_set(executions) -> frozenset:
    return frozenset(repr(execution.loadstore_key()) for execution in executions)
