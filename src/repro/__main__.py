"""``python -m repro`` — command-line entry point."""

from repro.cli import main

raise SystemExit(main())
