"""Dynamic instruction instances — the nodes of an execution graph.

A :class:`Node` is one dynamically executed instruction.  Nodes start
*unresolved* (paper Section 4: "When a node is generated, it is in an
unresolved state") and become resolved/executed when their value can be
computed — for Loads and Rmws this requires choosing a candidate store.

Node identity is deterministic: ``(tid, index)`` — the thread and the
dynamic position within that thread — so two executions of the same
program are directly comparable node-by-node without graph isomorphism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction, OpClass
from repro.isa.operands import Value

#: Thread id used for the init pseudo-thread holding initializing stores.
INIT_TID = -1


@dataclass(slots=True)
class Node:
    """One dynamic instruction instance.

    Fields fall into two groups — static (set at generation) and dynamic
    (filled in as the node resolves):

    Static:
      * ``nid`` — the node's index in the graph (also its bit position in
        reachability bitsets).
      * ``tid`` / ``index`` — deterministic identity.
      * ``instruction`` — the static instruction (None for init stores).
      * ``op_class`` — cached instruction class.
      * ``operand_sources`` — for each operand (in the instruction's
        canonical operand order), the nid of the node producing its value,
        or None when the operand is a constant or an unwritten register.
      * ``static_index`` — the instruction's position in the thread's
        static code (differs from ``index`` after a backwards branch;
        None for init stores).  Keys the node into the dataflow facts of
        :mod:`repro.analysis.static.dataflow`.

    Dynamic:
      * ``executed`` — value computed / load resolved / branch decided.
      * ``value`` — the register-visible result (load result, ALU result,
        branch condition value); for plain stores, mirrors ``stored``.
      * ``addr`` — resolved memory address (memory ops only).
      * ``source`` — nid of the observed store (loads/rmws only).
      * ``writes`` — the store side is visible to memory (stores; rmws
        when the write happens — a failed CAS does not write).
      * ``stored`` — the value made visible to memory.
    """

    nid: int
    tid: int
    index: int
    instruction: Instruction | None
    op_class: OpClass
    operand_sources: tuple[int | None, ...] = ()
    static_index: int | None = None
    executed: bool = False
    value: Value | None = None
    addr: Value | None = None
    source: int | None = None
    writes: bool = False
    stored: Value | None = None

    @property
    def is_init(self) -> bool:
        return self.tid == INIT_TID

    @property
    def reads_memory(self) -> bool:
        return self.op_class in (OpClass.LOAD, OpClass.RMW)

    @property
    def writes_memory(self) -> bool:
        """Whether the node *may* write memory (class-level, not outcome)."""
        return self.op_class in (OpClass.STORE, OpClass.RMW)

    @property
    def is_memory(self) -> bool:
        return self.reads_memory or self.writes_memory

    @property
    def resolved(self) -> bool:
        """Synonym for executed, matching the paper's terminology for loads."""
        return self.executed

    @property
    def is_visible_store(self) -> bool:
        """True when this node has made a value visible to memory."""
        return self.executed and self.writes

    @property
    def settled(self) -> bool:
        """True when no engine code path will mutate this node again:
        it has executed and, for memory operations, resolved its address
        (a store may execute with its value before its address is known).
        Settled nodes are shared between copy-on-write graph copies."""
        return self.executed and (self.addr is not None or not self.is_memory)

    def clone(self) -> "Node":
        """A field-for-field copy (values are immutable, so shallow)."""
        return Node(
            nid=self.nid,
            tid=self.tid,
            index=self.index,
            instruction=self.instruction,
            op_class=self.op_class,
            operand_sources=self.operand_sources,
            static_index=self.static_index,
            executed=self.executed,
            value=self.value,
            addr=self.addr,
            source=self.source,
            writes=self.writes,
            stored=self.stored,
        )

    def describe(self) -> str:
        """Compact human-readable description, paper-style."""
        who = "init" if self.is_init else f"T{self.tid}.{self.index}"
        if self.is_init:
            return f"[{who}] S {self.addr!r} := {self.stored!r}"
        text = str(self.instruction)
        bits = []
        if self.addr is not None:
            bits.append(f"addr={self.addr!r}")
        if self.executed and self.value is not None:
            bits.append(f"val={self.value!r}")
        if self.source is not None:
            bits.append(f"src=n{self.source}")
        suffix = f" ({', '.join(bits)})" if bits else ""
        state = "" if self.executed else " [unresolved]"
        return f"[{who}] {text}{suffix}{state}"

    def __str__(self) -> str:
        return self.describe()
