"""Value speculation (paper §5's open problem, and Martin et al. [23]).

The paper defers value speculation to future work but frames the
question precisely: speculation is distinguished from reordering by the
possibility of *going wrong*, and a speculative machine is safe iff it
rolls back every execution the non-speculative rules would reject.  The
cited result (Martin, Sorin, Cain, Hill, Lipasti — "Correctly
implementing value prediction…") is that **naive** value prediction
violates Sequential Consistency: dependents execute with a predicted
value, and validating only the value at commit misses the coherence
window in which the prediction was wrong.

This module mechanizes both machines inside the paper's framework:

* **Safe speculation** (``validate=True``): loads may resolve in ANY
  order — pure value prediction, no waiting for predecessor loads — but
  every resolution re-runs the full Store Atomicity closure and
  inconsistent branches are rolled back (discarded).  A theorem the
  test suite checks: this yields exactly the standard behavior set.
  Relaxing §4's resolution-order restriction adds nothing when
  validation is complete — and the restriction loses nothing.

* **Naive speculation** (``validate=False``): the machine binds each
  load to a source and never re-examines it; no ordering obligations
  are tracked beyond program order, data flow, and the observation
  itself.  Completed executions are then *classified*: an execution is
  illegal iff the Store Atomicity closure cannot be satisfied on its
  final observation assignment.  Under the SC table the illegal set is
  non-empty (e.g. message passing's stale read) — Martin et al.'s
  violation reproduced as a graph inconsistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AtomicityViolation, CycleError, EnumerationError, ReproError
from repro.core.atomicity import close_store_atomicity
from repro.core.enumerate import EnumerationLimits, EnumerationStats
from repro.core.execution import Execution
from repro.core.graph import EdgeKind
from repro.core.node import Node
from repro.isa.instructions import OpClass
from repro.isa.program import Program
from repro.models.base import MemoryModel
from repro.models.registry import get_model


def closure_satisfiable(execution: Execution) -> bool:
    """Can the Store Atomicity rules be satisfied on this execution's
    final observation assignment?  (Checked on a scratch copy.)"""
    scratch = execution.graph.copy()
    try:
        close_store_atomicity(scratch)
    except AtomicityViolation:
        return False
    return True


def _value_spec_eligible(execution: Execution) -> list[Node]:
    """Eligibility under value prediction: the address (and RMW operands)
    must be known; predecessor loads need NOT be resolved."""
    eligible = []
    for node in execution.unresolved_loads():
        if node.addr is None:
            continue
        if node.op_class is OpClass.RMW and execution._operand_values(node) is None:
            continue
        eligible.append(node)
    return eligible


def _value_spec_candidates(execution: Execution, load: Node) -> list[Node]:
    """Candidates without §4's condition 1 (prior resolution): any visible
    same-address store not certainly overwritten and not ⊑-after the load."""
    graph = execution.graph
    visible = [
        node
        for node in graph.nodes
        if node.is_visible_store and node.addr == load.addr and node.nid != load.nid
    ]
    result = []
    for store in visible:
        if graph.before(load.nid, store.nid):
            continue  # observing it would order the load after itself
        overwritten = any(
            other.nid != store.nid
            and graph.before(store.nid, other.nid)
            and graph.before(other.nid, load.nid)
            for other in visible
        )
        if not overwritten:
            result.append(store)
    return result


@dataclass
class ValueSpecStats(EnumerationStats):
    """Enumeration counters plus naive-machine bookkeeping."""

    unvalidated: int = 0  #: completed executions whose closure is unsatisfiable


@dataclass
class ValueSpecResult:
    """Behaviors reachable under value speculation.

    In naive mode (``validate=False``), ``executions`` contains BOTH the
    legal behaviors and the machine's illegal ones; use
    :meth:`violating_outcomes` / :meth:`legal_outcomes` to split them.
    """

    program: Program
    model: MemoryModel
    validate: bool
    executions: list[Execution]
    illegal: list[Execution] = field(default_factory=list)
    stats: ValueSpecStats = field(default_factory=ValueSpecStats)

    def register_outcomes(self) -> frozenset[frozenset]:
        return frozenset(
            frozenset(execution.final_registers().items()) for execution in self.executions
        )

    def legal_outcomes(self) -> frozenset[frozenset]:
        illegal_ids = {id(execution) for execution in self.illegal}
        return frozenset(
            frozenset(execution.final_registers().items())
            for execution in self.executions
            if id(execution) not in illegal_ids
        )

    def violating_outcomes(self) -> frozenset[frozenset]:
        """Outcomes only the unvalidated (naive) machine exhibits."""
        return frozenset(
            frozenset(execution.final_registers().items()) for execution in self.illegal
        )

    def __len__(self) -> int:
        return len(self.executions)


def _resolve_speculatively(
    execution: Execution, load_nid: int, store_nid: int, validate: bool
) -> None:
    """Resolve source(L)=S without the standard eligibility guard."""
    load = execution.graph.node(load_nid)
    store = execution.graph.node(store_nid)
    execution.graph.add_edge(store_nid, load_nid, EdgeKind.SOURCE)
    load.source = store_nid
    load.value = store.stored
    load.executed = True
    if load.op_class is OpClass.RMW:
        instruction = load.instruction
        values = execution._operand_values(load)
        assert values is not None
        stored = instruction.stored_value(store.stored, values[1:])
        if stored is not None:
            load.stored = stored
            load.writes = True
    if validate:
        close_store_atomicity(execution.graph)
        execution.stabilize()
    else:
        # The naive machine tracks no ordering obligations: just run the
        # dataflow to a fixpoint.
        while True:
            generated = execution._generate()
            executed = execution._execute_ready()
            if not generated and not executed:
                break


def enumerate_value_speculation(
    program: Program,
    model: MemoryModel | str,
    validate: bool = True,
    limits: EnumerationLimits | None = None,
) -> ValueSpecResult:
    """Enumerate behaviors under value prediction (see module docstring).

    Bypass models are rejected — value prediction is studied on
    store-atomic models, where "legal" has a crisp meaning.
    """
    if isinstance(model, str):
        model = get_model(model)
    if model.store_load_bypass:
        raise ReproError("value speculation is defined for store-atomic models only")
    limits = limits or EnumerationLimits()
    stats = ValueSpecStats()

    initial = Execution.initial(program, model, limits.max_nodes_per_thread)
    worklist = [initial]
    seen = {initial.state_key()}
    finished: dict = {}

    while worklist:
        behavior = worklist.pop()
        stats.explored += 1
        if stats.explored > limits.max_behaviors:
            raise EnumerationError(
                f"value-speculation search exceeded {limits.max_behaviors} behaviors"
            )
        if behavior.completed():
            stats.completed += 1
            finished.setdefault(behavior.loadstore_key(), behavior)
            if len(finished) > limits.max_executions:
                raise EnumerationError(
                    f"value-speculation search exceeded {limits.max_executions} executions"
                )
            continue
        eligible = _value_spec_eligible(behavior)
        if not eligible:
            stats.stuck += 1
            continue
        for load in eligible:
            for store in _value_spec_candidates(behavior, load):
                stats.resolutions += 1
                child = behavior.copy()
                try:
                    _resolve_speculatively(child, load.nid, store.nid, validate)
                except (CycleError, AtomicityViolation):
                    stats.rolled_back += 1
                    continue
                except EnumerationError:
                    stats.truncated += 1
                    continue
                key = child.state_key()
                if key in seen:
                    stats.duplicates += 1
                    continue
                seen.add(key)
                worklist.append(child)

    executions = sorted(finished.values(), key=lambda e: repr(e.loadstore_key()))
    illegal = []
    if not validate:
        illegal = [e for e in executions if not closure_satisfiable(e)]
        stats.unvalidated = len(illegal)
    return ValueSpecResult(program, model, validate, executions, illegal, stats)
