"""The partially ordered execution graph (the paper's central object).

An execution is a DAG whose nodes are dynamic instructions and whose edges
carry kinds mirroring the paper's Figure 2:

* solid local-ordering edges (``PROGRAM``, ``DATA``, ``ADDR_DEP``,
  ``SAME_ADDR``, ``INIT``) — the thread-local relation ``≺``,
* ringed observation edges (``SOURCE``) — ``source(L) ⊑ L``,
* dotted derived edges (``ATOMICITY``) — inserted by the Store Atomicity
  closure,
* user-inserted edges (``IMPOSED``) — Section 3.3's "legal to introduce
  additional edges", used to model conservative real systems,
* grey ``BYPASS`` edges (Section 6, TSO) — recorded for rendering but
  **excluded** from the ``⊑`` ordering.

Reachability (the ``⊑`` relation) is maintained incrementally with
per-node ancestor/descendant bitsets stored as Python ints, giving cheap
edge insertion with immediate cycle detection.  Litmus-scale graphs have
tens of nodes, so quadratic closure passes are inexpensive.
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.errors import CycleError, GraphError
from repro.core.node import Node


class EdgeKind(enum.IntFlag):
    """Edge kinds; a single (u, v) pair may carry several."""

    PROGRAM = enum.auto()  #: local reordering constraint ("never reorder")
    DATA = enum.auto()  #: register dataflow dependency
    ADDR_DEP = enum.auto()  #: non-speculative alias-resolution dependency (§5.1)
    SAME_ADDR = enum.auto()  #: deferred same-address ordering, inserted on resolution
    INIT = enum.auto()  #: init stores precede all thread operations
    SOURCE = enum.auto()  #: observation edge source(L) -> L
    ATOMICITY = enum.auto()  #: derived Store Atomicity edge (dotted, §3.3)
    IMPOSED = enum.auto()  #: extra edge imposed by a conservative system (§4.2)
    BYPASS = enum.auto()  #: TSO grey edge — NOT part of the ⊑ ordering (§6)

    def pretty(self) -> str:
        return "|".join(kind.name.lower() for kind in EdgeKind if kind & self)


#: Edge kinds that participate in the ⊑ ("is before") ordering.
ORDERING_KINDS = (
    EdgeKind.PROGRAM
    | EdgeKind.DATA
    | EdgeKind.ADDR_DEP
    | EdgeKind.SAME_ADDR
    | EdgeKind.INIT
    | EdgeKind.SOURCE
    | EdgeKind.ATOMICITY
    | EdgeKind.IMPOSED
)


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def remap_mask(mask: int, rank: list[int]) -> int:
    """Permute a bitset: bit ``b`` of ``mask`` becomes bit ``rank[b]``.

    Used to express per-node reachability bitsets in a canonical node
    order, so behaviors can be compared without materializing the full
    ⊑ relation as a set of pairs."""
    out = 0
    while mask:
        low = mask & -mask
        out |= 1 << rank[low.bit_length() - 1]
        mask ^= low
    return out


class ExecutionGraph:
    """A growable DAG with typed edges and incremental reachability.

    The public reachability queries express the paper's ``⊑`` relation
    (strict: a node is not before itself).
    """

    __slots__ = ("nodes", "_anc", "_desc", "_succ", "_succ_shared", "_bypass")

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        self._anc: list[int] = []  # strict-ancestor bitsets
        self._desc: list[int] = []  # strict-descendant bitsets
        self._succ: list[dict[int, EdgeKind]] = []  # explicit edges u -> {v: kinds}
        self._succ_shared: int = 0  # bitmask: _succ dicts shared with a COW parent
        self._bypass: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # construction

    def add_node(self, node: Node) -> int:
        """Insert ``node``; its ``nid`` must equal the next free index."""
        if node.nid != len(self.nodes):
            raise GraphError(f"node id {node.nid} does not match next index {len(self.nodes)}")
        self.nodes.append(node)
        self._anc.append(0)
        self._desc.append(0)
        self._succ.append({})
        return node.nid

    def add_edge(self, u: int, v: int, kind: EdgeKind) -> bool:
        """Insert an edge ``u -> v`` of ``kind``.

        Returns True if the edge added a *new* ordering (u was not already
        before v), False if the ordering was already implied.  Raises
        :class:`CycleError` if the edge would create a cycle — the caller
        decides whether that is a speculation failure (discard the
        behavior) or a hard inconsistency.

        ``BYPASS`` edges are recorded but never affect reachability.
        """
        self._check(u)
        self._check(v)
        if kind is EdgeKind.BYPASS:
            self._bypass.add((u, v))
            return False
        if u == v:
            raise CycleError(u, v)
        if self._before(v, u):
            raise CycleError(u, v)

        targets = self._own_succ(u)
        existing = targets.get(v)
        targets[v] = (existing | kind) if existing is not None else kind
        if self._before(u, v):
            return False

        anc_gain = self._anc[u] | (1 << u)
        desc_gain = self._desc[v] | (1 << v)
        for w in iter_bits(desc_gain):
            self._anc[w] |= anc_gain
        for w in iter_bits(anc_gain):
            self._desc[w] |= desc_gain
        return True

    def _own_succ(self, u: int) -> dict[int, EdgeKind]:
        """The successor dict of ``u``, privately owned: a dict shared
        with a copy-on-write parent is cloned before the first write."""
        if (self._succ_shared >> u) & 1:
            self._succ[u] = dict(self._succ[u])
            self._succ_shared &= ~(1 << u)
        return self._succ[u]

    def _check(self, nid: int) -> None:
        if not 0 <= nid < len(self.nodes):
            raise GraphError(f"unknown node id {nid}")

    # ------------------------------------------------------------------
    # queries

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, nid: int) -> Node:
        self._check(nid)
        return self.nodes[nid]

    def _before(self, u: int, v: int) -> bool:
        return bool((self._anc[v] >> u) & 1)

    def before(self, u: int, v: int) -> bool:
        """True iff ``u ⊑ v`` (strictly before in every serialization)."""
        self._check(u)
        self._check(v)
        return self._before(u, v)

    def ordered(self, u: int, v: int) -> bool:
        """True iff u and v are comparable under ⊑ (either direction)."""
        return self.before(u, v) or self.before(v, u)

    def ancestors_mask(self, nid: int) -> int:
        self._check(nid)
        return self._anc[nid]

    def descendants_mask(self, nid: int) -> int:
        self._check(nid)
        return self._desc[nid]

    def ancestors(self, nid: int) -> list[int]:
        return list(iter_bits(self.ancestors_mask(nid)))

    def descendants(self, nid: int) -> list[int]:
        return list(iter_bits(self.descendants_mask(nid)))

    def edges(self) -> Iterator[tuple[int, int, EdgeKind]]:
        """All explicit edges with their kind masks (bypass edges included,
        reported with kind ``BYPASS``)."""
        for u, targets in enumerate(self._succ):
            for v, kinds in targets.items():
                yield (u, v, kinds)
        for u, v in sorted(self._bypass):
            yield (u, v, EdgeKind.BYPASS)

    def edge_kinds(self, u: int, v: int) -> EdgeKind | None:
        """The kind mask of the explicit edge u -> v, or None."""
        kinds = self._succ[u].get(v)
        if (u, v) in self._bypass:
            kinds = (kinds | EdgeKind.BYPASS) if kinds is not None else EdgeKind.BYPASS
        return kinds

    def bypass_edges(self) -> set[tuple[int, int]]:
        return set(self._bypass)

    def unordered_pairs(self) -> Iterator[tuple[int, int]]:
        """All pairs (u, v), u < v, not comparable under ⊑."""
        for v in range(len(self.nodes)):
            for u in range(v):
                if not self._before(u, v) and not self._before(v, u):
                    yield (u, v)

    def topological_order(self) -> list[int]:
        """One linear extension of ⊑ (by ancestor count, ties by nid)."""
        return sorted(range(len(self.nodes)), key=lambda n: (self._anc[n].bit_count(), n))

    def find_path(self, u: int, v: int) -> list[tuple[int, int, EdgeKind]] | None:
        """A shortest explicit-edge path witnessing ``u ⊑ v``, as a list of
        (from, to, kinds) steps — used to *explain* orderings and the
        cycles behind forbidden behaviors.  None when u ⋢ v."""
        self._check(u)
        self._check(v)
        if not self._before(u, v):
            return None
        parent: dict[int, tuple[int, EdgeKind]] = {}
        frontier = [u]
        visited = {u}
        while frontier:
            next_frontier = []
            for node in frontier:
                for target, kinds in self._succ[node].items():
                    if not (kinds & ORDERING_KINDS) or target in visited:
                        continue
                    visited.add(target)
                    parent[target] = (node, kinds)
                    if target == v:
                        steps: list[tuple[int, int, EdgeKind]] = []
                        current = v
                        while current != u:
                            previous, kinds_ = parent[current]
                            steps.append((previous, current, kinds_))
                            current = previous
                        return list(reversed(steps))
                    next_frontier.append(target)
            frontier = next_frontier
        return None  # pragma: no cover - before() guaranteed a path exists

    def reachability_pairs(self) -> frozenset[tuple[int, int]]:
        """The full ⊑ relation as a set of (before, after) pairs."""
        pairs = set()
        for v in range(len(self.nodes)):
            for u in iter_bits(self._anc[v]):
                pairs.add((u, v))
        return frozenset(pairs)

    # ------------------------------------------------------------------
    # copying

    def copy(self) -> "ExecutionGraph":
        """A fully independent deep copy: every node is cloned and every
        successor dict owned.  External callers may freely mutate node
        attributes on the result."""
        dup = ExecutionGraph.__new__(ExecutionGraph)
        dup.nodes = [node.clone() for node in self.nodes]
        dup._anc = list(self._anc)
        dup._desc = list(self._desc)
        dup._succ = [dict(targets) for targets in self._succ]
        dup._succ_shared = 0
        dup._bypass = set(self._bypass)
        return dup

    def copy_on_write(self) -> "ExecutionGraph":
        """The enumeration hot-path copy: structure is shared until first
        mutation.

        Successor dicts are shared and cloned lazily on the first
        ``add_edge`` touching them (``_own_succ``).  Node objects are
        shared when *settled* — no engine code path mutates a node once
        it has executed and (for memory operations) resolved its address
        — and cloned otherwise.  Callers who mutate node attributes
        directly must use :meth:`copy` instead; the enumeration engine
        only mutates unsettled nodes, which are private by construction.
        """
        dup = ExecutionGraph.__new__(ExecutionGraph)
        dup.nodes = [node if node.settled else node.clone() for node in self.nodes]
        dup._anc = list(self._anc)
        dup._desc = list(self._desc)
        dup._succ = list(self._succ)
        dup._succ_shared = (1 << len(self._succ)) - 1
        dup._bypass = set(self._bypass)
        return dup

    # ------------------------------------------------------------------
    # verification helpers

    def verify_consistency(self) -> None:
        """Recompute reachability from explicit edges and compare with the
        incremental bitsets; raises GraphError on mismatch.  Test hook."""
        n = len(self.nodes)
        anc = [0] * n
        for u in self.topological_order():
            for v, kinds in self._succ[u].items():
                if kinds & ORDERING_KINDS:
                    anc[v] |= anc[u] | (1 << u)
        # propagate to a fixpoint (topological order above may be stale
        # relative to freshly recomputed sets, so iterate)
        changed = True
        while changed:
            changed = False
            for u in range(n):
                for v, kinds in self._succ[u].items():
                    if kinds & ORDERING_KINDS:
                        want = anc[v] | anc[u] | (1 << u)
                        if want != anc[v]:
                            anc[v] = want
                            changed = True
        if anc != self._anc:
            raise GraphError("incremental ancestor bitsets diverge from recomputation")
        for v in range(n):
            if (anc[v] >> v) & 1:
                raise GraphError(f"node {v} reaches itself: cycle")

    def describe(self) -> str:
        lines = ["ExecutionGraph:"]
        for node in self.nodes:
            lines.append(f"  n{node.nid}: {node.describe()}")
        for u, v, kinds in self.edges():
            lines.append(f"  n{u} -> n{v} [{kinds.pretty()}]")
        return "\n".join(lines)
