"""The candidate-store computation (paper Section 4).

For each Load operation ``L``, ``candidates(L)`` is the set of all stores
``S =a L`` such that:

1. all prior Loads ``L' ⊑ S`` and Stores ``S' ⊑ S`` have been resolved,
2. ``S`` has not been overwritten: there is no ``S' =a L`` with
   ``S ⊑ S' ⊑ L``.

Because memory is initialized with store operations, ``candidates(L)`` is
never empty for an eligible load.  Note condition 1 also excludes any
store ``⊑``-after ``L`` itself (``L`` is an unresolved prior load of such
a store), so no explicit acyclicity check is needed.

Bypass models (TSO/PSO) additionally restrict *local* candidates to the
newest program-earlier same-address store — FIFO store-buffer forwarding
(paper §6: "a Load which obtains its value from a local Store must be
treated specially").

When the execution carries dataflow facts
(:mod:`repro.analysis.static.dataflow`), the scan over visible stores
skips slots that statically must-not-alias the load before ever touching
their dynamic state.  The dynamic ``addr`` comparison is exact either
way, so pruning never changes the candidate set — only the work done to
compute it; ``stats`` (an ``EnumerationStats``) records how many stores
were scanned and how many the static filter rejected.
"""

from __future__ import annotations

from repro.core.execution import Execution
from repro.core.graph import iter_bits
from repro.core.node import INIT_TID, Node


def _static_reject(execution: Execution, load: Node, store: Node) -> bool:
    """True when the dataflow facts prove this store can never supply the
    load's address — sound: dynamic addresses are members of their static
    address sets, so a dynamically-equal pair always passes."""
    facts = execution.facts
    if facts is None or load.static_index is None:
        return False
    slots = facts.store_slots_may_alias(load.tid, load.static_index)
    if slots is None:
        return False
    if store.tid == INIT_TID:
        addresses = facts.address_set(load.tid, load.static_index)
        return addresses is not None and store.addr not in addresses
    if store.static_index is None:
        return False
    return (store.tid, store.static_index) not in slots


def candidate_stores(
    execution: Execution, load: Node, stats=None
) -> list[Node]:
    """All stores the given (eligible, unresolved) load may observe."""
    graph = execution.graph
    address = load.addr
    assert address is not None, "candidates require a resolved load address"

    visible = []
    for node in graph.nodes:
        if not node.is_visible_store or node.nid == load.nid:
            continue
        if stats is not None:
            stats.candidates_scanned += 1
        if _static_reject(execution, load, node):
            if stats is not None:
                stats.candidates_pruned += 1
            continue
        if node.addr == address:
            visible.append(node)

    result = []
    for store in visible:
        if not _priors_resolved(execution, store):
            continue
        if _overwritten(execution, store, load, visible):
            continue
        result.append(store)

    if execution.model.store_load_bypass:
        result = _filter_bypass(execution, load, result)
    return result


def _priors_resolved(execution: Execution, store: Node) -> bool:
    """Condition 1: every memory operation ⊑-before the store is resolved."""
    graph = execution.graph
    for prior in iter_bits(graph.ancestors_mask(store.nid)):
        node = graph.node(prior)
        if node.is_memory and not node.executed:
            return False
    return True


def _overwritten(
    execution: Execution, store: Node, load: Node, visible: list[Node]
) -> bool:
    """Condition 2: ∃ S' =a L with S ⊑ S' ⊑ L."""
    graph = execution.graph
    for other in visible:
        if other.nid == store.nid:
            continue
        if graph.before(store.nid, other.nid) and graph.before(other.nid, load.nid):
            return True
    return False


def _filter_bypass(execution: Execution, load: Node, stores: list[Node]) -> list[Node]:
    """Store-buffer forwarding: only the *newest* program-earlier local
    same-address store can be forwarded; older buffered entries are
    shadowed.  Remote stores remain candidates (they model the load
    reading memory after the local stores drain)."""
    locals_ = execution.local_earlier_stores(load, load.addr)
    if not locals_:
        return stores
    newest_index = max(node.index for node in locals_)
    shadowed = {node.nid for node in locals_ if node.index < newest_index}
    return [store for store in stores if store.nid not in shadowed]
