"""The candidate-store computation (paper Section 4).

For each Load operation ``L``, ``candidates(L)`` is the set of all stores
``S =a L`` such that:

1. all prior Loads ``L' ⊑ S`` and Stores ``S' ⊑ S`` have been resolved,
2. ``S`` has not been overwritten: there is no ``S' =a L`` with
   ``S ⊑ S' ⊑ L``.

Because memory is initialized with store operations, ``candidates(L)`` is
never empty for an eligible load.  Note condition 1 also excludes any
store ``⊑``-after ``L`` itself (``L`` is an unresolved prior load of such
a store), so no explicit acyclicity check is needed.

Bypass models (TSO/PSO) additionally restrict *local* candidates to the
newest program-earlier same-address store — FIFO store-buffer forwarding
(paper §6: "a Load which obtains its value from a local Store must be
treated specially").
"""

from __future__ import annotations

from repro.core.execution import Execution
from repro.core.graph import iter_bits
from repro.core.node import Node


def candidate_stores(execution: Execution, load: Node) -> list[Node]:
    """All stores the given (eligible, unresolved) load may observe."""
    graph = execution.graph
    address = load.addr
    assert address is not None, "candidates require a resolved load address"

    visible = [
        node
        for node in graph.nodes
        if node.is_visible_store and node.addr == address and node.nid != load.nid
    ]

    result = []
    for store in visible:
        if not _priors_resolved(execution, store):
            continue
        if _overwritten(execution, store, load, visible):
            continue
        result.append(store)

    if execution.model.store_load_bypass:
        result = _filter_bypass(execution, load, result)
    return result


def _priors_resolved(execution: Execution, store: Node) -> bool:
    """Condition 1: every memory operation ⊑-before the store is resolved."""
    graph = execution.graph
    for prior in iter_bits(graph.ancestors_mask(store.nid)):
        node = graph.node(prior)
        if node.is_memory and not node.executed:
            return False
    return True


def _overwritten(
    execution: Execution, store: Node, load: Node, visible: list[Node]
) -> bool:
    """Condition 2: ∃ S' =a L with S ⊑ S' ⊑ L."""
    graph = execution.graph
    for other in visible:
        if other.nid == store.nid:
            continue
        if graph.before(store.nid, other.nid) and graph.before(other.nid, load.nid):
            return True
    return False


def _filter_bypass(execution: Execution, load: Node, stores: list[Node]) -> list[Node]:
    """Store-buffer forwarding: only the *newest* program-earlier local
    same-address store can be forwarded; older buffered entries are
    shadowed.  Remote stores remain candidates (they model the load
    reading memory after the local stores drain)."""
    locals_ = execution.local_earlier_stores(load, load.addr)
    if not locals_:
        return stores
    newest_index = max(node.index for node in locals_)
    shadowed = {node.nid for node in locals_ if node.index < newest_index}
    return [store for store in stores if store.nid not in shadowed]
