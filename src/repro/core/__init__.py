"""Core framework: execution graphs, Store Atomicity, enumeration."""

from repro.core.atomicity import check_store_atomicity, close_store_atomicity
from repro.core.candidates import candidate_stores
from repro.core.enumerate import (
    CancellationToken,
    EnumerationCheckpoint,
    EnumerationLimits,
    EnumerationResult,
    EnumerationStats,
    ExhaustionReason,
    ParallelEnumerationConfig,
    enumerate_behaviors,
    resume_enumeration,
)
from repro.core.execution import Execution, ThreadState, instruction_operands
from repro.core.graph import ORDERING_KINDS, EdgeKind, ExecutionGraph, iter_bits
from repro.core.node import INIT_TID, Node
from repro.core.serialization import (
    all_serializations,
    always_before_pairs,
    behavior_cache_key,
    find_serialization,
    is_serializable,
    require_serializable,
)

__all__ = [
    "check_store_atomicity",
    "close_store_atomicity",
    "candidate_stores",
    "CancellationToken",
    "EnumerationCheckpoint",
    "EnumerationLimits",
    "EnumerationResult",
    "EnumerationStats",
    "ExhaustionReason",
    "ParallelEnumerationConfig",
    "enumerate_behaviors",
    "resume_enumeration",
    "Execution",
    "ThreadState",
    "instruction_operands",
    "ORDERING_KINDS",
    "EdgeKind",
    "ExecutionGraph",
    "iter_bits",
    "INIT_TID",
    "Node",
    "all_serializations",
    "always_before_pairs",
    "behavior_cache_key",
    "find_serialization",
    "is_serializable",
    "require_serializable",
]
