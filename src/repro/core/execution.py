"""Executable behaviors: graph generation + dataflow execution (§4.1).

An :class:`Execution` is the paper's *behavior*: the program counter and
register state of every thread together with the (partially ordered)
execution graph.  The class implements steps 1 and 2 of the enumeration
procedure —

1. **Graph generation**: generate unresolved nodes for each thread,
   stopping at the first unresolved branch, inserting all the solid ``≺``
   edges required by the model's reordering rules ("in effect we keep an
   unbounded instruction buffer as full as possible at all times"), and

2. **Execution**: propagate values dataflow-style along the edges; a
   non-Load instruction is eligible for execution when the instructions
   it requires values from have executed.  When a result serves as an
   address, the deferred aliasing edges are inserted (§5.1).

Step 3 (Load Resolution) lives in :func:`resolve_load` here, with the
candidate computation in :mod:`repro.core.candidates` and the driver loop
in :mod:`repro.core.enumerate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import EnumerationError, ExecutionError, GraphError
from repro.core.atomicity import close_store_atomicity
from repro.core.graph import EdgeKind, ExecutionGraph, iter_bits, remap_mask
from repro.core.node import INIT_TID, Node
from repro.isa.instructions import (
    Branch,
    Compute,
    Fence,
    Instruction,
    Load,
    OpClass,
    Rmw,
    Store,
    alu_eval,
)
from repro.isa.operands import Const, Operand, Reg, Value
from repro.isa.program import Program
from repro.models.base import MemoryModel, OrderRequirement

if TYPE_CHECKING:
    from repro.analysis.static.dataflow import StaticFacts

#: Sentinel meaning "operand value not yet available".
_UNAVAILABLE = object()


def instruction_operands(instruction: Instruction) -> tuple[Operand, ...]:
    """The canonical operand order used by ``Node.operand_sources``."""
    if isinstance(instruction, Compute):
        return instruction.args
    if isinstance(instruction, Load):
        return (instruction.addr,)
    if isinstance(instruction, Store):
        return (instruction.addr, instruction.value)
    if isinstance(instruction, Branch):
        return (instruction.cond,) if instruction.cond is not None else ()
    if isinstance(instruction, Rmw):
        return (instruction.addr,) + instruction.args
    if isinstance(instruction, Fence):
        return ()
    raise GraphError(f"unknown instruction type {type(instruction).__name__}")


@dataclass
class ThreadState:
    """Per-thread dynamic state: PC, register map, generation status."""

    pc: int = 0
    regs: dict[str, int] = field(default_factory=dict)  # register name -> producer nid
    waiting_branch: int | None = None  # unresolved branch blocking fetch
    halted: bool = False
    nodes: list[int] = field(default_factory=list)  # generated nids, program order

    def copy(self) -> "ThreadState":
        return ThreadState(
            pc=self.pc,
            regs=dict(self.regs),
            waiting_branch=self.waiting_branch,
            halted=self.halted,
            nodes=list(self.nodes),
        )


class Execution:
    """One (possibly partial) behavior of a program under a memory model."""

    def __init__(
        self,
        program: Program,
        model: MemoryModel,
        max_nodes_per_thread: int = 64,
        facts: "StaticFacts | None" = None,
    ) -> None:
        self.program = program
        self.model = model
        self.max_nodes_per_thread = max_nodes_per_thread
        #: optional dataflow facts (repro.analysis.static.dataflow) used
        #: to decide statically-certain alias pairs at generation time —
        #: a sound accelerator, never a semantic change.
        self.facts = facts
        self.graph = ExecutionGraph()
        self.threads: list[ThreadState] = [ThreadState() for _ in program.threads]
        self.init_nodes: dict[Value, int] = {}
        #: (earlier nid, later nid) same-address checks awaiting addresses.
        self.pending_alias: list[tuple[int, int]] = []
        self._create_init_stores()

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def initial(
        cls,
        program: Program,
        model: MemoryModel,
        max_nodes_per_thread: int = 64,
        facts: "StaticFacts | None" = None,
    ) -> "Execution":
        """The starting behavior: init stores + saturated generation."""
        execution = cls(program, model, max_nodes_per_thread, facts)
        execution.stabilize()
        return execution

    def _create_init_stores(self) -> None:
        """Memory is initialized with Store operations before any thread is
        started (paper §4) — one visible store per referenced location."""
        for index, location in enumerate(self.program.locations()):
            node = Node(
                nid=len(self.graph),
                tid=INIT_TID,
                index=index,
                instruction=None,
                op_class=OpClass.STORE,
                executed=True,
                writes=True,
                addr=location,
                stored=self.program.initial_value(location),
                value=self.program.initial_value(location),
            )
            self.graph.add_node(node)
            self.init_nodes[location] = node.nid

    def copy(self) -> "Execution":
        """The Load-Resolution branching copy (hot path).

        The graph is copied copy-on-write: settled nodes and successor
        dicts are shared with the parent until first mutation.  This is
        safe because the engine only ever mutates unsettled nodes (which
        :meth:`ExecutionGraph.copy_on_write` clones eagerly) and all
        edge insertion goes through ``add_edge``.
        """
        dup = Execution.__new__(Execution)
        dup.program = self.program
        dup.model = self.model
        dup.max_nodes_per_thread = self.max_nodes_per_thread
        dup.facts = self.facts
        dup.graph = self.graph.copy_on_write()
        dup.threads = [ts.copy() for ts in self.threads]
        dup.init_nodes = self.init_nodes  # write-once at construction
        dup.pending_alias = list(self.pending_alias)
        return dup

    # ------------------------------------------------------------------
    # step 1: graph generation

    def _generate(self) -> bool:
        """Fetch nodes for every thread up to the first unresolved branch
        (or the end of the thread).  Returns True if anything was fetched."""
        progress = False
        for tid, state in enumerate(self.threads):
            code = self.program.threads[tid].code
            while not state.halted and state.waiting_branch is None:
                if state.pc >= len(code):
                    state.halted = True
                    break
                if len(state.nodes) >= self.max_nodes_per_thread:
                    raise EnumerationError(
                        f"thread {self.program.threads[tid].name!r} exceeded "
                        f"{self.max_nodes_per_thread} dynamic instructions "
                        f"(unbounded loop?)"
                    )
                instruction = code[state.pc]
                static_pc = state.pc
                state.pc += 1
                nid = self._append_node(tid, instruction, static_pc)
                if isinstance(instruction, Branch):
                    state.waiting_branch = nid
                progress = True
        return progress

    def _append_node(
        self, tid: int, instruction: Instruction, static_index: int | None = None
    ) -> int:
        state = self.threads[tid]
        operands = instruction_operands(instruction)
        sources = tuple(
            state.regs.get(op.name) if isinstance(op, Reg) else None for op in operands
        )
        node = Node(
            nid=len(self.graph),
            tid=tid,
            index=len(state.nodes),
            instruction=instruction,
            op_class=instruction.op_class,
            operand_sources=sources,
            static_index=static_index,
        )
        self.graph.add_node(node)

        # Init stores precede every thread operation.
        for init_nid in self.init_nodes.values():
            self.graph.add_edge(init_nid, node.nid, EdgeKind.INIT)

        # Register dataflow.
        for producer in set(source for source in sources if source is not None):
            self.graph.add_edge(producer, node.nid, EdgeKind.DATA)

        # Reordering-table edges against every prior node in this thread.
        for prior_nid in state.nodes:
            prior = self.graph.node(prior_nid)
            assert prior.instruction is not None
            requirement = self.model.requirement(prior.instruction, instruction)
            if requirement is OrderRequirement.ALWAYS:
                self.graph.add_edge(prior_nid, node.nid, EdgeKind.PROGRAM)
            elif requirement is OrderRequirement.SAME_ADDRESS:
                self._register_alias_pair(prior, node)

        # Constant addresses resolve immediately.
        addr_operand = instruction.addr_operand()
        if isinstance(addr_operand, Const):
            self._set_address(node, addr_operand.value)

        destination = instruction.dest()
        if destination is not None:
            state.regs[destination.name] = node.nid
        state.nodes.append(node.nid)
        return node.nid

    def _register_alias_pair(self, prior: Node, node: Node) -> None:
        """Handle an ``x ≠ y`` table entry between two memory operations.

        With both addresses statically constant the decision is immediate.
        Otherwise the pair is deferred until both addresses resolve; in the
        non-speculative model the later operation additionally depends on
        the instruction producing the earlier operation's address (§5.1).

        Dataflow facts settle register-computed pairs statically: a
        must-alias pair gets its ordering edge at generation time (the
        address producer is then ordered transitively, so no separate
        §5.1 edge is needed), a must-not-alias pair will never produce a
        same-address edge so the deferred check is dropped — but its
        §5.1 address-resolution dependency is *kept*: the machine still
        waits for the address to perform the check (Figure 8's S7/L8).
        """
        prior_addr = prior.instruction.addr_operand() if prior.instruction else None
        node_addr = node.instruction.addr_operand() if node.instruction else None
        if isinstance(prior_addr, Const) and isinstance(node_addr, Const):
            if prior_addr.value == node_addr.value:
                self.graph.add_edge(prior.nid, node.nid, EdgeKind.PROGRAM)
            return
        if (
            self.facts is not None
            and prior.static_index is not None
            and node.static_index is not None
        ):
            from repro.analysis.static.dataflow import AliasVerdict

            verdict = self.facts.pair_verdict(
                prior.tid, prior.static_index, node.tid, node.static_index
            )
            if verdict == AliasVerdict.MUST:
                self.graph.add_edge(prior.nid, node.nid, EdgeKind.PROGRAM)
                return
            if verdict == AliasVerdict.MAY:
                self.pending_alias.append((prior.nid, node.nid))
        else:
            self.pending_alias.append((prior.nid, node.nid))
        if not self.model.speculative_aliasing and isinstance(prior_addr, Reg):
            producer = prior.operand_sources[0]  # addr is operand 0 for memory ops
            if producer is not None:
                self.graph.add_edge(producer, node.nid, EdgeKind.ADDR_DEP)

    # ------------------------------------------------------------------
    # step 2: dataflow execution

    def operand_value(self, node: Node, position: int):
        """The value of ``node``'s operand at ``position``, or the
        unavailable sentinel.  Unwritten registers read as integer 0."""
        assert node.instruction is not None
        operand = instruction_operands(node.instruction)[position]
        if isinstance(operand, Const):
            return operand.value
        producer = node.operand_sources[position]
        if producer is None:
            return 0
        producer_node = self.graph.node(producer)
        if not producer_node.executed:
            return _UNAVAILABLE
        return producer_node.value

    def _operand_values(self, node: Node) -> tuple | None:
        """All operand values, or None if any is unavailable."""
        assert node.instruction is not None
        values = []
        for position in range(len(instruction_operands(node.instruction))):
            value = self.operand_value(node, position)
            if value is _UNAVAILABLE:
                return None
            values.append(value)
        return tuple(values)

    def _set_address(self, node: Node, address: Value) -> None:
        if not isinstance(address, str):
            raise ExecutionError(
                f"{node.describe()}: computed address {address!r} is not a "
                f"memory-location name"
            )
        if address not in self.init_nodes:
            raise ExecutionError(
                f"{node.describe()}: address {address!r} names an unknown location"
            )
        node.addr = address

    def _try_resolve_address(self, node: Node) -> bool:
        """Fill in ``node.addr`` once the address operand is available."""
        if node.addr is not None or not node.is_memory:
            return False
        value = self.operand_value(node, 0)
        if value is _UNAVAILABLE:
            return False
        self._set_address(node, value)
        return True

    def _execute_ready(self) -> bool:
        """Execute all non-Load nodes whose operands are available; resolve
        memory addresses as they become known and process deferred aliasing
        pairs.  Returns True if anything changed."""
        any_progress = False
        progress = True
        while progress:
            progress = False
            for node in self.graph.nodes:
                if node.is_init:
                    continue
                if node.is_memory and node.addr is None:
                    if self._try_resolve_address(node):
                        progress = True
                if node.executed or node.reads_memory:
                    continue  # loads/rmws resolve in step 3
                progress |= self._execute_node(node)
            any_progress |= progress
            if progress:
                self._process_alias_pairs()
                # Branch resolution may have unblocked fetching.
                if self._generate():
                    progress = True
        return any_progress

    def _execute_node(self, node: Node) -> bool:
        instruction = node.instruction
        assert instruction is not None
        if isinstance(instruction, Fence):
            node.executed = True
            return True
        values = self._operand_values(node)
        if values is None:
            return False
        if isinstance(instruction, Compute):
            node.value = alu_eval(instruction.op, values)
            node.executed = True
            return True
        if isinstance(instruction, Store):
            node.stored = values[1]
            node.value = values[1]
            node.writes = True
            node.executed = True
            return True
        if isinstance(instruction, Branch):
            condition = values[0] if values else 1
            node.value = condition
            node.executed = True
            state = self.threads[node.tid]
            if state.waiting_branch == node.nid:
                state.waiting_branch = None
            if instruction.taken(condition):
                state.pc = self.program.threads[node.tid].target_of(instruction)
                state.halted = False
            return True
        raise GraphError(f"cannot execute node {node.describe()}")

    def _process_alias_pairs(self) -> None:
        """Insert deferred same-address edges whose addresses are now known.

        In a speculative execution an insertion that fails (cycle) means
        the speculation went wrong; the CycleError propagates to the
        enumerator, which discards this behavior — the §5.2 rollback."""
        remaining: list[tuple[int, int]] = []
        for earlier, later in self.pending_alias:
            earlier_node = self.graph.node(earlier)
            later_node = self.graph.node(later)
            if earlier_node.addr is None or later_node.addr is None:
                remaining.append((earlier, later))
                continue
            if earlier_node.addr == later_node.addr:
                self.graph.add_edge(earlier, later, EdgeKind.SAME_ADDR)
        self.pending_alias = remaining

    # ------------------------------------------------------------------
    # driver

    def stabilize(self) -> None:
        """Run generation + execution to a fixpoint, then close Store
        Atomicity.  May raise CycleError/AtomicityViolation (speculation
        failures) or EnumerationError (node limit)."""
        while True:
            generated = self._generate()
            executed = self._execute_ready()
            if not generated and not executed:
                break
        close_store_atomicity(self.graph)

    # ------------------------------------------------------------------
    # step 3 support: load resolution

    def unresolved_loads(self) -> list[Node]:
        return [
            node for node in self.graph.nodes if node.reads_memory and not node.executed
        ]

    def eligible_loads(self) -> list[Node]:
        """Unresolved loads that may be resolved now: address known, all
        ⊑-predecessor loads resolved (the paper's eligibility rule), RMW
        operands available, and any model-specific conditions."""
        eligible = []
        for node in self.unresolved_loads():
            if node.addr is None:
                continue
            predecessors_resolved = all(
                self.graph.node(p).executed
                for p in iter_bits(self.graph.ancestors_mask(node.nid))
                if self.graph.node(p).reads_memory
            )
            if not predecessors_resolved:
                continue
            if node.op_class is OpClass.RMW and self._operand_values(node) is None:
                continue
            if self.model.store_load_bypass and not self._buffer_searchable(node):
                continue
            eligible.append(node)
        return eligible

    def _buffer_searchable(self, load: Node) -> bool:
        """Bypass models must know the addresses of all program-earlier
        local stores before a load can search the store buffer."""
        state = self.threads[load.tid]
        for nid in state.nodes:
            other = self.graph.node(nid)
            if other.index >= load.index:
                break
            if other.writes_memory and other.addr is None:
                return False
        return True

    def local_earlier_stores(self, load: Node, address: Value) -> list[Node]:
        """Program-earlier same-thread *visible* stores to ``address``
        (for bypass).  Visibility matters: a failed CAS never enters the
        store buffer, so it neither shadows older buffered stores nor
        needs to drain before the load reads memory."""
        state = self.threads[load.tid]
        result = []
        for nid in state.nodes:
            other = self.graph.node(nid)
            if other.index >= load.index:
                break
            if other.is_visible_store and other.addr == address:
                result.append(other)
        return result

    def resolve_load(self, load_nid: int, store_nid: int) -> None:
        """Resolve ``source(L) = S`` (one branch of Load Resolution).

        Adds the observation edge (grey for a TSO-style local forward),
        computes the loaded value, handles the RMW store side, re-closes
        Store Atomicity, and re-stabilizes.  Raises CycleError /
        AtomicityViolation when the choice is inconsistent.
        """
        load = self.graph.node(load_nid)
        store = self.graph.node(store_nid)
        if load.executed:
            raise GraphError(f"load n{load_nid} is already resolved")
        if not store.is_visible_store:
            raise GraphError(f"node n{store_nid} is not a visible store")

        is_local_forward = (
            self.model.store_load_bypass
            and load.op_class is OpClass.LOAD
            and store.tid == load.tid
            and store.index < load.index
        )
        if is_local_forward:
            self.graph.add_edge(store_nid, load_nid, EdgeKind.BYPASS)
        else:
            self.graph.add_edge(store_nid, load_nid, EdgeKind.SOURCE)
            if self.model.store_load_bypass and load.op_class is OpClass.LOAD:
                # Observing a remote store: buffered local stores to the
                # same address must have drained first (paper §6: S ≺ L
                # when S ≠ source(L)).
                for local in self.local_earlier_stores(load, load.addr):
                    if local.nid != store_nid:
                        self.graph.add_edge(local.nid, load_nid, EdgeKind.PROGRAM)

        load.source = store_nid
        load.value = store.stored
        load.executed = True

        if load.op_class is OpClass.RMW:
            instruction = load.instruction
            assert isinstance(instruction, Rmw)
            values = self._operand_values(load)
            assert values is not None, "RMW eligibility guarantees operand values"
            stored = instruction.stored_value(store.stored, values[1:])
            if stored is not None:
                load.stored = stored
                load.writes = True

        close_store_atomicity(self.graph)
        self.stabilize()

    # ------------------------------------------------------------------
    # imposed orderings (§3.3)

    def impose(self, before_nid: int, after_nid: int) -> None:
        """Insert an extra ordering edge, as a conservative real system
        would (§3.3: "it is legal to introduce additional edges in an
        execution graph so long as no cycles are introduced — however,
        doing so rules out possible program behaviors").

        The Store Atomicity closure is re-run, since an imposed edge may
        expose further obligations.  Raises CycleError/AtomicityViolation
        when the imposition is inconsistent with this execution.
        """
        self.graph.add_edge(before_nid, after_nid, EdgeKind.IMPOSED)
        close_store_atomicity(self.graph)

    # ------------------------------------------------------------------
    # status and results

    def completed(self) -> bool:
        """All nodes executed and every thread ran to completion."""
        return all(node.executed for node in self.graph.nodes) and all(
            state.halted for state in self.threads
        )

    def final_registers(self) -> dict[tuple[str, str], Value]:
        """Final architectural register values: (thread name, register) -> value."""
        result: dict[tuple[str, str], Value] = {}
        for tid, state in enumerate(self.threads):
            thread_name = self.program.threads[tid].name
            for register, producer in state.regs.items():
                node = self.graph.node(producer)
                if node.executed and node.value is not None:
                    result[(thread_name, register)] = node.value
        return result

    def memory_finals(self) -> dict[Value, tuple[Value, ...]]:
        """Per address, the values of its ⊑-maximal visible stores — the
        possible final memory contents (ambiguous when stores race)."""
        result: dict[Value, tuple[Value, ...]] = {}
        stores = [node for node in self.graph.nodes if node.is_visible_store]
        for address in {store.addr for store in stores}:
            same = [store for store in stores if store.addr == address]
            maximal = [
                store
                for store in same
                if not any(
                    other.nid != store.nid and self.graph.before(store.nid, other.nid)
                    for other in same
                )
            ]
            result[address] = tuple(sorted((store.stored for store in maximal), key=repr))
        return result

    # ------------------------------------------------------------------
    # canonical keys (deduplication)

    def _identity(self, nid: int) -> tuple[int, int]:
        node = self.graph.node(nid)
        return (node.tid, node.index)

    def _canonical_ranks(self) -> tuple[list[int], list[int]]:
        """Node ids sorted by (tid, index) identity, plus the inverse
        permutation (nid -> canonical rank).  Two executions of the same
        behavior list the same identities in the same canonical order
        even when their nid assignment order differs."""
        nodes = self.graph.nodes
        order = sorted(range(len(nodes)), key=lambda nid: (nodes[nid].tid, nodes[nid].index))
        rank = [0] * len(nodes)
        for position, nid in enumerate(order):
            rank[nid] = position
        return order, rank

    def _bypass_identities(self) -> tuple:
        return tuple(
            sorted((self._identity(u), self._identity(v)) for u, v in self.graph.bypass_edges())
        )

    def state_key(self) -> tuple:
        """A canonical key for the *full* behavior state.

        Two behaviors with equal keys evolve identically, so the
        enumerator may keep only one.  Node identity is (tid, index) —
        nid assignment order can differ between resolution orders.

        The ⊑ relation is encoded directly from the per-node ancestor
        bitsets, permuted into canonical node order (``anc_sig``) —
        equality over those ints is equality of the relation over
        identities, without materializing the O(n²) pair set.  The key
        contains only tuples/ints/strings/bools/None, so its ``repr`` is
        deterministic across processes (no set iteration order) — the
        property the digest-based dedup and the parallel engine rely on.
        """
        graph = self.graph
        nodes = graph.nodes
        order, rank = self._canonical_ranks()
        node_states = tuple(
            (
                node.tid,
                node.index,
                node.op_class.value,
                node.executed,
                node.value,
                node.addr,
                self._identity(node.source) if node.source is not None else None,
                node.writes,
                node.stored,
            )
            for node in (nodes[nid] for nid in order)
        )
        anc_sig = tuple(remap_mask(graph.ancestors_mask(nid), rank) for nid in order)
        thread_states = tuple(
            (
                state.pc,
                state.halted,
                state.waiting_branch is not None,
                tuple(sorted((reg, self._identity(nid)) for reg, nid in state.regs.items())),
            )
            for state in self.threads
        )
        pending = tuple(
            sorted((self._identity(u), self._identity(v)) for u, v in self.pending_alias)
        )
        return (node_states, anc_sig, self._bypass_identities(), thread_states, pending)

    def loadstore_key(self) -> tuple:
        """The paper's Load–Store-graph comparison key (§4.1): memory
        operations only, with the ⊑ relation projected onto them (as
        canonical-rank ancestor bitsets, like :meth:`state_key`)."""
        graph = self.graph
        nodes = graph.nodes
        order, _ = self._canonical_ranks()
        memory_order = [nid for nid in order if nodes[nid].is_memory]
        memory_mask = 0
        memory_rank = [0] * len(nodes)
        for position, nid in enumerate(memory_order):
            memory_mask |= 1 << nid
            memory_rank[nid] = position
        descriptors = tuple(
            (
                node.tid,
                node.index,
                node.op_class.value,
                node.addr,
                node.value if node.reads_memory else None,
                node.stored if node.writes else None,
                self._identity(node.source) if node.source is not None else None,
            )
            for node in (nodes[nid] for nid in memory_order)
        )
        projected = tuple(
            remap_mask(graph.ancestors_mask(nid) & memory_mask, memory_rank)
            for nid in memory_order
        )
        return (descriptors, projected, self._bypass_identities())

    def describe(self) -> str:
        lines = [f"Execution of {self.program.name!r} under {self.model.name}:"]
        for node in self.graph.nodes:
            lines.append(f"  {node.describe()}")
        lines.append("  " + ("completed" if self.completed() else "in progress"))
        return "\n".join(lines)
