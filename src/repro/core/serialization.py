"""Serializability of executions (paper Section 3.1).

A serialization of an execution is a total order ``<`` on all operations
such that

1. ``A ≺ B ⇒ A < B`` (local instruction order respected),
2. ``source(L) < L``,
3. there is no ``S =a L`` with ``source(L) < S < L`` (every load reads
   the most recent same-address store).

Since non-memory operations never constrain memory values, it suffices to
order the *memory* operations while respecting the ``⊑`` relation
projected onto them (paths through ALU/branch/fence nodes are captured by
graph reachability).  :func:`find_serialization` performs an operational
replay search — memory operations are appended one at a time, and a load
may be appended only while its source is the current value of its
address.  :func:`all_serializations` enumerates every witness order,
which lets tests validate the Store Atomicity closure against the
declarative definition of ``⊑`` ("A ⊑ B iff A < B in every
serialization").

TSO executions with bypass edges are deliberately *not* serializable
(that is the paper's point in Section 6); pass ``forwarded_ok=True`` to
treat bypassed loads as satisfied at any point at or after their source's
position minus the buffer — i.e. they are simply skipped during replay
validation, matching the grey edges' exemption from ``⊑``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterator

from repro.errors import SerializationError
from repro.core.execution import Execution
from repro.core.node import Node
from repro.isa.disassembler import disassemble


def _memory_nodes(execution: Execution) -> list[Node]:
    return [node for node in execution.graph.nodes if node.is_memory]


def _replay_ready(
    execution: Execution,
    node: Node,
    placed: set[int],
    latest: dict,
    bypassed: set[int],
) -> bool:
    """Can ``node`` be appended to the serialization now?"""
    graph = execution.graph
    for prior in graph.ancestors(node.nid):
        if graph.node(prior).is_memory and prior not in placed:
            return False
    if node.reads_memory and node.nid not in bypassed:
        if latest.get(node.addr) != node.source:
            return False
    return True


def _serialize_search(
    execution: Execution,
    order: list[int],
    placed: set[int],
    latest: dict,
    remaining: list[Node],
    bypassed: set[int],
    all_orders: bool,
) -> Iterator[list[int]]:
    if not remaining:
        yield list(order)
        return
    for index, node in enumerate(remaining):
        if not _replay_ready(execution, node, placed, latest, bypassed):
            continue
        saved_latest = latest.get(node.addr) if node.is_memory else None
        order.append(node.nid)
        placed.add(node.nid)
        if node.is_visible_store:
            latest[node.addr] = node.nid
        rest = remaining[:index] + remaining[index + 1 :]
        produced = False
        for witness in _serialize_search(
            execution, order, placed, latest, rest, bypassed, all_orders
        ):
            produced = True
            yield witness
            if not all_orders:
                break
        order.pop()
        placed.discard(node.nid)
        if node.is_visible_store:
            if saved_latest is None:
                latest.pop(node.addr, None)
            else:
                latest[node.addr] = saved_latest
        if produced and not all_orders:
            return


def find_serialization(
    execution: Execution, forwarded_ok: bool = False
) -> list[int] | None:
    """One witness serialization of the execution's memory operations, as
    a list of nids (init stores included), or None if none exists."""
    nodes = _memory_nodes(execution)
    bypassed = (
        {v for (_, v) in execution.graph.bypass_edges()} if forwarded_ok else set()
    )
    for witness in _serialize_search(execution, [], set(), {}, nodes, bypassed, False):
        return witness
    return None


def all_serializations(
    execution: Execution, forwarded_ok: bool = False, limit: int = 100000
) -> list[list[int]]:
    """Every witness serialization (use only on small executions)."""
    nodes = _memory_nodes(execution)
    bypassed = (
        {v for (_, v) in execution.graph.bypass_edges()} if forwarded_ok else set()
    )
    result = []
    for witness in _serialize_search(execution, [], set(), {}, nodes, bypassed, True):
        result.append(witness)
        if len(result) >= limit:
            raise SerializationError(f"more than {limit} serializations; aborting")
    return result


def is_serializable(execution: Execution, forwarded_ok: bool = False) -> bool:
    """Whether a witness total order exists (Section 3.1's declarative view)."""
    return find_serialization(execution, forwarded_ok) is not None


def require_serializable(execution: Execution) -> list[int]:
    """A witness order, raising :class:`SerializationError` if none exists."""
    witness = find_serialization(execution)
    if witness is None:
        raise SerializationError(
            f"execution of {execution.program.name!r} under "
            f"{execution.model.name} has no serialization"
        )
    return witness


def always_before_pairs(execution: Execution) -> frozenset[tuple[int, int]]:
    """Pairs (u, v) of memory nodes with u before v in *every*
    serialization — the declarative definition of ``⊑`` (Section 3.1).

    Exponential; intended for validating the closure on small executions.
    """
    orders = all_serializations(execution)
    if not orders:
        raise SerializationError("execution has no serialization")
    nodes = [node.nid for node in _memory_nodes(execution)]
    pairs = set()
    for u in nodes:
        for v in nodes:
            if u == v:
                continue
            if all(order.index(u) < order.index(v) for order in orders):
                pairs.add((u, v))
    return frozenset(pairs)


# ----------------------------------------------------------------------
# the canonical behavior-cache digest

#: Bump when the canonical form below changes: a key from another format
#: version must never collide with this one's, so the version is hashed in.
BEHAVIOR_CACHE_KEY_VERSION = 1

_LIMIT_FIELDS = (
    "max_behaviors",
    "max_executions",
    "max_nodes_per_thread",
    "deadline_seconds",
    "max_memory_mb",
)


def behavior_cache_key(program, model, limits=None, *, digest_size: int = 16) -> bytes:
    """The canonical digest identifying one enumeration request.

    Behaviors are a pure function of ``(program, model, limits)``, so
    this digest is a complete content address for an enumeration result
    — the key the :class:`~repro.cache.store.BehaviorCache` memo store
    is organized around.  Stability contract:

    * **program** hashes as its canonical disassembly
      (:func:`~repro.isa.disassembler.disassemble`: sorted initial
      memory, normalized operand spelling), so the same program
      assembled twice — or round-tripped through text — keys
      identically, while any instruction change rekeys.  The program
      *name* is included: cached executions carry their program object,
      and a rename must re-enumerate rather than replay an execution
      whose embedded name disagrees.
    * **model** hashes as its name plus full semantic content (every
      reordering-table entry, the bypass and speculation flags), so a
      redefined model never replays stale behaviors from under an old
      definition.
    * **limits** hashes every budget field — a limit change can change
      which prefix of the space a *partial* search sees, and even for
      complete results "same request" is defined as same budgets.
      ``None`` normalizes to the default
      :class:`~repro.core.enumerate.EnumerationLimits` — exactly what
      :func:`~repro.core.enumerate.enumerate_behaviors` runs with, so
      the two spellings of the same request share one key.

    The digest is deterministic across processes and platforms (the
    canonical form is sorted JSON; no ``PYTHONHASHSEED`` dependence).
    """
    if limits is None:
        from repro.core.enumerate import EnumerationLimits

        limits = EnumerationLimits()
    limits_fields = [getattr(limits, name) for name in _LIMIT_FIELDS]
    payload = {
        "version": BEHAVIOR_CACHE_KEY_VERSION,
        "program": disassemble(program),
        "model": {
            "name": model.name,
            "store_load_bypass": bool(model.store_load_bypass),
            "speculative_aliasing": bool(model.speculative_aliasing),
            "table": sorted(
                (first.value, second.value, int(requirement))
                for (first, second), requirement in model.table.entries.items()
            ),
        },
        "limits": limits_fields,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=digest_size).digest()
