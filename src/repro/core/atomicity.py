"""The Store Atomicity property (paper Section 3.3).

Provides the closure engine that inserts the "dotted" derived edges
required by the three rules, and a declarative checker that decides
whether an arbitrary execution graph obeys Store Atomicity.

Rules (for resolved loads ``L`` with ``s = source(L)``):

a. *Predecessor stores of a Load are ordered before its source*:
   ``S =a L ∧ S ⊑ L ∧ S ≠ s  ⇒  S ⊑ s``

b. *Successor stores of an observed store are ordered after its
   observers*: ``S =a L ∧ s ⊑ S  ⇒  L ⊑ S``

c. *Mutual ancestors of loads are ordered before mutual successors of the
   distinct stores they observe*:
   ``L =a L' ∧ A ⊑ L ∧ A ⊑ L' ∧ s ≠ s' ∧ s ⊑ B ∧ s' ⊑ B  ⇒  A ⊑ B``

The closure is iterated to a fixpoint — Figure 7 shows a case where one
inserted edge exposes the need for another.  If a rule requires an edge
that would create a cycle, the execution is inconsistent and
:class:`~repro.errors.AtomicityViolation` is raised (in speculative
executions the caller treats this as a rollback).
"""

from __future__ import annotations

from repro.errors import AtomicityViolation, CycleError
from repro.core.graph import EdgeKind, ExecutionGraph, iter_bits
from repro.core.node import Node


def _resolved_loads(graph: ExecutionGraph) -> list[Node]:
    return [
        node
        for node in graph.nodes
        if node.reads_memory and node.executed and node.source is not None
    ]


def _visible_stores(graph: ExecutionGraph) -> list[Node]:
    return [node for node in graph.nodes if node.is_visible_store]


def close_store_atomicity(graph: ExecutionGraph, include_rule_c: bool = True) -> int:
    """Insert all edges required by rules a, b, c, iterating to a fixpoint.

    Returns the number of new ordering relations added.  Raises
    :class:`AtomicityViolation` if the rules are unsatisfiable (an edge
    insertion would create a cycle).

    ``include_rule_c=False`` applies only rules a and b — the weaker
    check performed by TSOtool (§7: "They do not formalize or check
    property c"), provided so the trace checker can reproduce exactly
    that gap.
    """
    total_added = 0
    changed = True
    while changed:
        changed = False
        loads = _resolved_loads(graph)
        stores = _visible_stores(graph)

        for load in loads:
            src = load.source
            assert src is not None
            for store in stores:
                # Skip the observed source and the load itself (an RMW node
                # is simultaneously a load and a store; its own write
                # trivially follows its read).
                if store.nid in (src, load.nid) or store.addr != load.addr:
                    continue
                try:
                    # Rule a: S ⊑ L ⇒ S ⊑ source(L)
                    if graph.before(store.nid, load.nid) and not graph.before(store.nid, src):
                        if graph.add_edge(store.nid, src, EdgeKind.ATOMICITY):
                            changed = True
                            total_added += 1
                    # Rule b: source(L) ⊑ S ⇒ L ⊑ S
                    if graph.before(src, store.nid) and not graph.before(load.nid, store.nid):
                        if graph.add_edge(load.nid, store.nid, EdgeKind.ATOMICITY):
                            changed = True
                            total_added += 1
                except CycleError as exc:
                    raise AtomicityViolation(
                        f"store atomicity is unsatisfiable: load {load.describe()} with "
                        f"source n{src} conflicts with store {store.describe()}"
                    ) from exc

        # Rule c: over pairs of same-address loads with distinct sources.
        if not include_rule_c:
            continue
        for i, load in enumerate(loads):
            for other in loads[i + 1 :]:
                if load.addr != other.addr or load.source == other.source:
                    continue
                common_anc = graph.ancestors_mask(load.nid) & graph.ancestors_mask(other.nid)
                common_desc = graph.descendants_mask(load.source) & graph.descendants_mask(
                    other.source
                )
                if not common_anc or not common_desc:
                    continue
                for a in iter_bits(common_anc):
                    missing = common_desc & ~graph.descendants_mask(a)
                    for b in iter_bits(missing):
                        if a == b or graph.before(a, b):
                            continue
                        try:
                            if graph.add_edge(a, b, EdgeKind.ATOMICITY):
                                changed = True
                                total_added += 1
                        except CycleError as exc:
                            raise AtomicityViolation(
                                f"rule c is unsatisfiable between loads n{load.nid} and "
                                f"n{other.nid} (common ancestor n{a}, common successor n{b})"
                            ) from exc
    return total_added


def check_store_atomicity(graph: ExecutionGraph) -> list[str]:
    """Declaratively check an execution graph against Store Atomicity.

    Returns a list of human-readable violations (empty when the graph is
    store-atomic).  Checks the three base serializability facts from
    Section 3.3 plus rules a, b, c as *already-satisfied* implications —
    it does not modify the graph.
    """
    problems: list[str] = []
    loads = _resolved_loads(graph)
    stores = _visible_stores(graph)

    for load in loads:
        src = load.source
        assert src is not None
        source_node = graph.node(src)
        if not source_node.is_visible_store:
            problems.append(f"load n{load.nid} observes n{src}, which is not a visible store")
            continue
        if source_node.addr != load.addr:
            problems.append(
                f"load n{load.nid} (addr {load.addr!r}) observes store n{src} "
                f"to different address {source_node.addr!r}"
            )
        bypass = (src, load.nid) in graph.bypass_edges()
        if not bypass and not graph.before(src, load.nid):
            problems.append(f"source n{src} is not ordered before its load n{load.nid}")
        for store in stores:
            if store.nid in (src, load.nid) or store.addr != load.addr:
                continue
            if graph.before(src, store.nid) and graph.before(store.nid, load.nid):
                problems.append(
                    f"load n{load.nid} observes n{src}, overwritten by intervening n{store.nid}"
                )
            if graph.before(store.nid, load.nid) and not graph.before(store.nid, src):
                problems.append(
                    f"rule a unsatisfied: n{store.nid} ⊑ n{load.nid} but n{store.nid} ⋢ n{src}"
                )
            if graph.before(src, store.nid) and not graph.before(load.nid, store.nid):
                problems.append(
                    f"rule b unsatisfied: n{src} ⊑ n{store.nid} but n{load.nid} ⋢ n{store.nid}"
                )

    for i, load in enumerate(loads):
        for other in loads[i + 1 :]:
            if load.addr != other.addr or load.source == other.source:
                continue
            common_anc = graph.ancestors_mask(load.nid) & graph.ancestors_mask(other.nid)
            common_desc = graph.descendants_mask(load.source) & graph.descendants_mask(
                other.source
            )
            for a in iter_bits(common_anc):
                for b in iter_bits(common_desc & ~graph.descendants_mask(a)):
                    if a != b:
                        problems.append(
                            f"rule c unsatisfied: n{a} ⋢ n{b} for load pair "
                            f"(n{load.nid}, n{other.nid})"
                        )
    return problems
