"""Enumerating program behaviors (paper Section 4).

The driver maintains a set of current behaviors ``B``; at each step one
behavior is refined: graph generation and dataflow execution run to a
fixpoint (inside :meth:`Execution.stabilize`), then **Load Resolution**
branches the behavior — for every eligible unresolved load ``L`` and
every ``S ∈ candidates(L)``, a copy is created with ``source(L) = S``.

"Load Resolution is the only place where our enumeration procedure may
duplicate effort" — duplicates are discarded by comparing canonical
behavior keys (and completed executions by their Load–Store graphs).

Speculative executions whose deferred alias edges or atomicity closure
become inconsistent are discarded: in an enumerative setting, a rolled
back and re-tried load is exactly some other branch of the search.

Resilience
----------

The behavior set grows combinatorially with threads and loads, so the
search is guarded by :class:`EnumerationLimits` budgets: behavior and
execution counts, a wall-clock deadline, an approximate memory budget
over the worklist and dedup set, and a cooperative
:class:`CancellationToken`.  By default an exhausted budget **degrades
gracefully**: the partial result is returned with ``complete=False``, a
populated :class:`ExhaustionReason`, and an
:class:`EnumerationCheckpoint` from which the search can be resumed
under a bigger budget (:func:`resume_enumeration`).  Passing
``strict=True`` restores the historical raise-on-limit behavior.
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import sys
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import (
    AtomicityViolation,
    CacheError,
    CycleError,
    EnumerationError,
    StuckBehaviorWarning,
)
from repro.core.candidates import candidate_stores
from repro.core.execution import Execution
from repro.isa.program import Program
from repro.models.base import MemoryModel

if TYPE_CHECKING:
    from repro.analysis.static.dataflow import StaticFacts
    from repro.cache.store import BehaviorCache


class ExhaustionReason(enum.Enum):
    """Why an enumeration stopped before exhausting the behavior set."""

    BEHAVIOR_BUDGET = "behavior-budget"  #: ``max_behaviors`` explored
    EXECUTION_BUDGET = "execution-budget"  #: ``max_executions`` kept
    DEADLINE = "deadline"  #: ``deadline_seconds`` of wall clock elapsed
    MEMORY = "memory"  #: ``max_memory_mb`` accounting budget exceeded
    CANCELLED = "cancelled"  #: the :class:`CancellationToken` fired


class CancellationToken:
    """Cooperative cancellation: the search polls the token each step.

    ``cancel()`` may be called from any thread (e.g. a signal handler or
    a supervising batch runner); the enumerator stops at the next loop
    iteration and returns a resumable partial result.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


@dataclass(frozen=True)
class EnumerationLimits:
    """Resource budgets guarding the search.

    Counting budgets are exact upper bounds: at most ``max_behaviors``
    behaviors are popped from the worklist and at most ``max_executions``
    distinct executions are kept.
    """

    max_behaviors: int = 1_000_000  #: distinct behavior states explored
    max_executions: int = 100_000  #: distinct completed executions kept
    max_nodes_per_thread: int = 64  #: dynamic-instruction bound (loops)
    deadline_seconds: float | None = None  #: wall-clock budget per call
    max_memory_mb: float | None = None  #: approximate worklist+dedup budget


@dataclass
class EnumerationStats:
    """Counters describing one enumeration run.

    Every behavior popped from the worklist (and fully processed) falls
    into exactly one bucket, so ``explored == completed + stuck +
    branched`` holds at all times; ``duplicates`` counts *children*
    dropped before ever entering the worklist.
    """

    explored: int = 0  #: behaviors popped from the worklist
    resolutions: int = 0  #: (load, candidate) branches attempted
    duplicates: int = 0  #: behaviors dropped by the canonical-key check
    rolled_back: int = 0  #: speculation/bypass branches discarded (§5.2)
    truncated: int = 0  #: branches dropped at the node limit
    stuck: int = 0  #: incomplete behaviors with no eligible load (bug guard)
    completed: int = 0  #: completed executions reached (pre-dedup)
    branched: int = 0  #: incomplete behaviors expanded by Load Resolution
    candidates_scanned: int = 0  #: visible stores examined for candidacy
    candidates_pruned: int = 0  #: of those, rejected by static alias facts

    def consistent(self) -> bool:
        """The pop-side accounting identity (see class docstring)."""
        return self.explored == self.completed + self.stuck + self.branched


#: Version stamped into every saved checkpoint.  Bump it whenever the
#: pickled layout changes incompatibly; :meth:`EnumerationCheckpoint.load`
#: rejects anything it does not positively recognize.
CHECKPOINT_FORMAT_VERSION = 1

#: Versions this build can still resume from.
SUPPORTED_CHECKPOINT_VERSIONS = frozenset({CHECKPOINT_FORMAT_VERSION})


@dataclass
class EnumerationCheckpoint:
    """A resumable snapshot of an interrupted search.

    Holds the remaining worklist plus the dedup set and the completed
    executions gathered so far; :func:`resume_enumeration` continues the
    search exactly where it stopped, so a resumed run reaches the same
    behavior set as an unbudgeted run would have.

    ``format_version`` stamps the on-disk layout: :meth:`load` refuses a
    checkpoint whose version is missing (pre-versioning file) or unknown
    (written by a newer build) with a clear :class:`EnumerationError`
    instead of resuming from undefined unpickle behavior.
    """

    program: Program
    model: MemoryModel
    limits: EnumerationLimits
    dedup: bool
    worklist: list[Execution]
    seen_states: set
    finished: dict
    stats: EnumerationStats
    dedup_exact: bool = False
    format_version: int = CHECKPOINT_FORMAT_VERSION

    def save(self, path: str | Path) -> None:
        """Serialize the checkpoint to ``path`` (pickle format).

        The write is atomic: the pickle goes to a temporary file in the
        same directory, then replaces ``path`` with :func:`os.replace` —
        a run killed mid-save can never leave a truncated checkpoint
        behind (at worst the previous complete one survives).
        """
        path = Path(path)
        directory = path.parent if str(path.parent) else Path(".")
        fd, tmp_name = tempfile.mkstemp(
            dir=directory, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(self, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @staticmethod
    def load(path: str | Path) -> "EnumerationCheckpoint":
        """Load a checkpoint previously written by :meth:`save`."""
        try:
            with open(path, "rb") as handle:
                checkpoint = pickle.load(handle)
        except (
            OSError,
            pickle.UnpicklingError,
            EOFError,
            # Corrupt/truncated streams surface as any of these from the
            # pickle VM, not just UnpicklingError:
            ValueError,
            AttributeError,
            ImportError,
            IndexError,
        ) as exc:
            raise EnumerationError(
                f"cannot load checkpoint {str(path)!r}: {exc}"
            ) from exc
        if not isinstance(checkpoint, EnumerationCheckpoint):
            raise EnumerationError(
                f"{str(path)!r} does not contain an enumeration checkpoint "
                f"(found {type(checkpoint).__name__})"
            )
        # The version must be present in the *instance* state: pickle
        # restores __dict__ directly, so an unversioned (pre-PR-6) file
        # would otherwise silently inherit the class default.
        version = vars(checkpoint).get("format_version")
        if version not in SUPPORTED_CHECKPOINT_VERSIONS:
            supported = ", ".join(str(v) for v in sorted(SUPPORTED_CHECKPOINT_VERSIONS))
            described = "no format version" if version is None else f"version {version!r}"
            raise EnumerationError(
                f"checkpoint {str(path)!r} has {described}; this build "
                f"supports version(s) {supported} — re-run the original "
                f"enumeration instead of resuming"
            )
        return checkpoint


@dataclass
class EnumerationResult:
    """All distinct behaviors of a program under a model.

    ``complete`` is False when a budget stopped the search early; then
    ``reason`` names the exhausted budget and ``checkpoint`` allows the
    search to be resumed.  The executions of a partial result are an
    honest subset of the full behavior set.
    """

    program: Program
    model: MemoryModel
    executions: list[Execution]
    stats: EnumerationStats = field(default_factory=EnumerationStats)
    complete: bool = True
    reason: ExhaustionReason | None = None
    checkpoint: EnumerationCheckpoint | None = None
    cached: bool = False  #: replayed from a :class:`BehaviorCache` hit

    def register_outcomes(self) -> frozenset[frozenset]:
        """The set of final-register outcomes over all executions.  Each
        outcome is a frozenset of ((thread, register), value) items."""
        return frozenset(
            frozenset(execution.final_registers().items()) for execution in self.executions
        )

    @property
    def status(self) -> str:
        """A short human-readable completeness label."""
        if self.complete:
            return "complete"
        reason = self.reason.value if self.reason is not None else "unknown"
        return f"partial ({reason})"

    def __len__(self) -> int:
        return len(self.executions)


# ----------------------------------------------------------------------
# approximate memory accounting (worklist + dedup set)

_EXEC_BASE_COST = 1024  #: bytes charged per queued behavior (object overhead)
_EXEC_NODE_COST = 512  #: bytes charged per graph node of a queued behavior


def _execution_cost(execution: Execution) -> int:
    return _EXEC_BASE_COST + _EXEC_NODE_COST * len(execution.graph.nodes)


def _key_cost(obj) -> int:
    """Approximate deep size of a canonical state key (nested tuples,
    frozensets and scalars only — no cycles by construction)."""
    size = sys.getsizeof(obj)
    if isinstance(obj, (tuple, frozenset)):
        size += sum(_key_cost(item) for item in obj)
    return size


class _MemoryAccountant:
    """Tracks an approximate byte total for the search's live state.

    Only active when ``max_memory_mb`` is set; otherwise every call is a
    no-op so the default fast path pays nothing.
    """

    def __init__(self, limit_mb: float | None) -> None:
        self.limit_bytes = None if limit_mb is None else int(limit_mb * 1024 * 1024)
        self.tracked = 0

    def charge_execution(self, execution: Execution) -> None:
        if self.limit_bytes is not None:
            self.tracked += _execution_cost(execution)

    def release_execution(self, execution: Execution) -> None:
        if self.limit_bytes is not None:
            self.tracked -= _execution_cost(execution)

    def charge_key(self, key) -> None:
        if self.limit_bytes is not None:
            self.tracked += _key_cost(key)

    @property
    def exceeded(self) -> bool:
        return self.limit_bytes is not None and self.tracked > self.limit_bytes


# ----------------------------------------------------------------------
# canonical-state dedup keys

#: Digest width for hashed dedup keys; 16 bytes keeps collision odds
#: negligible (~2⁻⁶⁴ at a billion states) at a fraction of a full key's
#: footprint.
_DIGEST_SIZE = 16


def _dedup_key(execution: Execution, exact: bool):
    """The ``seen_states`` membership key of a behavior.

    By default the full canonical :meth:`Execution.state_key` tuple is
    collapsed to a fixed-size ``blake2b`` digest — ~50 bytes in the set
    instead of a deeply nested tuple.  The key contains no sets, so its
    ``repr`` (and hence the digest) is deterministic across processes.

    A digest collision between two *distinct* states would silently drop
    a live behavior; with 128-bit digests this is vanishingly unlikely,
    but ``dedup_exact=True`` keeps the full tuples for debugging runs
    where that risk must be exactly zero.
    """
    key = execution.state_key()
    if exact:
        return key
    return hashlib.blake2b(repr(key).encode(), digest_size=_DIGEST_SIZE).digest()


# ----------------------------------------------------------------------
# the search driver


def enumerate_behaviors(
    program: Program,
    model: MemoryModel,
    limits: EnumerationLimits | None = None,
    dedup: bool = True,
    *,
    strict: bool = False,
    token: CancellationToken | None = None,
    facts: "StaticFacts | None" = None,
    dedup_exact: bool = False,
    parallel: "ParallelEnumerationConfig | None" = None,
    cache: "BehaviorCache | None" = None,
) -> EnumerationResult:
    """Enumerate all distinct executions of ``program`` under ``model``.

    ``dedup=False`` disables the canonical-state deduplication of
    in-flight behaviors (completed executions are still merged by their
    Load–Store graphs).  The behavior set is unchanged; only the explored
    state count grows — the ablation knob for §4.1's "We discard duplicate
    behaviors from B at each Load Resolution step to avoid wasting effort".

    When a budget in ``limits`` is exhausted the search stops and returns
    a partial :class:`EnumerationResult` (``complete=False``) carrying an
    :class:`ExhaustionReason` and a resumable checkpoint; ``strict=True``
    instead raises :class:`EnumerationError` as older versions did.
    ``token`` allows a supervisor to cancel the search cooperatively.

    ``facts`` (from :func:`repro.analysis.static.dataflow.compute_static_facts`)
    prunes the candidate-store scan and settles statically-certain alias
    pairs at generation time — a pure accelerator: the behavior set is
    byte-identical with and without it (TAB-DATAFLOW asserts this on the
    whole litmus library).

    ``dedup_exact=True`` stores full canonical state keys in the dedup
    set instead of 128-bit digests (see :func:`_dedup_key`).

    ``parallel`` switches to the sharded multi-process engine
    (:class:`ParallelEnumerationConfig`): a brief sequential warm-up
    expands the frontier, worker processes search disjoint shards of it,
    and the driver merges the completed Load–Store graphs — the final
    execution set and outcomes are identical to the sequential engine's,
    regardless of worker count.

    ``cache`` memoizes the call in a persistent
    :class:`~repro.cache.store.BehaviorCache`: the request's canonical
    :func:`~repro.core.serialization.behavior_cache_key` is looked up
    first (a hit returns instantly with ``result.cached = True``), and a
    fresh result is stored afterwards — but only when **complete**, so a
    budget-truncated search can never be replayed as the full behavior
    set.  A cache opened with ``validate=True`` re-enumerates every hit
    and asserts byte-identical ``loadstore_key`` sets, raising
    :class:`~repro.errors.CacheError` on disagreement.
    """
    limits = limits or EnumerationLimits()

    cache_key: bytes | None = None
    if cache is not None:
        cache_key = cache.key_for(program, model, limits)
        entry = cache.lookup(cache_key)
        if entry is not None:
            if cache.validate:
                _validate_cache_hit(cache, cache_key, entry, program, model, limits)
            return EnumerationResult(
                program=program,
                model=model,
                executions=list(entry.executions),
                stats=replace(entry.stats),
                complete=True,
                cached=True,
            )

    # Partial-search persistence: a budget-exhausted search checkpoints
    # its dedup set and worklist next to the cache, so a later call on
    # the same (program, model) — typically with a larger budget —
    # resumes instead of re-exploring every seen state.  Engaged only
    # for the plain configuration the checkpoint actually captures:
    # sequential, digest-dedup, no static-facts pruning.  Counting
    # budgets are cumulative across resumes, so a same-budget retry
    # stops exactly where a fresh run would — verdicts never depend on
    # whether a checkpoint was found.
    partial_eligible = (
        cache is not None
        and facts is None
        and parallel is None
        and dedup
        and not dedup_exact
    )
    checkpoint = None
    if partial_eligible:
        checkpoint = cache.lookup_partial(program, model)
        if checkpoint is not None and (
            not checkpoint.dedup
            or getattr(checkpoint, "dedup_exact", False)
            or checkpoint.model.name != model.name
        ):
            checkpoint = None

    if checkpoint is not None:
        result = resume_enumeration(checkpoint, limits, strict=strict, token=token)
    else:
        initial = Execution.initial(program, model, limits.max_nodes_per_thread, facts)
        worklist: list[Execution] = [initial]
        seen_states: set = {_dedup_key(initial, dedup_exact)}
        if parallel is not None:
            result = _parallel_search(
                program,
                model,
                limits,
                dedup,
                strict,
                token,
                worklist,
                seen_states,
                finished={},
                stats=EnumerationStats(),
                dedup_exact=dedup_exact,
                config=parallel,
            )
        else:
            result = _search(
                program,
                model,
                limits,
                dedup,
                strict,
                token,
                worklist,
                seen_states,
                finished={},
                stats=EnumerationStats(),
                dedup_exact=dedup_exact,
            )
    if cache is not None and cache_key is not None and result.complete:
        cache.store(
            cache_key, program, model, limits, result.executions, result.stats
        )
    if partial_eligible:
        if result.complete:
            cache.drop_partial(program, model)
        elif result.checkpoint is not None:
            cache.store_partial(program, model, result.checkpoint)
    return result


def _validate_cache_hit(cache, key, entry, program, model, limits) -> None:
    """The ``validate=True`` audit: re-run the search and require the hit
    to reproduce it byte-for-byte (by canonical ``loadstore_key``)."""
    fresh = enumerate_behaviors(program, model, limits)
    fresh_keys = sorted(repr(e.loadstore_key()) for e in fresh.executions)
    cached_keys = sorted(repr(e.loadstore_key()) for e in entry.executions)
    cache.counters.validations += 1
    if not fresh.complete or fresh_keys != cached_keys:
        cache.invalidate(key)
        raise CacheError(
            f"validated cache hit {key.hex()} disagrees with a fresh "
            f"enumeration of {program.name!r} under {model.name} "
            f"({len(cached_keys)} cached vs {len(fresh_keys)} fresh "
            f"executions); the entry has been invalidated"
        )


def resume_enumeration(
    checkpoint: EnumerationCheckpoint,
    limits: EnumerationLimits | None = None,
    *,
    strict: bool = False,
    token: CancellationToken | None = None,
    parallel: "ParallelEnumerationConfig | None" = None,
) -> EnumerationResult:
    """Continue an interrupted search from a checkpoint.

    ``limits`` replaces the checkpointed budgets (typically with bigger
    ones); omitted, the original limits apply — which stops immediately
    again if the same counting budget is still exhausted.  The deadline
    clock restarts at the time of this call.

    Counting budgets are cumulative across resumes: ``stats`` carries
    over, so ``max_behaviors=N`` bounds the *total* behaviors explored
    by the original run plus every resume.

    ``parallel`` resumes on the sharded multi-process engine — a
    sequential checkpoint can be resumed in parallel and vice versa
    (the work unit is the same worklist either way).
    """
    limits = limits or checkpoint.limits
    dedup_exact = getattr(checkpoint, "dedup_exact", False)
    if parallel is not None:
        return _parallel_search(
            checkpoint.program,
            checkpoint.model,
            limits,
            checkpoint.dedup,
            strict,
            token,
            list(checkpoint.worklist),
            set(checkpoint.seen_states),
            finished=dict(checkpoint.finished),
            stats=replace(checkpoint.stats),
            dedup_exact=dedup_exact,
            config=parallel,
        )
    return _search(
        checkpoint.program,
        checkpoint.model,
        limits,
        checkpoint.dedup,
        strict,
        token,
        list(checkpoint.worklist),
        set(checkpoint.seen_states),
        finished=dict(checkpoint.finished),
        stats=replace(checkpoint.stats),
        dedup_exact=dedup_exact,
    )


# ----------------------------------------------------------------------
# the parallel engine


@dataclass(frozen=True)
class ParallelEnumerationConfig:
    """Configuration for the sharded multi-process enumeration engine.

    The driver runs a brief sequential *warm-up* (a tiny search is
    cheaper to finish in-process than to ship to workers), then iterates
    **synchronized rounds**: the frontier is split round-robin into a
    *fixed* number of shards (independent of ``workers``, so the merged
    result is deterministic regardless of parallelism), worker processes
    run the ordinary ``_search`` loop on each shard for at most
    ``round_behaviors`` pops, and the driver merges the results —
    completed executions by Load–Store graph key, stats by summing, and
    the returned frontiers through the *global* dedup set.

    The round structure is what keeps parallel work close to sequential
    work: the Load-Resolution state space is a DAG, not a tree, so
    disjoint sub-searches rediscover each other's states.  Workers dedup
    only locally within a round; every newly discovered frontier state
    is checked against the global seen set at the round barrier, in
    shard-index order.  Duplicated exploration is thereby bounded by the
    round length instead of growing with the whole search.

    Budget semantics in parallel mode:

    * ``max_behaviors`` stays an exact upper bound — each round's pop
      quotas are divided across shards so they sum to the remainder;
    * ``max_executions`` is checked by the driver at round barriers (a
      round may briefly overshoot; the result is still an honest subset);
    * ``max_memory_mb`` is divided across ``workers`` (only that many
      shards are in flight at once);
    * ``deadline_seconds`` and the :class:`CancellationToken` bound wall
      clock: workers self-enforce the remaining deadline, and the driver
      polls the token between rounds and between shard completions,
      cancelling unstarted shards (their worklists return in the
      checkpoint).

    ``executor`` optionally reuses an existing
    :class:`concurrent.futures.ProcessPoolExecutor` across calls (batch
    sweeps amortize pool start-up); its worker count then takes
    precedence over ``workers``.
    """

    workers: int = 0  #: worker processes; 0 → ``os.cpu_count()``
    warmup_behaviors: int = 64  #: sequential frontier-expansion budget
    shards: int = 16  #: fixed shard count (determinism across worker counts)
    round_behaviors: int = 8  #: initial per-shard pop quota per round
    executor: object | None = field(default=None, compare=False, repr=False)

    def resolved_workers(self) -> int:
        return self.workers if self.workers > 0 else (os.cpu_count() or 1)


#: Merge order when several shards stop for different reasons: the most
#: urgent reason labels the merged result.
_REASON_PRIORITY = (
    ExhaustionReason.CANCELLED,
    ExhaustionReason.DEADLINE,
    ExhaustionReason.MEMORY,
    ExhaustionReason.EXECUTION_BUDGET,
    ExhaustionReason.BEHAVIOR_BUDGET,
)

_STAT_FIELDS = tuple(EnumerationStats.__dataclass_fields__)


def _merge_stats(into: EnumerationStats, extra: EnumerationStats) -> None:
    for name in _STAT_FIELDS:
        setattr(into, name, getattr(into, name) + getattr(extra, name))


def _run_shard(payload: tuple) -> tuple:
    """One worker's unit of work: an ordinary sequential search over a
    shard of the frontier, bounded by the round's pop quota.  Runs in a
    worker process (or inline when ``workers=1``); must stay a
    module-level function so it pickles.

    The worker seeds its dedup set from the driver's seen snapshot (so
    states merged in earlier rounds are never re-explored) but sees no
    updates from shards running concurrently; the driver reconciles the
    returned frontier against the live global seen set at the round
    barrier.  Returns ``(index, finished, seen_additions,
    leftover_originals, leftover_new, stats, reason)``;
    ``seen_additions`` are just the new digests (not the whole set) and
    ``leftover_new`` pairs each newly discovered frontier child with its
    dedup key so the driver does not recompute it.
    """
    (index, program, model, limits, dedup, dedup_exact, worklist, seen) = payload
    worklist = list(worklist)
    # Strong references to the dispatched items keep the id()-based
    # original/new classification below sound (no id reuse mid-round).
    originals = list(worklist)
    original_ids = {id(item) for item in originals}
    seen_states = set(seen)
    finished: dict = {}
    stats = EnumerationStats()
    result = _search(
        program,
        model,
        limits,
        dedup,
        False,
        None,
        worklist,
        seen_states,
        finished,
        stats,
        dedup_exact,
        warn_stuck=False,
    )
    leftover_originals = [item for item in worklist if id(item) in original_ids]
    leftover_new = [
        (_dedup_key(item, dedup_exact) if dedup else None, item)
        for item in worklist
        if id(item) not in original_ids
    ]
    del originals
    return (
        index,
        finished,
        seen_states.difference(seen),
        leftover_originals,
        leftover_new,
        stats,
        result.reason,
    )


def _warn_if_stuck(stats: EnumerationStats, program: Program, model: MemoryModel) -> None:
    if stats.stuck > 0:
        warnings.warn(
            StuckBehaviorWarning(
                f"{stats.stuck} behavior(s) of {program.name!r} under "
                f"{model.name} got stuck with no eligible load — this "
                f"indicates an enumeration-engine bug"
            ),
            stacklevel=3,
        )


def _parallel_search(
    program: Program,
    model: MemoryModel,
    limits: EnumerationLimits,
    dedup: bool,
    strict: bool,
    token: CancellationToken | None,
    worklist: list[Execution],
    seen_states: set,
    finished: dict,
    stats: EnumerationStats,
    dedup_exact: bool,
    config: ParallelEnumerationConfig,
) -> EnumerationResult:
    """The sharded multi-process search driver (see
    :class:`ParallelEnumerationConfig` for the phase structure)."""
    from concurrent.futures import ProcessPoolExecutor, wait as _wait_futures

    start = time.monotonic()
    workers = config.resolved_workers()
    nshards = max(config.shards, 1)

    # Phase 1: sequential warm-up.  The cap is expressed in cumulative
    # explored behaviors so resumed stats keep their meaning.
    warm_cap = min(limits.max_behaviors, stats.explored + max(config.warmup_behaviors, 1))
    warm = _search(
        program,
        model,
        replace(limits, max_behaviors=warm_cap),
        dedup,
        False,
        token,
        worklist,
        seen_states,
        finished,
        stats,
        dedup_exact,
        warn_stuck=False,
    )
    if warm.complete:
        _warn_if_stuck(stats, program, model)
        return warm
    warmup_only = warm.reason is ExhaustionReason.BEHAVIOR_BUDGET and (
        stats.explored < limits.max_behaviors
    )
    if not warmup_only:
        # A real budget (not the artificial warm-up cap) stopped the
        # search before any parallelism began.
        if strict:
            raise _strict_error(warm.reason, program, model, limits)
        _warn_if_stuck(stats, program, model)
        return _partial_result(
            program, model, limits, dedup, dedup_exact,
            list(worklist), seen_states, finished, stats, warm.reason,
        )

    # Phases 2+3: synchronized rounds.  Each round dispatches the tail
    # of the frontier (what depth-first search would pop next) across
    # the fixed shard count, bounds every shard to ``round_behaviors``
    # pops, and merges the returned frontiers through the global seen
    # set — the sequential engine's dedup applied at round boundaries.
    # The Load-Resolution state space is a DAG, so without the barrier
    # disjoint shards re-explore each other's states and parallel work
    # inflates several-fold; with it, duplication is bounded by the
    # round length.
    frontier = list(worklist)
    worklist.clear()
    per_round = max(config.round_behaviors, 1)
    inline = workers <= 1 and config.executor is None
    executor = None
    owns_executor = False
    if not inline:
        executor = config.executor or ProcessPoolExecutor(max_workers=workers)
        owns_executor = config.executor is None

    reason: ExhaustionReason | None = None
    token_fired = False
    try:
        while frontier:
            # Between-round budget checks: the driver owns the *real*
            # budgets; the per-shard budgets below are round slices.
            if token is not None and token.cancelled:
                reason = ExhaustionReason.CANCELLED
                break
            remaining = limits.max_behaviors - stats.explored
            if remaining <= 0:
                reason = ExhaustionReason.BEHAVIOR_BUDGET
                break
            if len(finished) >= limits.max_executions:
                reason = ExhaustionReason.EXECUTION_BUDGET
                break
            deadline_left: float | None = None
            if limits.deadline_seconds is not None:
                deadline_left = limits.deadline_seconds - (time.monotonic() - start)
                if deadline_left <= 0:
                    reason = ExhaustionReason.DEADLINE
                    break

            # Deterministic dispatch: take the frontier tail (what
            # depth-first search would pop next), split it across the
            # fixed shard count, park the rest in the driver (parked
            # items are never pickled).  The round length grows with the
            # search — a constant fraction of the behaviors explored so
            # far — so duplication stays a bounded fraction of the work
            # while the number of barriers (each re-ships the seen
            # snapshot) stays logarithmic.
            target = max(nshards * per_round, stats.explored // 4)
            take = min(len(frontier), target)
            parked, dispatch = frontier[:-take], frontier[-take:]
            # Contiguous blocks, not round-robin: adjacent frontier
            # items are usually siblings whose subtrees reconverge, so
            # keeping them in one shard lets that shard's local dedup
            # absorb the overlap instead of exploring it twice.
            chunk, rest = divmod(len(dispatch), nshards)
            shards = []
            position = 0
            for index in range(nshards):
                width = chunk + (1 if index < rest else 0)
                shards.append(dispatch[position:position + width])
                position += width
            live = [index for index, shard in enumerate(shards) if shard]
            # Pop quotas sum to at most the remaining global budget, so
            # ``max_behaviors`` stays an exact upper bound; a zero-quota
            # shard is not submitted (its items stay in the frontier).
            round_total = min(remaining, target)
            base_quota, spare = divmod(round_total, len(live))
            seen_snapshot = frozenset(seen_states)
            payloads = []
            for rank, index in enumerate(live):
                quota = base_quota + (1 if rank < spare else 0)
                if quota == 0:
                    continue
                shard_limits = replace(
                    limits,
                    max_behaviors=quota,
                    deadline_seconds=deadline_left,
                    max_memory_mb=(
                        limits.max_memory_mb / workers
                        if limits.max_memory_mb is not None
                        else None
                    ),
                )
                payloads.append(
                    (index, program, model, shard_limits, dedup, dedup_exact,
                     shards[index], seen_snapshot)
                )

            results: list[tuple | None] = [None] * nshards
            if inline:
                for payload in payloads:
                    if token is not None and token.cancelled:
                        token_fired = True
                        break
                    outcome = _run_shard(payload)
                    results[outcome[0]] = outcome
            else:
                futures = {
                    executor.submit(_run_shard, payload): payload[0]
                    for payload in payloads
                }
                pending = set(futures)
                while pending:
                    done, pending = _wait_futures(pending, timeout=0.05)
                    for future in done:
                        if not future.cancelled():
                            outcome = future.result()
                            results[outcome[0]] = outcome
                    if pending and token is not None and token.cancelled:
                        token_fired = True
                        for future in pending:
                            future.cancel()
                        # Already-running shards finish (bounded by their
                        # round quotas); cancelled ones return their
                        # items through the merged checkpoint.
                        done, _ = _wait_futures(pending)
                        for future in done:
                            if not future.cancelled():
                                outcome = future.result()
                                results[outcome[0]] = outcome
                        pending = set()

            # Merge in shard-index order (deterministic representative
            # choice).  Original frontier items are kept unconditionally
            # (their keys entered the seen set when first admitted);
            # newly discovered children pass through the global dedup.
            next_frontier: list[Execution] = list(parked)
            shard_reasons: list[ExhaustionReason] = []
            for index, shard in enumerate(shards):
                outcome = results[index]
                if outcome is None:
                    # Never ran (cancelled or zero quota).
                    next_frontier.extend(shard)
                    continue
                (_, shard_finished, seen_additions, leftover_originals,
                 leftover_new, shard_stats, shard_reason) = outcome
                for key, execution in shard_finished.items():
                    finished.setdefault(key, execution)
                _merge_stats(stats, shard_stats)
                next_frontier.extend(leftover_originals)
                for key, child in leftover_new:
                    if dedup and key in seen_states:
                        stats.duplicates += 1
                        continue
                    if dedup:
                        seen_states.add(key)
                    next_frontier.append(child)
                if dedup:
                    # Keys of states the shard explored *within* the
                    # round: recording them stops later rounds from
                    # re-exploring the same states via other branches.
                    seen_states |= seen_additions
                if (
                    shard_reason is not None
                    and shard_reason is not ExhaustionReason.BEHAVIOR_BUDGET
                ):
                    # A shard's behavior budget is the artificial round
                    # quota (the loop continues); anything else is a
                    # real fault or limit.
                    shard_reasons.append(shard_reason)

            frontier = next_frontier
            if token_fired:
                reason = ExhaustionReason.CANCELLED
                break
            if shard_reasons:
                reason = next(r for r in _REASON_PRIORITY if r in shard_reasons)
                break
    finally:
        if owns_executor:
            executor.shutdown(wait=True)

    _warn_if_stuck(stats, program, model)
    if reason is not None:
        if strict:
            raise _strict_error(reason, program, model, limits)
        return _partial_result(
            program, model, limits, dedup, dedup_exact,
            frontier, seen_states, finished, stats, reason,
        )
    executions = sorted(finished.values(), key=lambda e: repr(e.loadstore_key()))
    return EnumerationResult(program, model, executions, stats)


def _partial_result(
    program: Program,
    model: MemoryModel,
    limits: EnumerationLimits,
    dedup: bool,
    dedup_exact: bool,
    worklist: list[Execution],
    seen_states: set,
    finished: dict,
    stats: EnumerationStats,
    reason: ExhaustionReason,
) -> EnumerationResult:
    """Assemble a resumable partial result from merged parallel state."""
    checkpoint = EnumerationCheckpoint(
        program=program,
        model=model,
        limits=limits,
        dedup=dedup,
        worklist=list(worklist),
        seen_states=set(seen_states),
        finished=dict(finished),
        stats=replace(stats),
        dedup_exact=dedup_exact,
    )
    executions = sorted(finished.values(), key=lambda e: repr(e.loadstore_key()))
    return EnumerationResult(
        program, model, executions, stats, False, reason, checkpoint
    )


def _search(
    program: Program,
    model: MemoryModel,
    limits: EnumerationLimits,
    dedup: bool,
    strict: bool,
    token: CancellationToken | None,
    worklist: list[Execution],
    seen_states: set,
    finished: dict,
    stats: EnumerationStats,
    dedup_exact: bool = False,
    warn_stuck: bool = True,
) -> EnumerationResult:
    start = time.monotonic()
    accountant = _MemoryAccountant(limits.max_memory_mb)
    if accountant.limit_bytes is not None:
        for queued in worklist:
            accountant.charge_execution(queued)
        for key in seen_states:
            accountant.charge_key(key)

    reason: ExhaustionReason | None = None
    while worklist:
        reason = _budget_exhausted(limits, stats, finished, start, accountant, token)
        if reason is not None:
            if strict:
                raise _strict_error(reason, program, model, limits)
            break

        behavior = worklist.pop()
        accountant.release_execution(behavior)
        stats.explored += 1

        if behavior.completed():
            key = behavior.loadstore_key()
            if key not in finished and len(finished) >= limits.max_executions:
                # Keeping this execution would exceed the budget: requeue
                # the behavior (and undo its pop accounting) so a resume
                # under a bigger budget sees it again.
                worklist.append(behavior)
                accountant.charge_execution(behavior)
                stats.explored -= 1
                reason = ExhaustionReason.EXECUTION_BUDGET
                if strict:
                    raise _strict_error(reason, program, model, limits)
                break
            stats.completed += 1
            finished.setdefault(key, behavior)
            continue

        eligible = behavior.eligible_loads()
        if not eligible:
            stats.stuck += 1
            continue
        stats.branched += 1

        reason = _branch(
            behavior, eligible, dedup, worklist, seen_states, stats, accountant,
            dedup_exact,
        )
        if reason is not None:
            # The behavior was only partly expanded: requeue it so the
            # remaining branches are regenerated on resume (already-seen
            # children dedup away), and undo its pop accounting.
            worklist.append(behavior)
            accountant.charge_execution(behavior)
            stats.explored -= 1
            stats.branched -= 1
            if strict:
                raise _strict_error(reason, program, model, limits)
            break

    if warn_stuck and stats.stuck > 0:
        warnings.warn(
            StuckBehaviorWarning(
                f"{stats.stuck} behavior(s) of {program.name!r} under "
                f"{model.name} got stuck with no eligible load — this "
                f"indicates an enumeration-engine bug"
            ),
            stacklevel=2,
        )

    executions = sorted(finished.values(), key=lambda e: repr(e.loadstore_key()))
    complete = reason is None
    checkpoint = None
    if not complete:
        checkpoint = EnumerationCheckpoint(
            program=program,
            model=model,
            limits=limits,
            dedup=dedup,
            worklist=list(worklist),
            seen_states=set(seen_states),
            finished=dict(finished),
            stats=replace(stats),
            dedup_exact=dedup_exact,
        )
    return EnumerationResult(
        program, model, executions, stats, complete, reason, checkpoint
    )


def _branch(
    behavior: Execution,
    eligible: list,
    dedup: bool,
    worklist: list[Execution],
    seen_states: set,
    stats: EnumerationStats,
    accountant: _MemoryAccountant,
    dedup_exact: bool = False,
) -> ExhaustionReason | None:
    """Expand one behavior by Load Resolution.  Returns an exhaustion
    reason when a fault forces the search to degrade, else None."""
    for load in eligible:
        for store in candidate_stores(behavior, load, stats):
            stats.resolutions += 1
            try:
                child = behavior.copy()
                child.resolve_load(load.nid, store.nid)
            except (CycleError, AtomicityViolation):
                stats.rolled_back += 1
                continue
            except EnumerationError:
                stats.truncated += 1
                continue
            except MemoryError:
                # Allocation pressure (real or injected): stop cleanly
                # with whatever has been gathered so far.
                return ExhaustionReason.MEMORY
            if dedup:
                key = _dedup_key(child, dedup_exact)
                if key in seen_states:
                    stats.duplicates += 1
                    continue
                seen_states.add(key)
                accountant.charge_key(key)
            worklist.append(child)
            accountant.charge_execution(child)
    return None


def _budget_exhausted(
    limits: EnumerationLimits,
    stats: EnumerationStats,
    finished: dict,
    start: float,
    accountant: _MemoryAccountant,
    token: CancellationToken | None,
) -> ExhaustionReason | None:
    """The pre-pop budget check, cheapest test first."""
    if token is not None and token.cancelled:
        return ExhaustionReason.CANCELLED
    if stats.explored >= limits.max_behaviors:
        return ExhaustionReason.BEHAVIOR_BUDGET
    if accountant.exceeded:
        return ExhaustionReason.MEMORY
    if (
        limits.deadline_seconds is not None
        and time.monotonic() - start >= limits.deadline_seconds
    ):
        return ExhaustionReason.DEADLINE
    return None


def _strict_error(
    reason: ExhaustionReason,
    program: Program,
    model: MemoryModel,
    limits: EnumerationLimits,
) -> EnumerationError:
    descriptions = {
        ExhaustionReason.BEHAVIOR_BUDGET: (
            f"exceeded {limits.max_behaviors} explored behaviors"
        ),
        ExhaustionReason.EXECUTION_BUDGET: (
            f"exceeded {limits.max_executions} distinct executions"
        ),
        ExhaustionReason.DEADLINE: (
            f"exceeded the {limits.deadline_seconds}s deadline"
        ),
        ExhaustionReason.MEMORY: (
            f"exceeded the {limits.max_memory_mb} MB memory budget"
            if limits.max_memory_mb is not None
            else "ran out of memory during Load Resolution"
        ),
        ExhaustionReason.CANCELLED: "cancelled by the caller",
    }
    return EnumerationError(
        f"{descriptions[reason]} for {program.name!r} under {model.name}",
        reason=reason,
    )
