"""Enumerating program behaviors (paper Section 4).

The driver maintains a set of current behaviors ``B``; at each step one
behavior is refined: graph generation and dataflow execution run to a
fixpoint (inside :meth:`Execution.stabilize`), then **Load Resolution**
branches the behavior — for every eligible unresolved load ``L`` and
every ``S ∈ candidates(L)``, a copy is created with ``source(L) = S``.

"Load Resolution is the only place where our enumeration procedure may
duplicate effort" — duplicates are discarded by comparing canonical
behavior keys (and completed executions by their Load–Store graphs).

Speculative executions whose deferred alias edges or atomicity closure
become inconsistent are discarded: in an enumerative setting, a rolled
back and re-tried load is exactly some other branch of the search.

Resilience
----------

The behavior set grows combinatorially with threads and loads, so the
search is guarded by :class:`EnumerationLimits` budgets: behavior and
execution counts, a wall-clock deadline, an approximate memory budget
over the worklist and dedup set, and a cooperative
:class:`CancellationToken`.  By default an exhausted budget **degrades
gracefully**: the partial result is returned with ``complete=False``, a
populated :class:`ExhaustionReason`, and an
:class:`EnumerationCheckpoint` from which the search can be resumed
under a bigger budget (:func:`resume_enumeration`).  Passing
``strict=True`` restores the historical raise-on-limit behavior.
"""

from __future__ import annotations

import enum
import pickle
import sys
import threading
import time
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import (
    AtomicityViolation,
    CycleError,
    EnumerationError,
    StuckBehaviorWarning,
)
from repro.core.candidates import candidate_stores
from repro.core.execution import Execution
from repro.isa.program import Program
from repro.models.base import MemoryModel

if TYPE_CHECKING:
    from repro.analysis.static.dataflow import StaticFacts


class ExhaustionReason(enum.Enum):
    """Why an enumeration stopped before exhausting the behavior set."""

    BEHAVIOR_BUDGET = "behavior-budget"  #: ``max_behaviors`` explored
    EXECUTION_BUDGET = "execution-budget"  #: ``max_executions`` kept
    DEADLINE = "deadline"  #: ``deadline_seconds`` of wall clock elapsed
    MEMORY = "memory"  #: ``max_memory_mb`` accounting budget exceeded
    CANCELLED = "cancelled"  #: the :class:`CancellationToken` fired


class CancellationToken:
    """Cooperative cancellation: the search polls the token each step.

    ``cancel()`` may be called from any thread (e.g. a signal handler or
    a supervising batch runner); the enumerator stops at the next loop
    iteration and returns a resumable partial result.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


@dataclass(frozen=True)
class EnumerationLimits:
    """Resource budgets guarding the search.

    Counting budgets are exact upper bounds: at most ``max_behaviors``
    behaviors are popped from the worklist and at most ``max_executions``
    distinct executions are kept.
    """

    max_behaviors: int = 1_000_000  #: distinct behavior states explored
    max_executions: int = 100_000  #: distinct completed executions kept
    max_nodes_per_thread: int = 64  #: dynamic-instruction bound (loops)
    deadline_seconds: float | None = None  #: wall-clock budget per call
    max_memory_mb: float | None = None  #: approximate worklist+dedup budget


@dataclass
class EnumerationStats:
    """Counters describing one enumeration run.

    Every behavior popped from the worklist (and fully processed) falls
    into exactly one bucket, so ``explored == completed + stuck +
    branched`` holds at all times; ``duplicates`` counts *children*
    dropped before ever entering the worklist.
    """

    explored: int = 0  #: behaviors popped from the worklist
    resolutions: int = 0  #: (load, candidate) branches attempted
    duplicates: int = 0  #: behaviors dropped by the canonical-key check
    rolled_back: int = 0  #: speculation/bypass branches discarded (§5.2)
    truncated: int = 0  #: branches dropped at the node limit
    stuck: int = 0  #: incomplete behaviors with no eligible load (bug guard)
    completed: int = 0  #: completed executions reached (pre-dedup)
    branched: int = 0  #: incomplete behaviors expanded by Load Resolution
    candidates_scanned: int = 0  #: visible stores examined for candidacy
    candidates_pruned: int = 0  #: of those, rejected by static alias facts

    def consistent(self) -> bool:
        """The pop-side accounting identity (see class docstring)."""
        return self.explored == self.completed + self.stuck + self.branched


@dataclass
class EnumerationCheckpoint:
    """A resumable snapshot of an interrupted search.

    Holds the remaining worklist plus the dedup set and the completed
    executions gathered so far; :func:`resume_enumeration` continues the
    search exactly where it stopped, so a resumed run reaches the same
    behavior set as an unbudgeted run would have.
    """

    program: Program
    model: MemoryModel
    limits: EnumerationLimits
    dedup: bool
    worklist: list[Execution]
    seen_states: set
    finished: dict
    stats: EnumerationStats

    def save(self, path: str | Path) -> None:
        """Serialize the checkpoint to ``path`` (pickle format)."""
        with open(path, "wb") as handle:
            pickle.dump(self, handle)

    @staticmethod
    def load(path: str | Path) -> "EnumerationCheckpoint":
        """Load a checkpoint previously written by :meth:`save`."""
        try:
            with open(path, "rb") as handle:
                checkpoint = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise EnumerationError(
                f"cannot load checkpoint {str(path)!r}: {exc}"
            ) from exc
        if not isinstance(checkpoint, EnumerationCheckpoint):
            raise EnumerationError(
                f"{str(path)!r} does not contain an enumeration checkpoint "
                f"(found {type(checkpoint).__name__})"
            )
        return checkpoint


@dataclass
class EnumerationResult:
    """All distinct behaviors of a program under a model.

    ``complete`` is False when a budget stopped the search early; then
    ``reason`` names the exhausted budget and ``checkpoint`` allows the
    search to be resumed.  The executions of a partial result are an
    honest subset of the full behavior set.
    """

    program: Program
    model: MemoryModel
    executions: list[Execution]
    stats: EnumerationStats = field(default_factory=EnumerationStats)
    complete: bool = True
    reason: ExhaustionReason | None = None
    checkpoint: EnumerationCheckpoint | None = None

    def register_outcomes(self) -> frozenset[frozenset]:
        """The set of final-register outcomes over all executions.  Each
        outcome is a frozenset of ((thread, register), value) items."""
        return frozenset(
            frozenset(execution.final_registers().items()) for execution in self.executions
        )

    @property
    def status(self) -> str:
        """A short human-readable completeness label."""
        if self.complete:
            return "complete"
        reason = self.reason.value if self.reason is not None else "unknown"
        return f"partial ({reason})"

    def __len__(self) -> int:
        return len(self.executions)


# ----------------------------------------------------------------------
# approximate memory accounting (worklist + dedup set)

_EXEC_BASE_COST = 1024  #: bytes charged per queued behavior (object overhead)
_EXEC_NODE_COST = 512  #: bytes charged per graph node of a queued behavior


def _execution_cost(execution: Execution) -> int:
    return _EXEC_BASE_COST + _EXEC_NODE_COST * len(execution.graph.nodes)


def _key_cost(obj) -> int:
    """Approximate deep size of a canonical state key (nested tuples,
    frozensets and scalars only — no cycles by construction)."""
    size = sys.getsizeof(obj)
    if isinstance(obj, (tuple, frozenset)):
        size += sum(_key_cost(item) for item in obj)
    return size


class _MemoryAccountant:
    """Tracks an approximate byte total for the search's live state.

    Only active when ``max_memory_mb`` is set; otherwise every call is a
    no-op so the default fast path pays nothing.
    """

    def __init__(self, limit_mb: float | None) -> None:
        self.limit_bytes = None if limit_mb is None else int(limit_mb * 1024 * 1024)
        self.tracked = 0

    def charge_execution(self, execution: Execution) -> None:
        if self.limit_bytes is not None:
            self.tracked += _execution_cost(execution)

    def release_execution(self, execution: Execution) -> None:
        if self.limit_bytes is not None:
            self.tracked -= _execution_cost(execution)

    def charge_key(self, key) -> None:
        if self.limit_bytes is not None:
            self.tracked += _key_cost(key)

    @property
    def exceeded(self) -> bool:
        return self.limit_bytes is not None and self.tracked > self.limit_bytes


# ----------------------------------------------------------------------
# the search driver


def enumerate_behaviors(
    program: Program,
    model: MemoryModel,
    limits: EnumerationLimits | None = None,
    dedup: bool = True,
    *,
    strict: bool = False,
    token: CancellationToken | None = None,
    facts: "StaticFacts | None" = None,
) -> EnumerationResult:
    """Enumerate all distinct executions of ``program`` under ``model``.

    ``dedup=False`` disables the canonical-state deduplication of
    in-flight behaviors (completed executions are still merged by their
    Load–Store graphs).  The behavior set is unchanged; only the explored
    state count grows — the ablation knob for §4.1's "We discard duplicate
    behaviors from B at each Load Resolution step to avoid wasting effort".

    When a budget in ``limits`` is exhausted the search stops and returns
    a partial :class:`EnumerationResult` (``complete=False``) carrying an
    :class:`ExhaustionReason` and a resumable checkpoint; ``strict=True``
    instead raises :class:`EnumerationError` as older versions did.
    ``token`` allows a supervisor to cancel the search cooperatively.

    ``facts`` (from :func:`repro.analysis.static.dataflow.compute_static_facts`)
    prunes the candidate-store scan and settles statically-certain alias
    pairs at generation time — a pure accelerator: the behavior set is
    byte-identical with and without it (TAB-DATAFLOW asserts this on the
    whole litmus library).
    """
    limits = limits or EnumerationLimits()

    initial = Execution.initial(program, model, limits.max_nodes_per_thread, facts)
    worklist: list[Execution] = [initial]
    seen_states: set = {initial.state_key()}
    return _search(
        program,
        model,
        limits,
        dedup,
        strict,
        token,
        worklist,
        seen_states,
        finished={},
        stats=EnumerationStats(),
    )


def resume_enumeration(
    checkpoint: EnumerationCheckpoint,
    limits: EnumerationLimits | None = None,
    *,
    strict: bool = False,
    token: CancellationToken | None = None,
) -> EnumerationResult:
    """Continue an interrupted search from a checkpoint.

    ``limits`` replaces the checkpointed budgets (typically with bigger
    ones); omitted, the original limits apply — which stops immediately
    again if the same counting budget is still exhausted.  The deadline
    clock restarts at the time of this call.

    Counting budgets are cumulative across resumes: ``stats`` carries
    over, so ``max_behaviors=N`` bounds the *total* behaviors explored
    by the original run plus every resume.
    """
    limits = limits or checkpoint.limits
    return _search(
        checkpoint.program,
        checkpoint.model,
        limits,
        checkpoint.dedup,
        strict,
        token,
        list(checkpoint.worklist),
        set(checkpoint.seen_states),
        finished=dict(checkpoint.finished),
        stats=replace(checkpoint.stats),
    )


def _search(
    program: Program,
    model: MemoryModel,
    limits: EnumerationLimits,
    dedup: bool,
    strict: bool,
    token: CancellationToken | None,
    worklist: list[Execution],
    seen_states: set,
    finished: dict,
    stats: EnumerationStats,
) -> EnumerationResult:
    start = time.monotonic()
    accountant = _MemoryAccountant(limits.max_memory_mb)
    if accountant.limit_bytes is not None:
        for queued in worklist:
            accountant.charge_execution(queued)
        for key in seen_states:
            accountant.charge_key(key)

    reason: ExhaustionReason | None = None
    while worklist:
        reason = _budget_exhausted(limits, stats, finished, start, accountant, token)
        if reason is not None:
            if strict:
                raise _strict_error(reason, program, model, limits)
            break

        behavior = worklist.pop()
        accountant.release_execution(behavior)
        stats.explored += 1

        if behavior.completed():
            key = behavior.loadstore_key()
            if key not in finished and len(finished) >= limits.max_executions:
                # Keeping this execution would exceed the budget: requeue
                # the behavior (and undo its pop accounting) so a resume
                # under a bigger budget sees it again.
                worklist.append(behavior)
                accountant.charge_execution(behavior)
                stats.explored -= 1
                reason = ExhaustionReason.EXECUTION_BUDGET
                if strict:
                    raise _strict_error(reason, program, model, limits)
                break
            stats.completed += 1
            finished.setdefault(key, behavior)
            continue

        eligible = behavior.eligible_loads()
        if not eligible:
            stats.stuck += 1
            continue
        stats.branched += 1

        reason = _branch(
            behavior, eligible, dedup, worklist, seen_states, stats, accountant
        )
        if reason is not None:
            # The behavior was only partly expanded: requeue it so the
            # remaining branches are regenerated on resume (already-seen
            # children dedup away), and undo its pop accounting.
            worklist.append(behavior)
            accountant.charge_execution(behavior)
            stats.explored -= 1
            stats.branched -= 1
            if strict:
                raise _strict_error(reason, program, model, limits)
            break

    if stats.stuck > 0:
        warnings.warn(
            StuckBehaviorWarning(
                f"{stats.stuck} behavior(s) of {program.name!r} under "
                f"{model.name} got stuck with no eligible load — this "
                f"indicates an enumeration-engine bug"
            ),
            stacklevel=2,
        )

    executions = sorted(finished.values(), key=lambda e: repr(e.loadstore_key()))
    complete = reason is None
    checkpoint = None
    if not complete:
        checkpoint = EnumerationCheckpoint(
            program=program,
            model=model,
            limits=limits,
            dedup=dedup,
            worklist=list(worklist),
            seen_states=set(seen_states),
            finished=dict(finished),
            stats=replace(stats),
        )
    return EnumerationResult(
        program, model, executions, stats, complete, reason, checkpoint
    )


def _branch(
    behavior: Execution,
    eligible: list,
    dedup: bool,
    worklist: list[Execution],
    seen_states: set,
    stats: EnumerationStats,
    accountant: _MemoryAccountant,
) -> ExhaustionReason | None:
    """Expand one behavior by Load Resolution.  Returns an exhaustion
    reason when a fault forces the search to degrade, else None."""
    for load in eligible:
        for store in candidate_stores(behavior, load, stats):
            stats.resolutions += 1
            try:
                child = behavior.copy()
                child.resolve_load(load.nid, store.nid)
            except (CycleError, AtomicityViolation):
                stats.rolled_back += 1
                continue
            except EnumerationError:
                stats.truncated += 1
                continue
            except MemoryError:
                # Allocation pressure (real or injected): stop cleanly
                # with whatever has been gathered so far.
                return ExhaustionReason.MEMORY
            if dedup:
                key = child.state_key()
                if key in seen_states:
                    stats.duplicates += 1
                    continue
                seen_states.add(key)
                accountant.charge_key(key)
            worklist.append(child)
            accountant.charge_execution(child)
    return None


def _budget_exhausted(
    limits: EnumerationLimits,
    stats: EnumerationStats,
    finished: dict,
    start: float,
    accountant: _MemoryAccountant,
    token: CancellationToken | None,
) -> ExhaustionReason | None:
    """The pre-pop budget check, cheapest test first."""
    if token is not None and token.cancelled:
        return ExhaustionReason.CANCELLED
    if stats.explored >= limits.max_behaviors:
        return ExhaustionReason.BEHAVIOR_BUDGET
    if accountant.exceeded:
        return ExhaustionReason.MEMORY
    if (
        limits.deadline_seconds is not None
        and time.monotonic() - start >= limits.deadline_seconds
    ):
        return ExhaustionReason.DEADLINE
    return None


def _strict_error(
    reason: ExhaustionReason,
    program: Program,
    model: MemoryModel,
    limits: EnumerationLimits,
) -> EnumerationError:
    descriptions = {
        ExhaustionReason.BEHAVIOR_BUDGET: (
            f"exceeded {limits.max_behaviors} explored behaviors"
        ),
        ExhaustionReason.EXECUTION_BUDGET: (
            f"exceeded {limits.max_executions} distinct executions"
        ),
        ExhaustionReason.DEADLINE: (
            f"exceeded the {limits.deadline_seconds}s deadline"
        ),
        ExhaustionReason.MEMORY: (
            f"exceeded the {limits.max_memory_mb} MB memory budget"
            if limits.max_memory_mb is not None
            else "ran out of memory during Load Resolution"
        ),
        ExhaustionReason.CANCELLED: "cancelled by the caller",
    }
    return EnumerationError(
        f"{descriptions[reason]} for {program.name!r} under {model.name}",
        reason=reason,
    )
