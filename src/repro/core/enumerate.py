"""Enumerating program behaviors (paper Section 4).

The driver maintains a set of current behaviors ``B``; at each step one
behavior is refined: graph generation and dataflow execution run to a
fixpoint (inside :meth:`Execution.stabilize`), then **Load Resolution**
branches the behavior — for every eligible unresolved load ``L`` and
every ``S ∈ candidates(L)``, a copy is created with ``source(L) = S``.

"Load Resolution is the only place where our enumeration procedure may
duplicate effort" — duplicates are discarded by comparing canonical
behavior keys (and completed executions by their Load–Store graphs).

Speculative executions whose deferred alias edges or atomicity closure
become inconsistent are discarded: in an enumerative setting, a rolled
back and re-tried load is exactly some other branch of the search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AtomicityViolation, CycleError, EnumerationError
from repro.core.candidates import candidate_stores
from repro.core.execution import Execution
from repro.isa.program import Program
from repro.models.base import MemoryModel


@dataclass(frozen=True)
class EnumerationLimits:
    """Resource limits guarding the search."""

    max_behaviors: int = 1_000_000  #: distinct behavior states explored
    max_executions: int = 100_000  #: distinct completed executions kept
    max_nodes_per_thread: int = 64  #: dynamic-instruction bound (loops)


@dataclass
class EnumerationStats:
    """Counters describing one enumeration run."""

    explored: int = 0  #: behaviors popped from the worklist
    resolutions: int = 0  #: (load, candidate) branches attempted
    duplicates: int = 0  #: behaviors dropped by the canonical-key check
    rolled_back: int = 0  #: speculation/bypass branches discarded (§5.2)
    truncated: int = 0  #: branches dropped at the node limit
    stuck: int = 0  #: incomplete behaviors with no eligible load (bug guard)
    completed: int = 0  #: completed executions reached (pre-dedup)


@dataclass
class EnumerationResult:
    """All distinct behaviors of a program under a model."""

    program: Program
    model: MemoryModel
    executions: list[Execution]
    stats: EnumerationStats = field(default_factory=EnumerationStats)

    def register_outcomes(self) -> frozenset[frozenset]:
        """The set of final-register outcomes over all executions.  Each
        outcome is a frozenset of ((thread, register), value) items."""
        return frozenset(
            frozenset(execution.final_registers().items()) for execution in self.executions
        )

    def __len__(self) -> int:
        return len(self.executions)


def enumerate_behaviors(
    program: Program,
    model: MemoryModel,
    limits: EnumerationLimits | None = None,
    dedup: bool = True,
) -> EnumerationResult:
    """Enumerate all distinct executions of ``program`` under ``model``.

    ``dedup=False`` disables the canonical-state deduplication of
    in-flight behaviors (completed executions are still merged by their
    Load–Store graphs).  The behavior set is unchanged; only the explored
    state count grows — the ablation knob for §4.1's "We discard duplicate
    behaviors from B at each Load Resolution step to avoid wasting effort".
    """
    limits = limits or EnumerationLimits()
    stats = EnumerationStats()

    initial = Execution.initial(program, model, limits.max_nodes_per_thread)
    worklist: list[Execution] = [initial]
    seen_states: set = {initial.state_key()}
    finished: dict = {}

    while worklist:
        behavior = worklist.pop()
        stats.explored += 1
        if stats.explored > limits.max_behaviors:
            raise EnumerationError(
                f"exceeded {limits.max_behaviors} explored behaviors for "
                f"{program.name!r} under {model.name}"
            )

        if behavior.completed():
            stats.completed += 1
            finished.setdefault(behavior.loadstore_key(), behavior)
            if len(finished) > limits.max_executions:
                raise EnumerationError(
                    f"exceeded {limits.max_executions} distinct executions for "
                    f"{program.name!r} under {model.name}"
                )
            continue

        eligible = behavior.eligible_loads()
        if not eligible:
            stats.stuck += 1
            continue

        for load in eligible:
            for store in candidate_stores(behavior, load):
                stats.resolutions += 1
                child = behavior.copy()
                try:
                    child.resolve_load(load.nid, store.nid)
                except (CycleError, AtomicityViolation):
                    stats.rolled_back += 1
                    continue
                except EnumerationError:
                    stats.truncated += 1
                    continue
                if dedup:
                    key = child.state_key()
                    if key in seen_states:
                        stats.duplicates += 1
                        continue
                    seen_states.add(key)
                worklist.append(child)

    executions = sorted(finished.values(), key=lambda e: repr(e.loadstore_key()))
    return EnumerationResult(program, model, executions, stats)
