"""repro — an executable reproduction of

    "Memory Model = Instruction Reordering + Store Atomicity"
    Arvind and Jan-Willem Maessen, ISCA 2006.

The package mechanizes the paper's framework: memory models are defined
by thread-local instruction-reordering axioms plus the Store Atomicity
property, program executions are partially ordered graphs, and all
behaviors of a multithreaded program are enumerable under any
store-atomic model (plus the paper's non-atomic TSO extension).

Quickstart::

    from repro import ProgramBuilder, enumerate_behaviors, get_model

    builder = ProgramBuilder("SB")
    p0 = builder.thread("P0"); p0.store("x", 1); p0.load("r1", "y")
    p1 = builder.thread("P1"); p1.store("y", 1); p1.load("r2", "x")
    result = enumerate_behaviors(builder.build(), get_model("weak"))
    print(len(result), "distinct executions")
"""

from repro.core import (
    CancellationToken,
    EnumerationCheckpoint,
    EnumerationLimits,
    EnumerationResult,
    ExhaustionReason,
    Execution,
    ParallelEnumerationConfig,
    check_store_atomicity,
    close_store_atomicity,
    enumerate_behaviors,
    find_serialization,
    is_serializable,
    resume_enumeration,
)
from repro.isa import Program, ProgramBuilder, Thread, assemble, assemble_program
from repro.models import (
    NAIVE_TSO,
    PSO,
    SC,
    TSO,
    WEAK,
    WEAK_CORR,
    WEAK_SPEC,
    MemoryModel,
    available_models,
    get_model,
)

__version__ = "1.0.0"

__all__ = [
    "CancellationToken",
    "EnumerationCheckpoint",
    "EnumerationLimits",
    "EnumerationResult",
    "ExhaustionReason",
    "Execution",
    "ParallelEnumerationConfig",
    "resume_enumeration",
    "check_store_atomicity",
    "close_store_atomicity",
    "enumerate_behaviors",
    "find_serialization",
    "is_serializable",
    "Program",
    "ProgramBuilder",
    "Thread",
    "assemble",
    "assemble_program",
    "MemoryModel",
    "SC",
    "TSO",
    "NAIVE_TSO",
    "PSO",
    "WEAK",
    "WEAK_SPEC",
    "WEAK_CORR",
    "available_models",
    "get_model",
    "__version__",
]
