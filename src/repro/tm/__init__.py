"""Transactional memory on top of the framework (paper §8 future work)."""

from repro.tm.blocks import AtomicBlock, block_units, check_blocks
from repro.tm.semantics import (
    TransactionalResult,
    enumerate_transactional,
    transactional_witness,
)

__all__ = [
    "AtomicBlock",
    "block_units",
    "check_blocks",
    "TransactionalResult",
    "enumerate_transactional",
    "transactional_witness",
]
