"""Transactional semantics: small-step enumeration + big-step filtering.

:func:`transactional_witness` searches for a serialization in which
every atomic block's memory operations are consecutive — the "all or
nothing" order.  :func:`enumerate_transactional` enumerates behaviors
with the ordinary §4 procedure and keeps exactly the executions that
admit such a witness, giving serializable-transactions semantics on top
of any store-atomic model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.core.enumerate import EnumerationLimits, enumerate_behaviors
from repro.core.execution import Execution
from repro.isa.program import Program
from repro.models.base import MemoryModel
from repro.models.registry import get_model
from repro.tm.blocks import AtomicBlock, block_units, check_blocks


def _unit_placeable(execution: Execution, unit: list[int], placed: set[int], latest: dict) -> bool:
    """Can the whole unit be appended now (ops consecutive, in order)?"""
    graph = execution.graph
    virtual_placed = set(placed)
    virtual_latest = dict(latest)
    for nid in unit:
        node = graph.node(nid)
        for ancestor in graph.ancestors(nid):
            if graph.node(ancestor).is_memory and ancestor not in virtual_placed:
                return False
        if node.reads_memory and virtual_latest.get(node.addr) != node.source:
            return False
        virtual_placed.add(nid)
        if node.is_visible_store:
            virtual_latest[node.addr] = nid
    return True


def _apply_unit(unit: list[int], execution: Execution, placed: set[int], latest: dict):
    graph = execution.graph
    undo = []
    for nid in unit:
        node = graph.node(nid)
        placed.add(nid)
        if node.is_visible_store:
            undo.append((node.addr, latest.get(node.addr)))
            latest[node.addr] = nid
    return undo


def _undo_unit(unit: list[int], undo, placed: set[int], latest: dict) -> None:
    for nid in unit:
        placed.discard(nid)
    for addr, previous in reversed(undo):
        if previous is None:
            latest.pop(addr, None)
        else:
            latest[addr] = previous


def transactional_witness(
    execution: Execution, blocks: tuple[AtomicBlock, ...]
) -> list[int] | None:
    """A serialization with every block contiguous, or None.

    Bypassed (TSO-forwarded) loads are not supported here; transactional
    semantics are defined over store-atomic models.
    """
    units = block_units(execution, blocks)
    order: list[int] = []
    placed: set[int] = set()
    latest: dict = {}
    remaining = list(range(len(units)))

    def search() -> bool:
        if not remaining:
            return True
        for position in range(len(remaining)):
            index = remaining[position]
            unit = units[index]
            if not _unit_placeable(execution, unit, placed, latest):
                continue
            undo = _apply_unit(unit, execution, placed, latest)
            order.extend(unit)
            del remaining[position]
            if search():
                return True
            remaining.insert(position, index)
            del order[-len(unit):]
            _undo_unit(unit, undo, placed, latest)
        return False

    if search():
        return order
    return None


@dataclass
class TransactionalResult:
    """Behaviors surviving the atomic-block filter."""

    program: Program
    model: MemoryModel
    blocks: tuple[AtomicBlock, ...]
    executions: list[Execution]
    rejected: int  #: enumerated executions without a block-atomic witness

    def register_outcomes(self) -> frozenset[frozenset]:
        return frozenset(
            frozenset(execution.final_registers().items()) for execution in self.executions
        )

    def __len__(self) -> int:
        return len(self.executions)


def enumerate_transactional(
    program: Program,
    blocks: tuple[AtomicBlock, ...] | list[AtomicBlock],
    model: MemoryModel | str = "sc",
    limits: EnumerationLimits | None = None,
) -> TransactionalResult:
    """Enumerate behaviors and keep those where every block is atomic.

    The small-step side is the ordinary enumeration under ``model``; the
    blocks impose the big-step constraint afterwards.  (A real eager TM
    implementation realizes exactly the surviving executions; aborted
    attempts are invisible in final state.)
    """
    if isinstance(model, str):
        model = get_model(model)
    if model.store_load_bypass:
        raise ReproError(
            "transactional semantics are defined over store-atomic models; "
            "bypassed (forwarded) loads have no single serialization point"
        )
    blocks = tuple(blocks)
    check_blocks(program, blocks)
    result = enumerate_behaviors(program, model, limits)
    kept = []
    rejected = 0
    for execution in result.executions:
        if transactional_witness(execution, blocks) is not None:
            kept.append(execution)
        else:
            rejected += 1
    return TransactionalResult(program, model, blocks, kept, rejected)
