"""Atomic blocks: transactions as groups of memory operations.

Paper §8 (future work): "One may view a transaction as an atomic group
of Load and Store operations, where the addresses involved in the group
are not necessarily known a priori.  It is worth exploring if the
big-step, 'all or nothing' semantics … can be explained in terms of
small-step semantics using the framework provided in this paper."

Here a transaction is an :class:`AtomicBlock` — a contiguous range of a
thread's (straight-line) instructions.  The small-step side is the
ordinary enumeration procedure; the big-step constraint is imposed
afterwards: an execution is transactionally valid iff a serialization
exists in which every block's memory operations appear *consecutively*.
Note the addresses inside a block indeed need not be known up front —
they come out of the execution itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramError
from repro.core.execution import Execution
from repro.isa.program import Program


@dataclass(frozen=True)
class AtomicBlock:
    """A transaction: instructions ``[start, end)`` of ``thread`` run
    atomically.  Indices are *dynamic* instruction positions, which for
    the supported straight-line transaction bodies equal static ones."""

    thread: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise ProgramError(
                f"atomic block [{self.start}, {self.end}) of {self.thread!r} is empty"
            )

    def validate_against(self, program: Program) -> None:
        tid = program.thread_index(self.thread)
        code = program.threads[tid].code
        if self.end > len(code):
            raise ProgramError(
                f"atomic block [{self.start}, {self.end}) exceeds thread "
                f"{self.thread!r} (length {len(code)})"
            )
        for instruction in code[self.start : self.end]:
            if instruction.op_class.value == "branch":
                raise ProgramError(
                    "atomic blocks must be straight-line (no branches inside)"
                )


def check_blocks(program: Program, blocks: tuple[AtomicBlock, ...]) -> None:
    """Validate all blocks: in range, straight-line, non-overlapping."""
    for block in blocks:
        block.validate_against(program)
    by_thread: dict[str, list[AtomicBlock]] = {}
    for block in blocks:
        by_thread.setdefault(block.thread, []).append(block)
    for thread, thread_blocks in by_thread.items():
        ordered = sorted(thread_blocks, key=lambda b: b.start)
        for first, second in zip(ordered, ordered[1:]):
            if first.end > second.start:
                raise ProgramError(
                    f"atomic blocks overlap in thread {thread!r}: "
                    f"[{first.start},{first.end}) and [{second.start},{second.end})"
                )


def block_units(execution: Execution, blocks: tuple[AtomicBlock, ...]) -> list[list[int]]:
    """Partition the execution's memory nodes into serialization units:
    one unit per block (its memory nodes, program order) and singleton
    units for everything else (init stores included)."""
    program = execution.program
    claimed: dict[int, int] = {}  # nid -> unit index
    units: list[list[int]] = []
    for block in blocks:
        tid = program.thread_index(block.thread)
        members = [
            node.nid
            for node in execution.graph.nodes
            if node.tid == tid and block.start <= node.index < block.end and node.is_memory
        ]
        members.sort(key=lambda nid: execution.graph.node(nid).index)
        if members:
            for nid in members:
                claimed[nid] = len(units)
            units.append(members)
    for node in execution.graph.nodes:
        if node.is_memory and node.nid not in claimed:
            units.append([node.nid])
    return units
