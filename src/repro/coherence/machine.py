"""A multiprocessor of in-order cores over the MSI protocol.

Each core executes its thread's instructions in program order; memory
operations go through the :class:`CoherenceController`, which imposes
eager ordering edges.  The machine records everything as an execution
graph, so a run can be checked against Store Atomicity and SC
(Section 4.2: "Showing that a particular architecture obeys a particular
memory model ... identify all sources of ordering constraints, make sure
they are reflected in the ⊑ ordering").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import CoherenceError, EnumerationError
from repro.core.graph import EdgeKind, ExecutionGraph
from repro.core.node import INIT_TID, Node
from repro.isa.instructions import Fence, Load, OpClass, Rmw, Store
from repro.isa.program import Program
from repro.coherence.protocol import CoherenceController, ProtocolEdge
from repro.operational.state import (
    ArchThreadState,
    final_registers,
    resolve_address,
    rmw_apply,
    step_local,
)

_EDGE_KIND = {
    "ownership-transfer": EdgeKind.IMPOSED,
    "invalidation": EdgeKind.IMPOSED,
    "copy-from-owner": EdgeKind.SOURCE,
}


@dataclass
class CoherentRun:
    """The artifact of one machine run: graph + final state + trace."""

    program: Program
    graph: ExecutionGraph
    registers: frozenset  #: ((thread, register), value) items
    schedule: tuple[int, ...]  #: thread id executed at each step
    transactions: int
    protocol_edges: tuple[ProtocolEdge, ...]

    class _PseudoModel:
        name = "msi-coherence"

    #: Duck-typing shim so serialization/atomicity helpers that expect an
    #: Execution-shaped object accept a CoherentRun.
    model = _PseudoModel()

    def final_register_dict(self) -> dict:
        return dict(self.registers)


class CoherentMachine:
    """Drives a program over in-order cores + coherent caches.

    ``protocol`` selects the coherence protocol: ``"msi"`` (default) or
    ``"mesi"`` (adds the Exclusive state with silent E→M upgrades).
    """

    def __init__(
        self, program: Program, seed: int | None = None, protocol: str = "msi"
    ) -> None:
        self.program = program
        self.rng = random.Random(seed)
        self.graph = ExecutionGraph()
        self.protocol_edges: list[ProtocolEdge] = []
        self._init_nodes: dict[str, int] = {}
        self._last_node: list[int | None] = [None] * len(program.threads)
        self._node_counts: list[int] = [0] * len(program.threads)
        self._create_init_stores()
        if protocol == "msi":
            controller_class = CoherenceController
        elif protocol == "mesi":
            from repro.coherence.mesi import MesiController

            controller_class = MesiController
        else:
            raise CoherenceError(f"unknown protocol {protocol!r} (msi or mesi)")
        self.controller = controller_class(
            cache_count=len(program.threads),
            initial={loc: program.initial_value(loc) for loc in program.locations()},
            init_nodes=self._init_nodes,
        )

    def _create_init_stores(self) -> None:
        for index, location in enumerate(self.program.locations()):
            node = Node(
                nid=len(self.graph),
                tid=INIT_TID,
                index=index,
                instruction=None,
                op_class=OpClass.STORE,
                executed=True,
                writes=True,
                addr=location,
                stored=self.program.initial_value(location),
                value=self.program.initial_value(location),
            )
            self.graph.add_node(node)
            self._init_nodes[location] = node.nid

    def _new_node(self, tid: int, instruction) -> Node:
        node = Node(
            nid=len(self.graph),
            tid=tid,
            index=self._node_counts[tid],
            instruction=instruction,
            op_class=instruction.op_class,
        )
        self.graph.add_node(node)
        self._node_counts[tid] += 1
        for init_nid in self._init_nodes.values():
            self.graph.add_edge(init_nid, node.nid, EdgeKind.INIT)
        previous = self._last_node[tid]
        if previous is not None:
            # In-order core: full program order between memory operations.
            self.graph.add_edge(previous, node.nid, EdgeKind.PROGRAM)
        self._last_node[tid] = node.nid
        return node

    def _apply_edges(self, edges: list[ProtocolEdge]) -> None:
        for edge in edges:
            self.protocol_edges.append(edge)
            if edge.before != edge.after:
                self.graph.add_edge(edge.before, edge.after, _EDGE_KIND[edge.reason])

    def run(self, max_steps: int = 10_000) -> CoherentRun:
        """Execute to completion under a (seeded) random schedule."""
        states = [ArchThreadState() for _ in self.program.threads]
        schedule: list[int] = []
        steps = 0
        while True:
            runnable = [
                tid
                for tid, state in enumerate(states)
                if not state.done(self.program.threads[tid])
            ]
            if not runnable:
                break
            steps += 1
            if steps > max_steps:
                raise EnumerationError(f"coherent machine exceeded {max_steps} steps")
            tid = self.rng.choice(runnable)
            schedule.append(tid)
            states[tid] = self._step(tid, states[tid])

        return CoherentRun(
            program=self.program,
            graph=self.graph,
            registers=final_registers(self.program, tuple(states)),
            schedule=tuple(schedule),
            transactions=self.controller.transactions,
            protocol_edges=tuple(self.protocol_edges),
        )

    def _step(self, tid: int, state: ArchThreadState) -> ArchThreadState:
        thread = self.program.threads[tid]
        instruction = state.current(thread)

        local = step_local(state, thread, instruction)
        if local is not None:
            return local
        if isinstance(instruction, Fence):
            # In-order cores already execute memory operations in program
            # order; fences are no-ops here.
            return state.advance(state.pc + 1)

        if isinstance(instruction, Load):
            address = resolve_address(state, instruction.addr)
            node = self._new_node(tid, instruction)
            node.addr = address
            value, source, edges = self.controller.read(tid, address, node.nid)
            node.value = value
            node.source = source
            node.executed = True
            self._apply_edges(edges)
            return state.write(instruction.dst, value).advance(state.pc + 1)

        if isinstance(instruction, Store):
            address = resolve_address(state, instruction.addr)
            value = state.operand(instruction.value)
            node = self._new_node(tid, instruction)
            node.addr = address
            node.stored = value
            node.value = value
            node.writes = True
            node.executed = True
            self._apply_edges(self.controller.write(tid, address, value, node.nid))
            return state.advance(state.pc + 1)

        if isinstance(instruction, Rmw):
            address = resolve_address(state, instruction.addr)
            node = self._new_node(tid, instruction)
            node.addr = address
            old, source, read_edges = self.controller.read(tid, address, node.nid)
            node.value = old
            node.source = source
            node.executed = True
            self._apply_edges(read_edges)
            next_state, stored = rmw_apply(state, instruction, old)
            if stored is not None:
                node.stored = stored
                node.writes = True
                self._apply_edges(self.controller.write(tid, address, stored, node.nid))
            return next_state

        raise CoherenceError(f"coherent machine cannot execute {instruction}")


def run_coherent(
    program: Program, seed: int | None = None, protocol: str = "msi"
) -> CoherentRun:
    """Convenience: build a machine and run it once."""
    return CoherentMachine(program, seed, protocol).run()
