"""An ownership-based MSI cache-coherence protocol (paper Section 4.2).

    "We can view a cache coherence protocol as a conservative
    approximation to Store Atomicity.  Ordering constraints are inserted
    eagerly, imposing a well-defined order for memory operations even
    when the exact order is not observed by any thread."

The controller models a directory-based MSI protocol at the granularity
of atomic bus transactions:

* a **Store** obtains ownership (M), invalidating every sharer and the
  previous owner — ordering the store after the previous owner's store
  (ownership transfer) and after every load that used a now-invalidated
  copy,
* a **Load** obtains a copy (S) from the current owner or memory —
  ordering the load after the owner's store.

Those three eager ordering sources are exactly the paper's description;
the controller reports them as edges so the machine can build an
execution graph and the checker can confirm they over-approximate Store
Atomicity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CoherenceError
from repro.isa.operands import Value


class LineState(enum.Enum):
    MODIFIED = "M"
    SHARED = "S"
    INVALID = "I"


@dataclass(frozen=True)
class ProtocolEdge:
    """An ordering constraint the protocol imposes: ``before -> after``."""

    before: int  #: node id
    after: int  #: node id
    reason: str  #: "ownership-transfer" | "invalidation" | "copy-from-owner"


@dataclass
class _LineInfo:
    """Directory + graph bookkeeping for one memory location."""

    value: Value
    last_writer: int  #: node id of the store that produced ``value``
    readers_since_write: list[int] = field(default_factory=list)
    owner: int | None = None  #: cache id in MODIFIED, or None (memory owns)
    sharers: set[int] = field(default_factory=set)


class CoherenceController:
    """Directory-based MSI over ``cache_count`` caches."""

    def __init__(
        self,
        cache_count: int,
        initial: dict[str, Value],
        init_nodes: dict[str, int],
    ) -> None:
        if cache_count < 1:
            raise CoherenceError("need at least one cache")
        self.cache_count = cache_count
        self._lines: dict[str, _LineInfo] = {
            location: _LineInfo(value=value, last_writer=init_nodes[location])
            for location, value in initial.items()
        }
        self._states: dict[tuple[int, str], LineState] = {
            (cache, location): LineState.INVALID
            for cache in range(cache_count)
            for location in initial
        }
        self.transactions = 0

    def _line(self, location: str) -> _LineInfo:
        try:
            return self._lines[location]
        except KeyError:
            raise CoherenceError(f"unknown location {location!r}") from None

    def state(self, cache: int, location: str) -> LineState:
        return self._states[(cache, location)]

    # ------------------------------------------------------------------
    # transactions

    def read(self, cache: int, location: str, nid: int) -> tuple[Value, int, list[ProtocolEdge]]:
        """A load by ``cache``; returns (value, source node, imposed edges)."""
        line = self._line(location)
        edges: list[ProtocolEdge] = []
        state = self._states[(cache, location)]
        if state is LineState.INVALID:
            # Obtain a copy from the current owner (or memory): the owner's
            # store is ordered before this load.
            if line.owner is not None and line.owner != cache:
                self._states[(line.owner, location)] = LineState.SHARED
                line.sharers.add(line.owner)
                line.owner = None
            self._states[(cache, location)] = LineState.SHARED
            line.sharers.add(cache)
            self.transactions += 1
        edges.append(ProtocolEdge(line.last_writer, nid, "copy-from-owner"))
        line.readers_since_write.append(nid)
        self._check_invariants(location)
        return line.value, line.last_writer, edges

    def write(self, cache: int, location: str, value: Value, nid: int) -> list[ProtocolEdge]:
        """A store by ``cache``; returns the imposed ordering edges."""
        line = self._line(location)
        edges: list[ProtocolEdge] = [
            ProtocolEdge(line.last_writer, nid, "ownership-transfer")
        ]
        edges.extend(
            ProtocolEdge(reader, nid, "invalidation")
            for reader in line.readers_since_write
            if reader != nid
        )
        # Revoke all other copies.
        for other in range(self.cache_count):
            if other != cache:
                self._states[(other, location)] = LineState.INVALID
        line.sharers = {cache}
        line.owner = cache
        self._states[(cache, location)] = LineState.MODIFIED
        line.value = value
        line.last_writer = nid
        line.readers_since_write = []
        self.transactions += 1
        self._check_invariants(location)
        return edges

    # ------------------------------------------------------------------
    # invariants

    def _check_invariants(self, location: str) -> None:
        line = self._line(location)
        holders = [
            cache
            for cache in range(self.cache_count)
            if self._states[(cache, location)] is not LineState.INVALID
        ]
        modified = [
            cache
            for cache in holders
            if self._states[(cache, location)] is LineState.MODIFIED
        ]
        if len(modified) > 1:
            raise CoherenceError(f"{location!r}: multiple MODIFIED holders {modified}")
        if modified and len(holders) > 1:
            raise CoherenceError(
                f"{location!r}: MODIFIED in cache {modified[0]} coexists with "
                f"copies in {holders}"
            )
        if line.owner is not None and self._states[(line.owner, location)] is not LineState.MODIFIED:
            raise CoherenceError(f"{location!r}: directory owner is not MODIFIED")

    def snapshot(self, location: str) -> Value:
        """The canonical current value of a location."""
        return self._line(location).value
