"""MESI: MSI plus the Exclusive state (silent upgrade optimization).

A read miss that finds no other valid copy installs the line EXCLUSIVE;
a subsequent write by the same cache upgrades E→M *silently* — no bus
transaction, because no other copy can exist.  The ordering edges are
identical to MSI's (the silent upgrade still orders the store after the
previous writer and after prior readers of the old version), so MESI is
the same conservative approximation of Store Atomicity with a cheaper
implementation — exactly the §4.2 framing: protocols differ in how
eagerly they impose orderings and at what cost, not in the memory model
they realize.
"""

from __future__ import annotations

from repro.errors import CoherenceError
from repro.isa.operands import Value
from repro.coherence.protocol import CoherenceController, LineState, ProtocolEdge

#: Extra line state (module-level so callers can introspect runs).
EXCLUSIVE = "E"


class MesiController(CoherenceController):
    """Directory-based MESI over ``cache_count`` caches."""

    def __init__(self, cache_count: int, initial: dict[str, Value], init_nodes: dict[str, int]) -> None:
        super().__init__(cache_count, initial, init_nodes)
        #: caches holding a line EXCLUSIVE (clean, sole copy)
        self._exclusive: dict[str, int | None] = {location: None for location in initial}
        self.silent_upgrades = 0

    def is_exclusive(self, cache: int, location: str) -> bool:
        """Whether ``cache`` holds ``location`` in the E state.  (The base
        state table reports E lines as SHARED; exclusivity is tracked in
        the directory, as real MESI directories do.)"""
        return self._exclusive.get(location) == cache

    def _holders(self, location: str) -> list[int]:
        return [
            cache
            for cache in range(self.cache_count)
            if self._states[(cache, location)] is not LineState.INVALID
        ]

    def read(self, cache: int, location: str, nid: int):
        line = self._line(location)
        state = self._states[(cache, location)]
        if state is LineState.INVALID:
            holders = self._holders(location)
            if line.owner is not None and line.owner != cache:
                # Downgrade the dirty owner; both become SHARED.
                self._states[(line.owner, location)] = LineState.SHARED
                line.sharers.add(line.owner)
                line.owner = None
                self._exclusive[location] = None
            exclusive_holder = self._exclusive.get(location)
            if exclusive_holder is not None and exclusive_holder != cache:
                # A clean exclusive copy elsewhere degrades to SHARED.
                self._states[(exclusive_holder, location)] = LineState.SHARED
                line.sharers.add(exclusive_holder)
                self._exclusive[location] = None
                holders = self._holders(location)
            if not holders:
                # Sole copy: install EXCLUSIVE (the MESI optimization).
                self._states[(cache, location)] = LineState.SHARED
                self._exclusive[location] = cache
            else:
                self._states[(cache, location)] = LineState.SHARED
            line.sharers.add(cache)
            self.transactions += 1
        edges = [ProtocolEdge(line.last_writer, nid, "copy-from-owner")]
        line.readers_since_write.append(nid)
        self._check_invariants(location)
        self._check_exclusive_invariant(location)
        return line.value, line.last_writer, edges

    def write(self, cache: int, location: str, value: Value, nid: int):
        line = self._line(location)
        edges = [ProtocolEdge(line.last_writer, nid, "ownership-transfer")]
        edges.extend(
            ProtocolEdge(reader, nid, "invalidation")
            for reader in line.readers_since_write
            if reader != nid
        )
        silently = self._exclusive.get(location) == cache
        for other in range(self.cache_count):
            if other != cache:
                self._states[(other, location)] = LineState.INVALID
        line.sharers = {cache}
        line.owner = cache
        self._exclusive[location] = None
        self._states[(cache, location)] = LineState.MODIFIED
        line.value = value
        line.last_writer = nid
        line.readers_since_write = []
        if silently:
            self.silent_upgrades += 1  # E→M upgrade: no bus transaction
        else:
            self.transactions += 1
        self._check_invariants(location)
        self._check_exclusive_invariant(location)
        return edges

    def _check_exclusive_invariant(self, location: str) -> None:
        holder = self._exclusive.get(location)
        if holder is None:
            return
        others = [cache for cache in self._holders(location) if cache != holder]
        if others:
            raise CoherenceError(
                f"{location!r}: EXCLUSIVE in cache {holder} coexists with "
                f"copies in {others}"
            )
