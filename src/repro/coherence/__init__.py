"""MSI cache-coherence substrate and Store Atomicity conformance."""

from repro.coherence.checker import ConformanceReport, verify_run
from repro.coherence.machine import CoherentMachine, CoherentRun, run_coherent
from repro.coherence.mesi import MesiController
from repro.coherence.protocol import CoherenceController, LineState, ProtocolEdge

__all__ = [
    "MesiController",
    "ConformanceReport",
    "verify_run",
    "CoherentMachine",
    "CoherentRun",
    "run_coherent",
    "CoherenceController",
    "LineState",
    "ProtocolEdge",
]
