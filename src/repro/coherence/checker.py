"""Conformance checking of protocol runs (paper Section 4.2).

A run of the MSI machine carries an execution graph whose edges are the
protocol's eager orderings.  The checker confirms the paper's claim:

* the graph satisfies Store Atomicity declaratively (the protocol's
  conservative orderings subsume the rules a/b/c),
* the run is serializable, and
* for in-order cores, the final state is one the SC interleaving
  machine can produce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.atomicity import check_store_atomicity
from repro.core.serialization import find_serialization
from repro.coherence.machine import CoherentRun
from repro.operational.sc import run_sc


@dataclass(frozen=True)
class ConformanceReport:
    """The verdict for one coherent run."""

    atomicity_violations: tuple[str, ...]
    serializable: bool
    sc_outcome: bool | None  #: None when SC outcomes were not supplied/computed

    @property
    def conforms(self) -> bool:
        return (
            not self.atomicity_violations
            and self.serializable
            and self.sc_outcome is not False
        )

    def summary(self) -> str:
        bits = [
            f"store-atomicity: {'ok' if not self.atomicity_violations else 'VIOLATED'}",
            f"serializable: {'yes' if self.serializable else 'NO'}",
        ]
        if self.sc_outcome is not None:
            bits.append(f"SC outcome: {'yes' if self.sc_outcome else 'NO'}")
        return ", ".join(bits)


def verify_run(
    run: CoherentRun,
    sc_outcomes: frozenset | None = None,
    check_sc: bool = True,
) -> ConformanceReport:
    """Check one run; pass precomputed ``sc_outcomes`` to amortize the SC
    enumeration across many seeds."""
    violations = tuple(check_store_atomicity(run.graph))
    witness = find_serialization(run)
    sc_ok: bool | None = None
    if check_sc:
        if sc_outcomes is None:
            sc_outcomes = run_sc(run.program).outcomes
        sc_ok = run.registers in sc_outcomes
    return ConformanceReport(
        atomicity_violations=violations,
        serializable=witness is not None,
        sc_outcome=sc_ok,
    )
