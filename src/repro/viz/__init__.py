"""Execution-graph visualization (Graphviz dot + ASCII)."""

from repro.viz.ascii import render
from repro.viz.dot import to_dot

__all__ = ["render", "to_dot"]
