"""Graphviz rendering of execution graphs, styled after the paper's figures.

Edge styling mirrors Figure 2: solid edges are the local ordering ``≺``,
"ringed" (odot-tailed) edges are observations (``source``), dotted edges
are derived Store Atomicity constraints, and grey edges are TSO bypass
edges that do not participate in ``⊑``.
"""

from __future__ import annotations

from repro.core.graph import EdgeKind, ExecutionGraph
from repro.core.node import Node

_LOCAL_KINDS = (
    EdgeKind.PROGRAM | EdgeKind.DATA | EdgeKind.ADDR_DEP | EdgeKind.SAME_ADDR
)


def _node_label(node: Node) -> str:
    if node.is_init:
        return f"init {node.addr}={node.stored!r}"
    label = str(node.instruction)
    if node.reads_memory and node.executed:
        label += f" = {node.value!r}"
    return label.replace('"', "'")


def _edge_attrs(kinds: EdgeKind) -> str:
    if kinds & EdgeKind.BYPASS:
        return 'color="gray60", style=solid, penwidth=2'
    if kinds & EdgeKind.SOURCE:
        return "arrowtail=odot, dir=both, color=black"
    if kinds & EdgeKind.ATOMICITY:
        return "style=dotted, color=black"
    if kinds & EdgeKind.IMPOSED:
        return 'style=dashed, color="gray40"'
    if kinds & _LOCAL_KINDS:
        return "style=solid"
    if kinds & EdgeKind.INIT:
        return 'style=dashed, color="gray80"'
    return "style=solid"


def to_dot(
    graph: ExecutionGraph,
    title: str = "",
    include_init: bool = False,
    memory_only: bool = True,
) -> str:
    """Render an execution graph as a DOT digraph.

    ``memory_only`` erases non-memory nodes (the paper's Load–Store-graph
    view — "All the graphs pictured in this paper are actually Load-Store
    graphs"); explicit edges between surviving nodes are kept and
    transitive orderings through erased nodes are re-inserted as plain
    edges.
    """
    keep = {
        node.nid
        for node in graph.nodes
        if (node.is_memory or not memory_only) and (include_init or not node.is_init)
    }

    lines = ["digraph execution {"]
    if title:
        lines.append(f'  label="{title}"; labelloc=t;')
    lines.append("  rankdir=TB; node [fontname=Helvetica, fontsize=11];")

    threads: dict[int, list[Node]] = {}
    for node in graph.nodes:
        if node.nid in keep:
            threads.setdefault(node.tid, []).append(node)
    for tid, nodes in sorted(threads.items()):
        cluster_name = "init" if tid < 0 else f"T{tid}"
        lines.append(f"  subgraph cluster_{cluster_name.replace('-', '_')} {{")
        lines.append(f'    label="{cluster_name}"; color="gray80";')
        for node in nodes:
            shape = "box" if node.writes_memory else "ellipse"
            lines.append(f'    n{node.nid} [label="{_node_label(node)}", shape={shape}];')
        lines.append("  }")

    drawn: set[tuple[int, int]] = set()
    for u, v, kinds in graph.edges():
        if u in keep and v in keep and not (kinds & EdgeKind.INIT and not include_init):
            lines.append(f"  n{u} -> n{v} [{_edge_attrs(kinds)}];")
            drawn.add((u, v))

    if memory_only:
        # Re-insert orderings that flowed through erased nodes ("connecting
        # predecessors and successors of each erased node").
        for v in keep:
            for u in graph.ancestors(v):
                if u in keep and (u, v) not in drawn and not _implied(graph, u, v, keep):
                    lines.append(f"  n{u} -> n{v} [style=solid];")
                    drawn.add((u, v))

    lines.append("}")
    return "\n".join(lines)


def _implied(graph: ExecutionGraph, u: int, v: int, keep: set[int]) -> bool:
    """Is u ⊑ v already implied through another kept node (transitive)?"""
    for w in graph.descendants(u):
        if w != v and w in keep and graph.before(w, v):
            return True
    return False
