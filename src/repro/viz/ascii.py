"""Plain-text rendering of execution graphs for terminals and reports."""

from __future__ import annotations

from repro.core.graph import EdgeKind, ExecutionGraph

_KIND_SYMBOL = [
    (EdgeKind.SOURCE, "==obs==>"),
    (EdgeKind.ATOMICITY, "..atom..>"),
    (EdgeKind.BYPASS, "~bypass~>"),
    (EdgeKind.IMPOSED, "--imp-->"),
    (EdgeKind.DATA, "--data->"),
    (EdgeKind.ADDR_DEP, "--addr->"),
    (EdgeKind.SAME_ADDR, "--same->"),
    (EdgeKind.PROGRAM, "-------->"),
]


def _symbol(kinds: EdgeKind) -> str:
    for kind, symbol in _KIND_SYMBOL:
        if kinds & kind:
            return symbol
    return "-------->"


def render(graph: ExecutionGraph, include_init: bool = False) -> str:
    """Nodes grouped by thread, then every non-init edge with a symbol."""
    lines: list[str] = []
    by_thread: dict[int, list] = {}
    for node in graph.nodes:
        if node.is_init and not include_init:
            continue
        by_thread.setdefault(node.tid, []).append(node)

    for tid, nodes in sorted(by_thread.items()):
        lines.append("init:" if tid < 0 else f"thread {tid}:")
        for node in nodes:
            lines.append(f"  {node.describe()}")

    lines.append("edges:")
    for u, v, kinds in graph.edges():
        if kinds & EdgeKind.INIT and kinds == EdgeKind.INIT:
            continue
        if not include_init and (graph.node(u).is_init or graph.node(v).is_init):
            continue
        lines.append(f"  n{u} {_symbol(kinds)} n{v}  [{kinds.pretty()}]")
    return "\n".join(lines)
