"""An out-of-order core model with speculative loads (paper §4.2, §5).

    "Within a processor, an ordering relationship between two
    instructions requires the earlier to complete before the later
    instruction performs any visible action.  When operations are not
    ordered by the reordering rules, they can be in flight
    simultaneously…"

This machine is the aggressive end of that spectrum — an R10000/x86-like
core per thread:

* instructions enter an (unbounded) window in program order and *issue*
  as soon as their register operands are ready — loads may issue far out
  of order,
* an issuing load forwards from the newest older same-address store
  with a known address in its window/store buffer, else reads memory
  **at issue time** (a speculation: memory may still change before the
  load logically happens),
* retirement is in order; a retiring load is **re-validated**: its
  correct value *now* (forwarding else memory) is recomputed, and a
  mismatch squashes and replays it — the classic coherence replay,
* retired stores sit in a FIFO store buffer that drains to memory
  asynchronously; fences retire only when the buffer is empty, atomics
  drain it and act on memory directly.

The conformance claim (TAB-OOO) is §4.2's exercise: with replay enabled
this machine implements exactly TSO — every outcome over many random
schedules lies in the axiomatic TSO set, and the schedules reach the
relaxed TSO outcomes.  With replay *disabled* it is the naive-speculation
machine of §5/Martin et al.: non-TSO (even non-SC-coherent) outcomes
appear, e.g. CoRR's inverted reads.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.errors import EnumerationError, ExecutionError
from repro.isa.instructions import Branch, Compute, Fence, Instruction, Load, Rmw, Store, alu_eval
from repro.isa.operands import Const, Operand, Reg, Value
from repro.isa.program import Program
from repro.operational.state import final_registers
from repro.operational.storebuffer import _DRAINING_FENCES


class Stage(enum.Enum):
    FETCHED = "fetched"
    DONE = "done"  #: executed/issued; value available
    RETIRED = "retired"


@dataclass
class DynInstr:
    """One window entry."""

    index: int  #: dynamic program-order position within the core
    instruction: Instruction
    operand_sources: tuple["DynInstr | None", ...]
    fetch_pc: int = 0  #: static instruction index this entry was fetched from
    stage: Stage = Stage.FETCHED
    value: Value | None = None  #: register result
    addr: str | None = None
    stored: Value | None = None  #: store data once computed
    replays: int = 0

    @property
    def is_load(self) -> bool:
        return isinstance(self.instruction, Load)

    @property
    def is_store(self) -> bool:
        return isinstance(self.instruction, Store)


def _operands(instruction: Instruction) -> tuple[Operand, ...]:
    if isinstance(instruction, Compute):
        return instruction.args
    if isinstance(instruction, Load):
        return (instruction.addr,)
    if isinstance(instruction, Store):
        return (instruction.addr, instruction.value)
    if isinstance(instruction, Branch):
        return (instruction.cond,) if instruction.cond is not None else ()
    if isinstance(instruction, Rmw):
        return (instruction.addr,) + instruction.args
    return ()


class OooCore:
    """One core: fetch pointer, window, architectural register map."""

    def __init__(self, machine: "OooMachine", core_id: int) -> None:
        self.machine = machine
        self.core_id = core_id
        self.thread = machine.program.threads[core_id]
        self.pc = 0
        self.window: list[DynInstr] = []
        self.retire_pointer = 0  #: index into window of next instruction to retire
        self.store_buffer: list[tuple[str, Value]] = []
        self.regs: dict[str, DynInstr] = {}
        self.fetch_blocked_on: DynInstr | None = None  #: unresolved branch

    # ------------------------------------------------------------------
    # operand plumbing

    def _operand_value(self, entry: DynInstr, position: int):
        operand = _operands(entry.instruction)[position]
        if isinstance(operand, Const):
            return operand.value
        producer = entry.operand_sources[position]
        if producer is None:
            return 0
        if producer.stage is Stage.FETCHED or producer.value is None:
            return None
        return producer.value

    def _operand_values(self, entry: DynInstr):
        values = []
        for position in range(len(_operands(entry.instruction))):
            value = self._operand_value(entry, position)
            if value is None:
                return None
            values.append(value)
        return tuple(values)

    def _resolve_addr(self, entry: DynInstr) -> str | None:
        if entry.addr is not None:
            return entry.addr
        value = self._operand_value(entry, 0)
        if value is None:
            return None
        if not isinstance(value, str):
            raise ExecutionError(f"core {self.core_id}: address {value!r} is not a location")
        entry.addr = value
        return value

    # ------------------------------------------------------------------
    # micro-events

    def can_fetch(self) -> bool:
        return self.pc < len(self.thread.code) and self.fetch_blocked_on is None

    def fetch(self) -> None:
        instruction = self.thread.code[self.pc]
        sources = tuple(
            self.regs.get(op.name) if isinstance(op, Reg) else None
            for op in _operands(instruction)
        )
        entry = DynInstr(len(self.window), instruction, sources, fetch_pc=self.pc)
        self.window.append(entry)
        destination = instruction.dest()
        if destination is not None:
            self.regs[destination.name] = entry
        self.pc += 1
        if isinstance(instruction, Branch):
            self.fetch_blocked_on = entry

    def issuable(self) -> list[DynInstr]:
        """Window entries that can execute a visible step right now."""
        ready = []
        for entry in self.window[self.retire_pointer :]:
            if entry.stage is not Stage.FETCHED:
                continue
            instruction = entry.instruction
            if isinstance(instruction, (Fence, Rmw)):
                continue  # handled at retirement
            if self._operand_values(entry) is None:
                continue
            ready.append(entry)
        return ready

    def _forward(self, entry: DynInstr, address: str):
        """Newest OLDER same-address store value visible to this load:
        un-retired window stores first (program order), then the store
        buffer.  Retired stores live in the buffer or have drained; a
        drained store must NOT forward (memory may hold a newer remote
        value by now)."""
        for older in reversed(self.window[: entry.index]):
            if older.is_store and older.stage is not Stage.RETIRED:
                older_addr = older.addr
                if older_addr is None:
                    # Unknown address: the aggressive core *assumes* no
                    # alias and keeps searching older stores (this is the
                    # §5 address-aliasing speculation; the retirement
                    # re-check catches mispredictions).
                    continue
                if older_addr == address and older.stored is not None:
                    return (older.stored,)
        for buffered_addr, buffered_value in reversed(self.store_buffer):
            if buffered_addr == address:
                return (buffered_value,)
        return None

    def _load_value_now(self, entry: DynInstr, address: str) -> Value:
        forwarded = self._forward(entry, address)
        if forwarded is not None:
            return forwarded[0]
        return self.machine.memory[address]

    def issue(self, entry: DynInstr) -> None:
        instruction = entry.instruction
        if isinstance(instruction, Compute):
            entry.value = alu_eval(instruction.op, self._operand_values(entry))
        elif isinstance(instruction, Branch):
            values = self._operand_values(entry)
            condition = values[0] if values else 1
            entry.value = condition
            if self.fetch_blocked_on is entry:
                self.fetch_blocked_on = None
            if instruction.taken(condition):
                self.pc = self.thread.target_of(instruction)
        elif isinstance(instruction, Store):
            address = self._resolve_addr(entry)
            assert address is not None
            entry.stored = self._operand_value(entry, 1)
            entry.value = entry.stored
        elif isinstance(instruction, Load):
            address = self._resolve_addr(entry)
            assert address is not None
            entry.value = self._load_value_now(entry, address)
        entry.stage = Stage.DONE

    def can_retire(self) -> bool:
        if self.retire_pointer >= len(self.window):
            return False
        entry = self.window[self.retire_pointer]
        instruction = entry.instruction
        if isinstance(instruction, Fence):
            if instruction.kind in _DRAINING_FENCES and self.store_buffer:
                return False
            return True
        if isinstance(instruction, Rmw):
            if self.store_buffer:
                return False
            return self._operand_values(entry) is not None and self._resolve_addr(entry) is not None
        if isinstance(instruction, Store) and instruction.release and self.store_buffer:
            # release stores wait for the buffer (conservative; exact for
            # non-FIFO buffers, harmless for this FIFO one)
            return entry.stage is Stage.DONE and not self.store_buffer
        return entry.stage is Stage.DONE

    def retire(self) -> None:
        entry = self.window[self.retire_pointer]
        instruction = entry.instruction
        if isinstance(instruction, Fence):
            entry.stage = Stage.RETIRED
        elif isinstance(instruction, Rmw):
            address = entry.addr
            old = self.machine.memory[address]
            values = self._operand_values(entry)
            stored = instruction.stored_value(old, values[1:])
            entry.value = old
            if stored is not None:
                self.machine.commit_store(address, stored)
            entry.stage = Stage.RETIRED
        elif entry.is_load:
            address = entry.addr
            if self.machine.replay_enabled:
                correct = self._load_value_now(entry, address)
                if correct != entry.value:
                    # Squash: the load replays with the correct value and
                    # every younger window entry — all of which may depend
                    # on it, directly or through control flow — is
                    # discarded and re-fetched.
                    entry.value = correct
                    entry.replays += 1
                    self.machine.total_replays += 1
                    self._squash_after(entry)
            entry.stage = Stage.RETIRED
        elif entry.is_store:
            self.store_buffer.append((entry.addr, entry.stored))
            entry.stage = Stage.RETIRED
        else:
            entry.stage = Stage.RETIRED
        self.retire_pointer += 1

    def _squash_after(self, entry: DynInstr) -> None:
        """Flush every window entry younger than ``entry`` and restart
        fetch at the following static instruction.  Younger entries are
        all un-retired (retirement is in order), so the store buffer and
        memory are untouched; the architectural register map is rebuilt
        from the surviving window prefix."""
        self.window = self.window[: entry.index + 1]
        self.pc = entry.fetch_pc + 1
        self.fetch_blocked_on = None
        self.regs = {}
        for survivor in self.window:
            destination = survivor.instruction.dest()
            if destination is not None:
                self.regs[destination.name] = survivor

    def can_drain(self) -> bool:
        return bool(self.store_buffer)

    def drain(self) -> None:
        address, value = self.store_buffer.pop(0)
        self.machine.commit_store(address, value)

    def done(self) -> bool:
        return (
            self.pc >= len(self.thread.code)
            and self.fetch_blocked_on is None
            and self.retire_pointer >= len(self.window)
            and not self.store_buffer
        )

    def final_regs(self) -> tuple[tuple[str, Value], ...]:
        items = []
        for name, producer in self.regs.items():
            if producer.value is not None:
                items.append((name, producer.value))
        return tuple(sorted(items))


@dataclass
class OooRun:
    """The artifact of one machine run."""

    program: Program
    registers: frozenset
    replays: int
    steps: int
    replay_enabled: bool


class OooMachine:
    """N out-of-order cores over a single shared memory."""

    def __init__(
        self,
        program: Program,
        seed: int | None = None,
        replay_enabled: bool = True,
    ) -> None:
        self.program = program
        self.rng = random.Random(seed)
        self.replay_enabled = replay_enabled
        self.memory: dict[str, Value] = {
            location: program.initial_value(location) for location in program.locations()
        }
        self.cores = [OooCore(self, core_id) for core_id in range(len(program.threads))]
        self.total_replays = 0

    def commit_store(self, address: str, value: Value) -> None:
        self.memory[address] = value

    def _events(self):
        events = []
        for core in self.cores:
            if core.can_fetch():
                events.append(("fetch", core, None))
            for entry in core.issuable():
                events.append(("issue", core, entry))
            if core.can_retire():
                events.append(("retire", core, None))
            if core.can_drain():
                events.append(("drain", core, None))
        return events

    def run(self, max_steps: int = 100_000) -> OooRun:
        steps = 0
        while True:
            events = self._events()
            if not events:
                if all(core.done() for core in self.cores):
                    break
                raise EnumerationError("out-of-order machine deadlocked")
            steps += 1
            if steps > max_steps:
                raise EnumerationError(f"out-of-order machine exceeded {max_steps} steps")
            kind, core, entry = self.rng.choice(events)
            if kind == "fetch":
                core.fetch()
            elif kind == "issue":
                core.issue(entry)
            elif kind == "retire":
                core.retire()
            else:
                core.drain()

        class _State:
            def __init__(self, regs):
                self.regs = regs

        states = tuple(_State(core.final_regs()) for core in self.cores)
        return OooRun(
            program=self.program,
            registers=final_registers(self.program, states),
            replays=self.total_replays,
            steps=steps,
            replay_enabled=self.replay_enabled,
        )


def run_ooo(
    program: Program, seed: int | None = None, replay_enabled: bool = True
) -> OooRun:
    """Convenience: build and run one out-of-order machine."""
    return OooMachine(program, seed, replay_enabled).run()
