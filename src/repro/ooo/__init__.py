"""Out-of-order core substrate (speculative loads + retirement replay)."""

from repro.ooo.core import DynInstr, OooCore, OooMachine, OooRun, Stage, run_ooo

__all__ = ["DynInstr", "OooCore", "OooMachine", "OooRun", "Stage", "run_ooo"]
