"""Testing support: fault injection, differential fuzzing, mutation kill.

* :mod:`repro.testing.faults` — deterministic fault injection for the
  enumeration engine's degradation paths.
* :mod:`repro.testing.fuzzgen` — seeded random program generator with
  weighted profiles (register addressing, RMWs, branches, fences).
* :mod:`repro.testing.oracles` — N-way differential oracles across the
  repo's independent implementations.
* :mod:`repro.testing.shrink` — delta-debugging counterexample minimizer.
* :mod:`repro.testing.corpus` — replayable ``tests/corpus/`` file format.
* :mod:`repro.testing.mutants` — seeded bugs for mutation-kill proofs.
* :mod:`repro.testing.fuzz` — campaign driver behind ``repro fuzz``.
"""

from repro.testing.corpus import CorpusEntry, load_corpus, load_entry, save_entry
from repro.testing.faults import (
    FaultInjector,
    FaultStats,
    InjectedAtomicityViolation,
    InjectedCycleError,
    InjectedMemoryError,
    inject_faults,
)
from repro.testing.fuzz import (
    CampaignReport,
    MutantKill,
    ProgramVerdict,
    run_campaign,
    run_mutation_kill,
)
from repro.testing.fuzzgen import PROFILES, FuzzProfile, generate_program, iter_programs
from repro.testing.mutants import MUTANTS, Mutant, get_mutant
from repro.testing.oracles import ORACLES, Discrepancy, Oracle, run_oracles
from repro.testing.shrink import ShrinkResult, shrink

__all__ = [
    "CampaignReport",
    "CorpusEntry",
    "Discrepancy",
    "FaultInjector",
    "FaultStats",
    "FuzzProfile",
    "InjectedAtomicityViolation",
    "InjectedCycleError",
    "InjectedMemoryError",
    "MUTANTS",
    "Mutant",
    "MutantKill",
    "ORACLES",
    "Oracle",
    "PROFILES",
    "ProgramVerdict",
    "ShrinkResult",
    "generate_program",
    "get_mutant",
    "inject_faults",
    "iter_programs",
    "load_corpus",
    "load_entry",
    "run_campaign",
    "run_mutation_kill",
    "run_oracles",
    "save_entry",
    "shrink",
]
