"""Testing support: deterministic fault injection for the engine."""

from repro.testing.faults import (
    FaultInjector,
    FaultStats,
    InjectedAtomicityViolation,
    InjectedCycleError,
    InjectedMemoryError,
    inject_faults,
)

__all__ = [
    "FaultInjector",
    "FaultStats",
    "InjectedAtomicityViolation",
    "InjectedCycleError",
    "InjectedMemoryError",
    "inject_faults",
]
