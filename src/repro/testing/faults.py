"""Deterministic (seeded) fault injection for the enumeration engine.

The enumerator's resilience claims — speculation rollback never corrupts
the ``seen_states``/``finished`` bookkeeping, and allocation pressure
degrades into a labeled partial result — are only trustworthy if they
are exercised.  :class:`FaultInjector` monkeypatches the three places a
branch of Load Resolution can fail:

* **graph insertion** (:meth:`ExecutionGraph.add_edge`),
* **the Store Atomicity closure** (:func:`close_store_atomicity` as used
  by :mod:`repro.core.execution`),
* **load resolution itself** (:meth:`Execution.resolve_load`),

raising :class:`InjectedCycleError` / :class:`InjectedAtomicityViolation`
/ :class:`InjectedMemoryError` with a seeded per-call probability.  The
injected types *are* the engine's real failure types, so the engine's
rollback and degradation paths handle them identically to organic
failures.

Injection is scoped to calls made **during** ``resolve_load``: the
enumerator has explicit rollback handling there, whereas a fault during
initial graph construction would (correctly) surface as an engine error.

Usage::

    with inject_faults(seed=7, rate=0.05) as injector:
        result = enumerate_behaviors(program, model)
    assert result.complete or result.reason is not None
    print(injector.stats)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import AtomicityViolation, CycleError
import repro.core.execution as _execution_module
from repro.core.execution import Execution
from repro.core.graph import ExecutionGraph

#: Injection sites, in the order the engine reaches them.
SITES = ("graph", "closure", "resolve")

#: Fault kinds an injector may raise.
KINDS = ("cycle", "atomicity", "memory")


class InjectedCycleError(CycleError):
    """A deterministically injected graph-insertion cycle fault."""

    transient = True

    def __init__(self, site: str) -> None:
        self.site = site
        Exception.__init__(self, f"injected cycle fault at site {site!r}")


class InjectedAtomicityViolation(AtomicityViolation):
    """A deterministically injected Store Atomicity closure fault."""

    transient = True

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"injected atomicity fault at site {site!r}")


class InjectedMemoryError(MemoryError):
    """A deterministically injected allocation failure."""

    transient = True

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"injected memory fault at site {site!r}")


_EXCEPTION_BY_KIND = {
    "cycle": InjectedCycleError,
    "atomicity": InjectedAtomicityViolation,
    "memory": InjectedMemoryError,
}


@dataclass
class FaultStats:
    """What an injector actually did: calls seen and faults raised."""

    calls: dict[str, int] = field(default_factory=lambda: {site: 0 for site in SITES})
    injected: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


class FaultInjector:
    """Context manager injecting seeded faults into the engine.

    ``rate`` is the per-eligible-call fault probability; ``kinds`` and
    ``sites`` restrict what is raised and where.  ``max_faults`` caps the
    total number of injections (None = unlimited).  The same seed always
    produces the same fault sequence for the same workload, so failures
    found by a fuzzing sweep replay exactly.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.01,
        kinds: tuple[str, ...] = KINDS,
        sites: tuple[str, ...] = SITES,
        max_faults: int | None = None,
    ) -> None:
        unknown = set(kinds) - set(KINDS) | set(sites) - set(SITES)
        if unknown:
            raise ValueError(f"unknown fault kinds/sites: {sorted(unknown)}")
        self.rate = rate
        self.kinds = tuple(kinds)
        self.sites = tuple(sites)
        self.max_faults = max_faults
        self.stats = FaultStats()
        self._rng = random.Random(seed)
        self._depth = 0  # >0 while inside resolve_load (the injection scope)
        self._originals: dict[str, object] = {}

    # ------------------------------------------------------------------

    def _maybe_inject(self, site: str) -> None:
        if self._depth == 0 or site not in self.sites:
            return
        self.stats.calls[site] += 1
        if self.max_faults is not None and self.stats.total_injected >= self.max_faults:
            return
        if self._rng.random() >= self.rate:
            return
        kind = self._rng.choice(self.kinds)
        key = (site, kind)
        self.stats.injected[key] = self.stats.injected.get(key, 0) + 1
        raise _EXCEPTION_BY_KIND[kind](site)

    # ------------------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        injector = self
        original_add_edge = ExecutionGraph.add_edge
        original_closure = _execution_module.close_store_atomicity
        original_resolve = Execution.resolve_load
        self._originals = {
            "add_edge": original_add_edge,
            "closure": original_closure,
            "resolve": original_resolve,
        }

        def patched_add_edge(self, *args, **kwargs):
            injector._maybe_inject("graph")
            return original_add_edge(self, *args, **kwargs)

        def patched_closure(*args, **kwargs):
            injector._maybe_inject("closure")
            return original_closure(*args, **kwargs)

        def patched_resolve(self, *args, **kwargs):
            injector._depth += 1
            try:
                injector._maybe_inject("resolve")
                return original_resolve(self, *args, **kwargs)
            finally:
                injector._depth -= 1

        ExecutionGraph.add_edge = patched_add_edge
        _execution_module.close_store_atomicity = patched_closure
        Execution.resolve_load = patched_resolve
        return self

    def __exit__(self, *exc_info) -> None:
        ExecutionGraph.add_edge = self._originals["add_edge"]
        _execution_module.close_store_atomicity = self._originals["closure"]
        Execution.resolve_load = self._originals["resolve"]
        self._originals = {}


def inject_faults(
    seed: int = 0,
    rate: float = 0.01,
    kinds: tuple[str, ...] = KINDS,
    sites: tuple[str, ...] = SITES,
    max_faults: int | None = None,
) -> FaultInjector:
    """Convenience constructor mirroring :class:`FaultInjector`."""
    return FaultInjector(seed=seed, rate=rate, kinds=kinds, sites=sites, max_faults=max_faults)
