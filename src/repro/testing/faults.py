"""Deterministic (seeded) fault injection for the enumeration engine.

The enumerator's resilience claims — speculation rollback never corrupts
the ``seen_states``/``finished`` bookkeeping, and allocation pressure
degrades into a labeled partial result — are only trustworthy if they
are exercised.  :class:`FaultInjector` monkeypatches the three places a
branch of Load Resolution can fail:

* **graph insertion** (:meth:`ExecutionGraph.add_edge`),
* **the Store Atomicity closure** (:func:`close_store_atomicity` as used
  by :mod:`repro.core.execution`),
* **load resolution itself** (:meth:`Execution.resolve_load`),

raising :class:`InjectedCycleError` / :class:`InjectedAtomicityViolation`
/ :class:`InjectedMemoryError` with a seeded per-call probability.  The
injected types *are* the engine's real failure types, so the engine's
rollback and degradation paths handle them identically to organic
failures.

Injection is scoped to calls made **during** ``resolve_load``: the
enumerator has explicit rollback handling there, whereas a fault during
initial graph construction would (correctly) surface as an engine error.

Usage::

    with inject_faults(seed=7, rate=0.05) as injector:
        result = enumerate_behaviors(program, model)
    assert result.complete or result.reason is not None
    print(injector.stats)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import AtomicityViolation, CycleError
import repro.core.execution as _execution_module
from repro.core.execution import Execution
from repro.core.graph import ExecutionGraph

#: Injection sites, in the order the engine reaches them.
SITES = ("graph", "closure", "resolve")

#: Fault kinds an injector may raise.
KINDS = ("cycle", "atomicity", "memory")


class InjectedCycleError(CycleError):
    """A deterministically injected graph-insertion cycle fault."""

    transient = True

    def __init__(self, site: str) -> None:
        self.site = site
        Exception.__init__(self, f"injected cycle fault at site {site!r}")


class InjectedAtomicityViolation(AtomicityViolation):
    """A deterministically injected Store Atomicity closure fault."""

    transient = True

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"injected atomicity fault at site {site!r}")


class InjectedMemoryError(MemoryError):
    """A deterministically injected allocation failure."""

    transient = True

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"injected memory fault at site {site!r}")


_EXCEPTION_BY_KIND = {
    "cycle": InjectedCycleError,
    "atomicity": InjectedAtomicityViolation,
    "memory": InjectedMemoryError,
}


@dataclass
class FaultStats:
    """What an injector actually did: calls seen and faults raised."""

    calls: dict[str, int] = field(default_factory=lambda: {site: 0 for site in SITES})
    injected: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


class FaultInjector:
    """Context manager injecting seeded faults into the engine.

    ``rate`` is the per-eligible-call fault probability; ``kinds`` and
    ``sites`` restrict what is raised and where.  ``max_faults`` caps the
    total number of injections (None = unlimited).  The same seed always
    produces the same fault sequence for the same workload, so failures
    found by a fuzzing sweep replay exactly.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.01,
        kinds: tuple[str, ...] = KINDS,
        sites: tuple[str, ...] = SITES,
        max_faults: int | None = None,
    ) -> None:
        unknown = set(kinds) - set(KINDS) | set(sites) - set(SITES)
        if unknown:
            raise ValueError(f"unknown fault kinds/sites: {sorted(unknown)}")
        self.rate = rate
        self.kinds = tuple(kinds)
        self.sites = tuple(sites)
        self.max_faults = max_faults
        self.stats = FaultStats()
        self._rng = random.Random(seed)
        self._depth = 0  # >0 while inside resolve_load (the injection scope)
        self._originals: dict[str, object] = {}

    # ------------------------------------------------------------------

    def _maybe_inject(self, site: str) -> None:
        if self._depth == 0 or site not in self.sites:
            return
        self.stats.calls[site] += 1
        if self.max_faults is not None and self.stats.total_injected >= self.max_faults:
            return
        if self._rng.random() >= self.rate:
            return
        kind = self._rng.choice(self.kinds)
        key = (site, kind)
        self.stats.injected[key] = self.stats.injected.get(key, 0) + 1
        raise _EXCEPTION_BY_KIND[kind](site)

    # ------------------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        injector = self
        original_add_edge = ExecutionGraph.add_edge
        original_closure = _execution_module.close_store_atomicity
        original_resolve = Execution.resolve_load
        self._originals = {
            "add_edge": original_add_edge,
            "closure": original_closure,
            "resolve": original_resolve,
        }

        def patched_add_edge(self, *args, **kwargs):
            injector._maybe_inject("graph")
            return original_add_edge(self, *args, **kwargs)

        def patched_closure(*args, **kwargs):
            injector._maybe_inject("closure")
            return original_closure(*args, **kwargs)

        def patched_resolve(self, *args, **kwargs):
            injector._depth += 1
            try:
                injector._maybe_inject("resolve")
                return original_resolve(self, *args, **kwargs)
            finally:
                injector._depth -= 1

        ExecutionGraph.add_edge = patched_add_edge
        _execution_module.close_store_atomicity = patched_closure
        Execution.resolve_load = patched_resolve
        return self

    def __exit__(self, *exc_info) -> None:
        ExecutionGraph.add_edge = self._originals["add_edge"]
        _execution_module.close_store_atomicity = self._originals["closure"]
        Execution.resolve_load = self._originals["resolve"]
        self._originals = {}


def inject_faults(
    seed: int = 0,
    rate: float = 0.01,
    kinds: tuple[str, ...] = KINDS,
    sites: tuple[str, ...] = SITES,
    max_faults: int | None = None,
) -> FaultInjector:
    """Convenience constructor mirroring :class:`FaultInjector`."""
    return FaultInjector(seed=seed, rate=rate, kinds=kinds, sites=sites, max_faults=max_faults)


# ----------------------------------------------------------------------
# service-layer faults (PR 6)
#
# The job server's robustness claims — a failed WAL write never loses an
# acknowledged job, a crashed worker leads to bounded retry then
# quarantine, a clock jump past a deadline fails the job cleanly — need
# the same seeded, replayable treatment as the engine faults above.

#: Service-layer injection sites.
SERVICE_SITES = ("wal", "worker", "clock")


class InjectedWALWriteError(OSError):
    """A deterministically injected WAL disk-write failure."""

    transient = True

    def __init__(self) -> None:
        super().__init__("injected WAL write failure (disk full)")


class ServiceFaultInjector:
    """Seeded fault injection for the analysis service.

    * ``wal_rate`` — probability that a :class:`WriteAheadLog` disk
      write raises :class:`InjectedWALWriteError` (surfacing as
      :class:`~repro.errors.WALError` exactly like a real ``OSError``);
    * ``worker_crash_rate`` — probability that a slice submission dies
      with ``BrokenProcessPool``, exactly what a SIGKILLed worker
      process produces;
    * ``clock_jumps`` — ``{call_index: delta_seconds}``: the wrapped
      clock (:meth:`clock`) jumps forward by ``delta`` at the given call
      ordinal, driving deadline and rate-limit logic deterministically.

    ``max_faults`` caps total injections; the same seed replays the same
    fault sequence for the same workload.
    """

    def __init__(
        self,
        seed: int = 0,
        wal_rate: float = 0.0,
        worker_crash_rate: float = 0.0,
        clock_jumps: dict[int, float] | None = None,
        max_faults: int | None = None,
    ) -> None:
        self.wal_rate = wal_rate
        self.worker_crash_rate = worker_crash_rate
        self.clock_jumps = dict(clock_jumps or {})
        self.max_faults = max_faults
        self.stats = FaultStats(
            calls={site: 0 for site in SERVICE_SITES}, injected={}
        )
        self._rng = random.Random(seed)
        self._clock_calls = 0
        self._clock_offset = 0.0
        self._originals: dict[str, object] = {}

    # ------------------------------------------------------------------

    def _should_inject(self, site: str, rate: float) -> bool:
        self.stats.calls[site] += 1
        if rate <= 0:
            return False
        if self.max_faults is not None and self.stats.total_injected >= self.max_faults:
            return False
        if self._rng.random() >= rate:
            return False
        key = (site, "injected")
        self.stats.injected[key] = self.stats.injected.get(key, 0) + 1
        return True

    def clock(self, base=None):
        """A monotonic clock that applies the configured jumps; hand it
        to :class:`~repro.service.server.ServiceConfig`."""
        import time as _time

        base = base or _time.monotonic

        def _clock() -> float:
            self._clock_calls += 1
            jump = self.clock_jumps.get(self._clock_calls)
            if jump is not None:
                self._clock_offset += jump
                key = ("clock", "jump")
                self.stats.injected[key] = self.stats.injected.get(key, 0) + 1
            self.stats.calls["clock"] += 1
            return base() + self._clock_offset

        return _clock

    # ------------------------------------------------------------------

    def __enter__(self) -> "ServiceFaultInjector":
        from concurrent.futures.process import BrokenProcessPool

        from repro.service import pool as _pool_module
        from repro.service import wal as _wal_module

        injector = self
        original_append = _wal_module.WriteAheadLog.append
        original_submit = _pool_module.WorkerPool._submit_slice
        self._originals = {"append": original_append, "submit": original_submit}

        def patched_append(self, event, job_id, data=None):
            if injector._should_inject("wal", injector.wal_rate):
                from repro.errors import WALError

                raise WALError(f"WAL append failed: {InjectedWALWriteError()}")
            return original_append(self, event, job_id, data)

        def patched_submit(self, payload):
            if injector._should_inject("worker", injector.worker_crash_rate):
                raise BrokenProcessPool(
                    "injected worker crash: a process in the process pool "
                    "was terminated abruptly"
                )
            return original_submit(self, payload)

        _wal_module.WriteAheadLog.append = patched_append
        _pool_module.WorkerPool._submit_slice = patched_submit
        return self

    def __exit__(self, *exc_info) -> None:
        from repro.service import pool as _pool_module
        from repro.service import wal as _wal_module

        _wal_module.WriteAheadLog.append = self._originals["append"]
        _pool_module.WorkerPool._submit_slice = self._originals["submit"]
        self._originals = {}


def inject_service_faults(
    seed: int = 0,
    wal_rate: float = 0.0,
    worker_crash_rate: float = 0.0,
    clock_jumps: dict[int, float] | None = None,
    max_faults: int | None = None,
) -> ServiceFaultInjector:
    """Convenience constructor mirroring :class:`ServiceFaultInjector`."""
    return ServiceFaultInjector(
        seed=seed,
        wal_rate=wal_rate,
        worker_crash_rate=worker_crash_rate,
        clock_jumps=clock_jumps,
        max_faults=max_faults,
    )
