"""Seeded mutants for proving the fuzzer can actually catch bugs.

Each :class:`Mutant` is a reversible monkeypatch that plants one classic
memory-model-implementation bug — a flipped reordering-table entry, a
dropped Store Atomicity closure rule, a broken candidate-store filter —
into exactly *one* side of a differential oracle.  The mutation-kill
harness (``repro fuzz --mutants``) then demands that the fuzzer detect
every mutant within its budget and shrink the counterexample to a tiny
reproducer.

Design rules (learned the hard way):

* A mutant must break only one implementation.  Patching
  :meth:`MemoryModel.requirement` affects both the axiomatic enumerator
  *and* the dataflow machine, so table-flip mutants are restricted to
  sc/tso/pso — their reference machines (interleaver, store buffers) are
  hardware-style and never consult the table.  Weak-model mutants attack
  enumerator-only internals (closure, candidate filters) or machine-only
  internals (store-buffer forwarding) instead.
* Patches are process-local.  The parallel engine's subprocess workers
  do not see them, which is fine — the mutation campaign runs with
  ``jobs=1`` so every oracle observes the mutated code.

The patch/restore discipline follows ``testing/faults.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import ReproError
from repro.isa.instructions import OpClass
from repro.models.base import MemoryModel, OrderRequirement

Undo = Callable[[], None]


@dataclass(frozen=True)
class Mutant:
    """One seeded bug: a name, a story, and a reversible patch."""

    name: str
    description: str
    install: Callable[[], Undo]

    @contextmanager
    def applied(self) -> Iterator[None]:
        undo = self.install()
        try:
            yield
        finally:
            undo()


# ---------------------------------------------------------------------------
# reordering-table flips (axiomatic side only: sc/tso/pso reference
# machines never read the table)


def _relax_table_entry(model_name: str, first: OpClass, second: OpClass) -> Undo:
    original = MemoryModel.requirement

    def mutated(self, first_instr, second_instr):
        if (
            self.name == model_name
            and first_instr.op_class is first
            and second_instr.op_class is second
        ):
            return OrderRequirement.NONE
        return original(self, first_instr, second_instr)

    MemoryModel.requirement = mutated  # type: ignore[method-assign]

    def undo() -> None:
        MemoryModel.requirement = original  # type: ignore[method-assign]

    return undo


def _install_sc_load_load() -> Undo:
    return _relax_table_entry("sc", OpClass.LOAD, OpClass.LOAD)


def _install_tso_store_store() -> Undo:
    return _relax_table_entry("tso", OpClass.STORE, OpClass.STORE)


def _install_pso_load_store() -> Undo:
    return _relax_table_entry("pso", OpClass.LOAD, OpClass.STORE)


# ---------------------------------------------------------------------------
# Store Atomicity closure dropped (axiomatic side only)


def _install_closure_dropped() -> Undo:
    import repro.core.execution as execution_module

    original = execution_module.close_store_atomicity
    execution_module.close_store_atomicity = lambda graph, include_rule_c=True: 0

    def undo() -> None:
        execution_module.close_store_atomicity = original

    return undo


# ---------------------------------------------------------------------------
# candidate-store filters broken (axiomatic side only)


def _install_candidates_drop_init() -> Undo:
    """The classic off-by-one in candidates(L): forget that the init
    store stays observable until somebody overwrites it in ⊑."""
    import repro.core.enumerate as enumerate_module
    from repro.core.node import INIT_TID

    original = enumerate_module.candidate_stores

    def mutated(execution, load, stats=None):
        result = original(execution, load, stats)
        non_init = [store for store in result if store.tid != INIT_TID]
        return non_init if non_init else result

    enumerate_module.candidate_stores = mutated

    def undo() -> None:
        enumerate_module.candidate_stores = original

    return undo


def _install_bypass_filter_disabled() -> Undo:
    """Forget store-buffer shadowing in the axiomatic bypass filter:
    TSO/PSO loads may again read *older* local buffered stores."""
    import repro.core.candidates as candidates_module

    original = candidates_module._filter_bypass
    candidates_module._filter_bypass = lambda execution, load, stores: stores

    def undo() -> None:
        candidates_module._filter_bypass = original

    return undo


def _install_prune_unsound() -> Undo:
    """Make the dataflow pruning reject sound candidates: with facts
    present, every non-init store is pruned from the scan."""
    import repro.core.candidates as candidates_module
    from repro.core.node import INIT_TID

    original = candidates_module._static_reject

    def mutated(execution, load, store):
        if execution.facts is not None and store.tid != INIT_TID:
            return True
        return original(execution, load, store)

    candidates_module._static_reject = mutated

    def undo() -> None:
        candidates_module._static_reject = original

    return undo


# ---------------------------------------------------------------------------
# operational side broken (machines only)


def _install_forwarding_disabled() -> Undo:
    """Store-buffer machines stop forwarding: loads read memory even
    when their own buffer holds a newer same-address store."""
    import repro.operational.storebuffer as storebuffer_module

    original = storebuffer_module._forward
    storebuffer_module._forward = lambda buffer, address: None

    def undo() -> None:
        storebuffer_module._forward = original

    return undo


MUTANTS: tuple[Mutant, ...] = (
    Mutant(
        "sc-load-load-relaxed",
        "SC reordering table wrongly allows Load-Load reordering "
        "(axiomatic only; the interleaver is table-free)",
        _install_sc_load_load,
    ),
    Mutant(
        "tso-store-store-relaxed",
        "TSO reordering table wrongly allows Store-Store reordering "
        "(turns TSO into PSO on the axiomatic side only)",
        _install_tso_store_store,
    ),
    Mutant(
        "pso-load-store-relaxed",
        "PSO reordering table wrongly allows Load-Store reordering "
        "(axiomatic side drifts toward WEAK)",
        _install_pso_load_store,
    ),
    Mutant(
        "closure-dropped",
        "Store Atomicity closure rules silently skipped during "
        "axiomatic edge propagation",
        _install_closure_dropped,
    ),
    Mutant(
        "candidates-drop-init",
        "candidates(L) forgets the init store whenever any other "
        "same-address store exists",
        _install_candidates_drop_init,
    ),
    Mutant(
        "bypass-filter-disabled",
        "axiomatic store-load bypass filter stops shadowing older "
        "local buffered stores",
        _install_bypass_filter_disabled,
    ),
    Mutant(
        "prune-unsound",
        "dataflow pruning rejects every non-init candidate store "
        "(pruned enumeration loses behaviors)",
        _install_prune_unsound,
    ),
    Mutant(
        "forwarding-disabled",
        "store-buffer machines stop forwarding from the local buffer",
        _install_forwarding_disabled,
    ),
)

_BY_NAME = {mutant.name: mutant for mutant in MUTANTS}


def get_mutant(name: str) -> Mutant:
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ReproError(f"unknown mutant {name!r}; known mutants: {known}") from None


__all__ = ["MUTANTS", "Mutant", "get_mutant"]
