"""N-way differential oracles over the repository's implementations.

For one program the repository has many independent answers to "what can
happen": the axiomatic enumerator (per model), the SC interleaver, the
TSO/PSO store-buffer machines, the ≺-linearization dataflow machine, the
parallel enumeration engine, the dataflow-pruned enumeration, and the
static analyses.  Each :class:`Oracle` here checks one agreement that is
a *theorem* of the codebase; a :class:`Discrepancy` therefore always
means a bug (in an implementation — or, during mutation testing, the
seeded mutant doing its job).

All verdicts are deterministic: enumeration budgets are counting budgets
(never wall-clock), and a program whose state space exceeds them is
reported as *skipped* for that oracle, not compared partially.

The :class:`OracleContext` memoizes enumerations so that the ten
oracles cost ~six enumerations per program rather than ~twenty (the
fence-repair oracle's fenced variants are the one extra cost, and it
bounds itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.enumerate import (
    EnumerationLimits,
    EnumerationResult,
    ParallelEnumerationConfig,
    enumerate_behaviors,
)
from repro.errors import ReproError
from repro.isa.program import Program
from repro.models.registry import get_model
from repro.operational.dataflow import run_dataflow
from repro.operational.sc import run_sc
from repro.operational.storebuffer import run_pso, run_tso

#: Budgets used by fuzzing: counting-only (deterministic), sized so that
#: every profile-shaped program fits comfortably.
FUZZ_LIMITS = EnumerationLimits(max_behaviors=250_000, max_executions=50_000)


class OracleSkip(ReproError):
    """An oracle declined to compare (budget exceeded / not applicable)."""


@dataclass(frozen=True)
class Discrepancy:
    """Two implementations disagreed on one program."""

    oracle: str
    program: str
    detail: str
    model: str | None = None

    def __str__(self) -> str:
        model = f" [{self.model}]" if self.model else ""
        return f"{self.oracle}{model} on {self.program}: {self.detail}"


@dataclass
class OracleContext:
    """Shared per-program cache: axiomatic enumerations are memoized by
    (model, parallel, pruned) so oracles can overlap their inputs."""

    program: Program
    limits: EnumerationLimits = FUZZ_LIMITS
    #: optional :class:`~repro.cache.store.BehaviorCache` shared across
    #: oracles, programs and campaigns.  Only the plain sequential
    #: enumeration goes through it: the parallel- and pruned-engine
    #: variants exist to *cross-check* those engines, and serving them
    #: from a memo store would quietly turn the N-way comparison into
    #: cached-result == cached-result.
    cache: object = None
    _results: dict = field(default_factory=dict)
    _facts: object = None

    def result(
        self, model_name: str, *, parallel: bool = False, pruned: bool = False
    ) -> EnumerationResult:
        key = (model_name, parallel, pruned)
        if key not in self._results:
            facts = None
            if pruned:
                facts = self.facts()
            config = ParallelEnumerationConfig(workers=2) if parallel else None
            cache = self.cache if not parallel and not pruned else None
            self._results[key] = enumerate_behaviors(
                self.program,
                get_model(model_name),
                self.limits,
                facts=facts,
                parallel=config,
                cache=cache,
            )
        return self._results[key]

    def outcomes(self, model_name: str, **kwargs) -> frozenset:
        """Complete outcome set, or :class:`OracleSkip` on a partial result."""
        result = self.result(model_name, **kwargs)
        if not result.complete:
            raise OracleSkip(
                f"{model_name} enumeration exhausted its budget ({result.status})"
            )
        return result.register_outcomes()

    def facts(self):
        if self._facts is None:
            from repro.analysis.static import compute_static_facts

            self._facts = compute_static_facts(self.program)
        return self._facts

    def enumeration_reasons(self) -> dict[str, str]:
        """Per-variant enumeration status, keyed by the *coverage label*
        of each memoized run: the model name plus ``+par`` / ``+pruned``
        engine suffixes (``"weak"``, ``"weak+par"``, ``"tso+pruned"``,
        …).  The value is ``"complete"`` or the
        :class:`~repro.core.enumerate.ExhaustionReason` value of a
        partial run — one axis of the coverage grid
        (:mod:`repro.testing.coverage`)."""
        reasons: dict[str, str] = {}
        for (model_name, parallel, pruned), result in self._results.items():
            label = model_name
            if parallel:
                label += "+par"
            if pruned:
                label += "+pruned"
            reasons[label] = (
                "complete" if result.complete else result.reason.value
            )
        return reasons


def _diff(left: frozenset, right: frozenset, left_name: str, right_name: str) -> str:
    """Human-readable outcome-set difference (truncated)."""

    def render(outcome) -> str:
        return "{" + " ".join(
            f"{thread}:{register}={value}"
            for (thread, register), value in sorted(outcome, key=repr)
        ) + "}"

    parts = []
    only_left = sorted(map(render, left - right))
    only_right = sorted(map(render, right - left))
    if only_left:
        parts.append(f"only {left_name}: {', '.join(only_left[:3])}"
                     + (f" (+{len(only_left) - 3} more)" if len(only_left) > 3 else ""))
    if only_right:
        parts.append(f"only {right_name}: {', '.join(only_right[:3])}"
                     + (f" (+{len(only_right) - 3} more)" if len(only_right) > 3 else ""))
    return "; ".join(parts) or "outcome sets differ"


@dataclass(frozen=True)
class Oracle:
    """One differential agreement check.

    ``touches`` names the coverage labels
    (:meth:`OracleContext.enumeration_reasons` keys) of every
    enumeration variant the check may request — the model axis its
    verdicts contribute to in the coverage grid.
    """

    name: str
    description: str
    check: Callable[[OracleContext], list[Discrepancy]]
    applicable: Callable[[Program], bool] = lambda program: True
    touches: tuple[str, ...] = ()


def _mismatch(ctx, oracle, model, axiomatic, reference, ref_name) -> list[Discrepancy]:
    if axiomatic == reference:
        return []
    return [
        Discrepancy(
            oracle=oracle,
            program=ctx.program.name,
            model=model,
            detail=_diff(axiomatic, reference, "axiomatic", ref_name),
        )
    ]


# ---------------------------------------------------------------------------
# axiomatic vs operational, per model


def _check_sc(ctx: OracleContext) -> list[Discrepancy]:
    return _mismatch(ctx, "axiomatic-vs-sc", "sc", ctx.outcomes("sc"),
                     run_sc(ctx.program).outcomes, "sc-machine")


def _check_tso(ctx: OracleContext) -> list[Discrepancy]:
    return _mismatch(ctx, "axiomatic-vs-tso", "tso", ctx.outcomes("tso"),
                     run_tso(ctx.program).outcomes, "tso-machine")


def _check_pso(ctx: OracleContext) -> list[Discrepancy]:
    return _mismatch(ctx, "axiomatic-vs-pso", "pso", ctx.outcomes("pso"),
                     run_pso(ctx.program).outcomes, "pso-machine")


def _check_dataflow(ctx: OracleContext) -> list[Discrepancy]:
    return _mismatch(ctx, "axiomatic-vs-dataflow", "weak", ctx.outcomes("weak"),
                     run_dataflow(ctx.program, "weak").outcomes, "dataflow-machine")


# ---------------------------------------------------------------------------
# engine-vs-engine


def _check_parallel(ctx: OracleContext) -> list[Discrepancy]:
    """PR 4's theorem: the sharded parallel engine is byte-identical to
    the sequential engine for any worker count."""
    sequential = ctx.result("weak")
    parallel = ctx.result("weak", parallel=True)
    if not sequential.complete or not parallel.complete:
        raise OracleSkip("enumeration exhausted its budget")
    problems = []
    if sequential.register_outcomes() != parallel.register_outcomes():
        problems.append(_diff(parallel.register_outcomes(),
                              sequential.register_outcomes(),
                              "parallel", "sequential"))
    elif len(sequential.executions) != len(parallel.executions):
        problems.append(
            f"execution sets differ: {len(parallel.executions)} parallel "
            f"vs {len(sequential.executions)} sequential"
        )
    return [
        Discrepancy("sequential-vs-parallel", ctx.program.name, detail, "weak")
        for detail in problems
    ]


def _check_solver(ctx: OracleContext) -> list[Discrepancy]:
    """PR 8's theorem: the constraint solver (SAT encoding of the
    reorder+atomicity axioms, AllSAT + exact replay) produces the same
    behavior set as the axiomatic enumerator — compared byte-for-byte by
    ``loadstore_key``, one bypassing model and one store-atomic model."""
    from repro.analysis.solver import solve_behaviors

    problems = []
    for model_name in ("tso", "weak"):
        axiomatic = ctx.result(model_name, pruned=True)
        if not axiomatic.complete:
            raise OracleSkip(
                f"{model_name} enumeration exhausted its budget ({axiomatic.status})"
            )
        solved = solve_behaviors(
            ctx.program, model_name, ctx.limits, facts=ctx.facts()
        )
        if not solved.complete:
            raise OracleSkip(f"{model_name} solver exhausted its budget")
        axiomatic_keys = sorted(repr(e.loadstore_key()) for e in axiomatic.executions)
        solved_keys = sorted(repr(e.loadstore_key()) for e in solved.executions)
        if axiomatic_keys != solved_keys:
            extra = len(set(solved_keys) - set(axiomatic_keys))
            missing = len(set(axiomatic_keys) - set(solved_keys))
            problems.append(
                (
                    f"behavior sets differ under {model_name}: solver found "
                    f"{len(solved_keys)} vs {len(axiomatic_keys)} axiomatic "
                    f"({extra} extra, {missing} missing)",
                    model_name,
                )
            )
    return [
        Discrepancy("solver-vs-axiomatic", ctx.program.name, detail, model)
        for detail, model in problems
    ]


def _check_pruned(ctx: OracleContext) -> list[Discrepancy]:
    """PR 3's theorem: dataflow-pruned enumeration is a pure accelerator
    — the behavior set is identical with and without facts."""
    plain = ctx.result("weak")
    pruned = ctx.result("weak", pruned=True)
    if not plain.complete or not pruned.complete:
        raise OracleSkip("enumeration exhausted its budget")
    problems = []
    if plain.register_outcomes() != pruned.register_outcomes():
        problems.append(_diff(pruned.register_outcomes(), plain.register_outcomes(),
                              "pruned", "unpruned"))
    elif len(plain.executions) != len(pruned.executions):
        problems.append(
            f"execution sets differ: {len(pruned.executions)} pruned "
            f"vs {len(plain.executions)} unpruned"
        )
    return [
        Discrepancy("pruned-vs-unpruned", ctx.program.name, detail, "weak")
        for detail in problems
    ]


#: Outcome-set inclusions that are theorems of the model definitions.
#: Reordering and store atomicity are independent axes (the paper's
#: thesis), so the lattice forks: TSO/PSO relax atomicity via the
#: store→load bypass while WEAK stays store-atomic.  ``pso ⊆ weak`` is
#: *not* a theorem — PSO's forwarding admits outcomes the store-atomic
#: WEAK forbids (see tests/corpus/fz-fences-281-min.litmus) — so only
#: same-axis edges are asserted: pure table relaxations with an
#: identical bypass regime, plus bypass addition (sc → tso) and
#: speculation addition (weak → weak-spec), each of which only ever
#: adds behaviors.
INCLUSION_EDGES: tuple[tuple[str, str], ...] = (
    ("sc", "tso"),
    ("tso", "pso"),
    ("sc", "weak"),
    ("weak", "weak-spec"),
)


def _check_inclusion(ctx: OracleContext) -> list[Discrepancy]:
    """The model lattice on outcome sets: sc ⊆ tso ⊆ pso (bypass family)
    and sc ⊆ weak ⊆ weak-spec (store-atomic family)."""
    problems = []
    for weaker, stronger in INCLUSION_EDGES:
        left = ctx.outcomes(weaker)
        right = ctx.outcomes(stronger)
        if not left <= right:
            lost = len(left - right)
            problems.append(
                Discrepancy(
                    "inclusion-chain",
                    ctx.program.name,
                    f"{weaker} ⊄ {stronger}: {lost} outcome(s) lost",
                    f"{weaker}<={stronger}",
                )
            )
    return problems


# ---------------------------------------------------------------------------
# static analysis vs enumeration ground truth


def _check_static(ctx: OracleContext) -> list[Discrepancy]:
    """Soundness and monotonicity of the static delay-set analysis.

    * *Soundness*: if the precise analysis reports no delay edges under a
      model, the program is robust — enumerated outcomes equal SC's.
    * *Monotonicity*: the precise (dataflow-backed) analysis never
      reports a delay edge the syntactic analysis missed.
    """
    from repro.analysis.static import analyze_program

    problems = []
    sc_outcomes = ctx.outcomes("sc")
    for model_name in ("tso", "weak"):
        precise = analyze_program(ctx.program, model_name, precise=True,
                                  facts=ctx.facts())
        syntactic = analyze_program(ctx.program, model_name, precise=False)
        precise_edges = {(d.thread, d.first_index, d.second_index)
                         for d in precise.delays}
        syntactic_edges = {(d.thread, d.first_index, d.second_index)
                           for d in syntactic.delays}
        if not precise_edges <= syntactic_edges:
            extra = sorted(precise_edges - syntactic_edges)
            problems.append(
                Discrepancy(
                    "static-vs-enumeration",
                    ctx.program.name,
                    f"precise analysis invented delay edges {extra[:4]}",
                    model_name,
                )
            )
        if not precise.delays:
            model_outcomes = ctx.outcomes(model_name)
            if model_outcomes != sc_outcomes:
                problems.append(
                    Discrepancy(
                        "static-vs-enumeration",
                        ctx.program.name,
                        "no delay edges reported but the program is not "
                        "SC-robust: " + _diff(model_outcomes, sc_outcomes,
                                              model_name, "sc"),
                        model_name,
                    )
                )
    return problems


def _check_speculation(ctx: OracleContext) -> list[Discrepancy]:
    """PR 3's speculation-safety theorem: ``all_safe`` implies the
    alias-speculating model's outcome set equals the base model's."""
    from repro.analysis.static import speculation_safety

    report = speculation_safety(ctx.program, "weak", ctx.facts())
    if not report.all_safe:
        return []  # unsafe loads are allowed; nothing to cross-check
    weak = ctx.outcomes("weak")
    spec = ctx.outcomes("weak-spec")
    if weak == spec:
        return []
    return [
        Discrepancy(
            "speculation-safety",
            ctx.program.name,
            "all loads proved speculation-safe but outcome sets differ: "
            + _diff(spec, weak, "weak-spec", "weak"),
            "weak-spec",
        )
    ]


def _distinct_valued(program: Program) -> bool:
    """Whether every location's stores write literal, pairwise-distinct
    values that also differ from the initial value, no RMW computes a
    value, and no thread stores the same location twice.  On such
    programs every critical-cycle reordering is *observable*, so the
    value-blind static repair must agree with the value-aware
    enumerative one byte-for-byte.  Programs with value coincidences
    (a store rewriting the initial value, two equal stores) or shadowed
    stores (a same-thread same-location store always overwrites the
    earlier one, so cycles through the earlier store never reach final
    memory) can have structurally-live but observationally-dead cycles,
    where the static answer legitimately over-fences."""
    from repro.isa.instructions import Rmw, Store
    from repro.isa.operands import Const

    stored: dict[str, set[int]] = {}
    for thread in program.threads:
        per_thread: set[str] = set()
        for instruction in thread.code:
            if isinstance(instruction, Rmw):
                return False  # RMWs compute/compare values dynamically
            if isinstance(instruction, Store):
                addr = instruction.addr
                value = instruction.value
                if not (isinstance(addr, Const) and isinstance(addr.value, str)):
                    return False  # register-computed address
                if not (isinstance(value, Const) and isinstance(value.value, int)):
                    return False  # computed or pointer value
                if addr.value in per_thread:
                    return False  # shadowed store
                per_thread.add(addr.value)
                values = stored.setdefault(addr.value, set())
                if value.value in values:
                    return False
                values.add(value.value)
    for location, values in stored.items():
        if program.initial_memory.get(location, 0) in values:
            return False
    return True


def _render_solutions(solutions) -> str:
    return (
        " | ".join(
            "{" + ", ".join(str(site) for site in solution) + "}"
            for solution in solutions
        )
        or "(none)"
    )


def _check_fence_repair(ctx: OracleContext) -> list[Discrepancy]:
    """PR 7's theorems: the static set-cover fence repair vs the
    enumerative robust-target synthesis.

    * *Certificates* (always): a static SC-robustness certificate under
      tso/pso/weak means the model's behavior signature (registers ×
      realizable final memory — register outcomes alone miss store-only
      cycles) stays within SC's.
    * *Repair soundness* (always): inserting any static minimal fence
      set makes the program enumeratively SC-robust — the value-blind
      cover may over-fence but never under-fences.
    * *Minimal sets* (distinct-valued programs): the static sets are
      byte-identical to ``synthesize_fences(..., target="robust")``.
      Bounded: ≤ 8 candidate sites and a 256-subset budget; over budget
      is a deterministic skip, never a partial comparison.
    """
    from repro.analysis.fencesynth import behavior_signature, synthesize_fences
    from repro.analysis.sites import insert_fences
    from repro.analysis.static import certify_robustness, repair_fences

    problems = []
    locations = ctx.program.locations()

    def signature(model_name: str) -> frozenset:
        result = ctx.result(model_name)
        if not result.complete:
            raise OracleSkip(
                f"{model_name} enumeration exhausted its budget ({result.status})"
            )
        return behavior_signature(result, locations)

    facts = ctx.facts()
    sc_signature = None
    for model_name in ("tso", "pso", "weak"):
        certificate = certify_robustness(ctx.program, model_name, facts=facts)
        if not certificate.robust:
            continue
        if sc_signature is None:
            sc_signature = signature("sc")
        model_signature = signature(model_name)
        if not model_signature <= sc_signature:
            problems.append(
                Discrepancy(
                    "static-fence-repair",
                    ctx.program.name,
                    f"certified SC-robust but enumeration found "
                    f"{len(model_signature - sc_signature)} non-SC behavior(s)",
                    model_name,
                )
            )
    if problems:
        return problems

    static = repair_fences(ctx.program, "weak", facts=facts)
    if not (static.complete and static.exact and len(static.sites) <= 8):
        return []  # agreement only promised on exact, small programs

    if sc_signature is None:
        sc_signature = signature("sc")
    for solution in static.solutions[:3]:
        fenced = insert_fences(ctx.program, solution)
        result = enumerate_behaviors(fenced, get_model("weak"), ctx.limits)
        if not result.complete:
            raise OracleSkip("fenced-variant enumeration exhausted its budget")
        if not behavior_signature(result, locations) <= sc_signature:
            problems.append(
                Discrepancy(
                    "static-fence-repair",
                    ctx.program.name,
                    "static repair {" + ", ".join(map(str, solution)) + "} "
                    "does not make the program SC-robust",
                    "weak",
                )
            )
    if problems or not _distinct_valued(ctx.program):
        return problems

    enumerative = synthesize_fences(
        ctx.program, "weak", ctx.limits, target="robust", max_subsets=256
    )
    if not enumerative.complete:
        raise OracleSkip(f"enumerative synthesis over budget ({enumerative.reason})")
    if (
        enumerative.already_forbidden != static.already_robust
        or enumerative.solutions != static.solutions
    ):
        problems.append(
            Discrepancy(
                "static-fence-repair",
                ctx.program.name,
                f"minimal fence sets differ: static "
                f"{_render_solutions(static.solutions)} "
                f"(robust={static.already_robust}) vs enumerative "
                f"{_render_solutions(enumerative.solutions)} "
                f"(robust={enumerative.already_forbidden})",
                "weak",
            )
        )
    return problems


ORACLES: tuple[Oracle, ...] = (
    Oracle("axiomatic-vs-sc",
           "axiomatic SC enumeration == interleaving machine", _check_sc,
           touches=("sc",)),
    Oracle("axiomatic-vs-tso",
           "axiomatic TSO enumeration == store-buffer machine", _check_tso,
           touches=("tso",)),
    Oracle("axiomatic-vs-pso",
           "axiomatic PSO enumeration == non-FIFO store-buffer machine",
           _check_pso, touches=("pso",)),
    Oracle("axiomatic-vs-dataflow",
           "axiomatic WEAK enumeration == ≺-linearization machine "
           "(branch-free programs)", _check_dataflow,
           applicable=lambda program: not program.has_branches(),
           touches=("weak",)),
    Oracle("sequential-vs-parallel",
           "sequential engine == sharded parallel engine (workers=2)",
           _check_parallel, touches=("weak", "weak+par")),
    Oracle("pruned-vs-unpruned",
           "dataflow-pruned enumeration == plain enumeration", _check_pruned,
           touches=("weak", "weak+pruned")),
    Oracle("solver-vs-axiomatic",
           "SAT/AllSAT constraint solver == axiomatic enumeration "
           "(loadstore_key-identical, tso and weak)", _check_solver,
           touches=("tso+pruned", "weak+pruned")),
    Oracle("inclusion-chain",
           "outcome-set lattice sc ⊆ tso ⊆ pso and sc ⊆ weak ⊆ weak-spec "
           "(the two store-atomicity regimes are incomparable)",
           _check_inclusion,
           touches=("sc", "tso", "pso", "weak", "weak-spec")),
    Oracle("static-vs-enumeration",
           "static delay analysis sound & monotone vs enumeration",
           _check_static, touches=("sc", "tso", "weak")),
    Oracle("speculation-safety",
           "statically-safe speculation admits no new outcomes",
           _check_speculation, touches=("weak", "weak-spec")),
    Oracle("static-fence-repair",
           "static set-cover repair == enumerative robust synthesis; "
           "robustness certificates confirmed by enumeration",
           _check_fence_repair, touches=("sc", "tso", "pso", "weak")),
)

_BY_NAME = {oracle.name: oracle for oracle in ORACLES}


def get_oracle(name: str) -> Oracle:
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ReproError(f"unknown oracle {name!r}; known oracles: {known}") from None


def oracle_table() -> str:
    """The docs' oracle table, rendered from the registry.

    ``docs/testing.md`` embeds this output verbatim (a doc-sync test
    enforces it), so registering a new oracle here is the single source
    of truth for the CLI listing and the documentation alike.
    """
    lines = ["| oracle | agreement checked | coverage labels |", "|---|---|---|"]
    for oracle in ORACLES:
        labels = ", ".join(f"`{label}`" for label in oracle.touches)
        lines.append(f"| `{oracle.name}` | {oracle.description} | {labels} |")
    return "\n".join(lines)


def run_oracles(
    program: Program,
    names: tuple[str, ...] | None = None,
    limits: EnumerationLimits = FUZZ_LIMITS,
    cache=None,
    context: OracleContext | None = None,
) -> tuple[list[Discrepancy], list[str]]:
    """Run every applicable oracle on ``program``.

    Returns ``(discrepancies, skipped)`` where ``skipped`` names oracles
    that declined to compare (inapplicable or over budget) — skips are
    deterministic for a given program and budget.  ``cache`` memoizes
    the baseline (sequential, unpruned) enumerations across oracles and
    across runs; verdicts are identical with and without it.

    ``context`` supplies a caller-owned :class:`OracleContext` (it must
    wrap the same ``program``); the caller can then read
    :meth:`OracleContext.enumeration_reasons` afterwards (the coverage
    grid does), or share one context across repeated replays of the same
    program.  When given, ``limits``/``cache`` are taken from it.
    """
    selected = ORACLES if names is None else tuple(get_oracle(n) for n in names)
    if context is not None and context.program is not program:
        raise ReproError("run_oracles: context wraps a different program")
    ctx = context if context is not None else OracleContext(program, limits, cache=cache)
    discrepancies: list[Discrepancy] = []
    skipped: list[str] = []
    for oracle in selected:
        if not oracle.applicable(program):
            skipped.append(oracle.name)
            continue
        try:
            discrepancies.extend(oracle.check(ctx))
        except OracleSkip:
            skipped.append(oracle.name)
    return discrepancies, skipped


__all__ = [
    "FUZZ_LIMITS",
    "Discrepancy",
    "Oracle",
    "OracleContext",
    "OracleSkip",
    "ORACLES",
    "get_oracle",
    "oracle_table",
    "run_oracles",
]
