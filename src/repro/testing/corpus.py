"""The regression corpus: minimized reproducers as replayable files.

A corpus entry is a plain ``.litmus`` assembly file with a metadata
header of ``# fuzz-<key>: <value>`` comments::

    # fuzz-seed: 18000054
    # fuzz-profile: fences
    # fuzz-oracle: axiomatic-vs-tso
    # fuzz-mutant: tso-store-store-relaxed
    # fuzz-note: minimized from 14 instructions
    test fz-fences-11-min
    init x=1
    ...

The assembly body round-trips through :func:`repro.isa.assembler.assemble`
(the ``#`` lines are ordinary comments to the assembler), so every entry
is directly loadable by the CLI and by ``tests/test_corpus.py``.

* ``oracle`` names the differential oracle the entry exercises (or, for
  mutant reproducers, the oracle that kills the mutant).
* ``mutant`` — when set, the entry only shows a discrepancy with that
  seeded mutant installed; on the healthy tree it must pass all oracles.
  Entries without a mutant are "interesting programs": they must pass
  all oracles on the healthy tree and exist to keep the oracles honest
  about tricky features (register addressing, RMWs, branches).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.program import Program

_HEADER = re.compile(r"^#\s*fuzz-([a-z]+)\s*:\s*(.*?)\s*$")
_KNOWN_KEYS = frozenset({"seed", "profile", "oracle", "mutant", "note", "cells"})


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus file, parsed."""

    program: Program
    path: Path | None = None
    seed: int | None = None
    profile: str | None = None
    oracle: str | None = None
    mutant: str | None = None
    note: str | None = None
    #: For coverage-campaign exports: the grid cells this program hit
    #: first, as ``kind|model|reason|outcome`` atoms joined by ``; ``.
    cells: str | None = None

    @property
    def name(self) -> str:
        return self.program.name


def render_entry(entry: CorpusEntry) -> str:
    """Serialize an entry to corpus-file text."""
    lines = []
    if entry.seed is not None:
        lines.append(f"# fuzz-seed: {entry.seed}")
    if entry.profile:
        lines.append(f"# fuzz-profile: {entry.profile}")
    if entry.oracle:
        lines.append(f"# fuzz-oracle: {entry.oracle}")
    if entry.mutant:
        lines.append(f"# fuzz-mutant: {entry.mutant}")
    if entry.note:
        lines.append(f"# fuzz-note: {entry.note}")
    if entry.cells:
        lines.append(f"# fuzz-cells: {entry.cells}")
    lines.append(disassemble(entry.program).rstrip("\n"))
    return "\n".join(lines) + "\n"


def save_entry(entry: CorpusEntry, directory: Path) -> Path:
    """Write ``entry`` under ``directory`` (created if missing) and
    return the file path; the filename is derived from the program name."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = re.sub(r"[^A-Za-z0-9._-]", "-", entry.program.name) or "entry"
    path = directory / f"{stem}.litmus"
    suffix = 1
    while path.exists():
        existing = load_entry(path)
        if render_entry(existing) == render_entry(entry):
            return path  # identical entry already saved
        suffix += 1
        path = directory / f"{stem}-{suffix}.litmus"
    path.write_text(render_entry(entry))
    return path


def load_entry(path: Path) -> CorpusEntry:
    """Parse one corpus file (header comments + assembly)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ReproError(f"cannot read corpus entry {path}: {error}") from error
    meta: dict[str, str] = {}
    for line in text.splitlines():
        match = _HEADER.match(line)
        if match:
            key, value = match.group(1), match.group(2)
            if key not in _KNOWN_KEYS:
                raise ReproError(f"{path}: unknown corpus header key {key!r}")
            meta[key] = value
        elif line.strip() and not line.lstrip().startswith("#"):
            break  # assembly body begins; headers only allowed before it
    try:
        source = assemble(text)
    except Exception as error:
        raise ReproError(f"{path}: cannot assemble corpus entry: {error}") from error
    seed = int(meta["seed"]) if "seed" in meta else None
    return CorpusEntry(
        program=source.program,
        path=path,
        seed=seed,
        profile=meta.get("profile"),
        oracle=meta.get("oracle"),
        mutant=meta.get("mutant"),
        note=meta.get("note"),
        cells=meta.get("cells"),
    )


def load_corpus(directory: Path) -> tuple[CorpusEntry, ...]:
    """All corpus entries under ``directory``, sorted by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return ()
    return tuple(load_entry(path) for path in sorted(directory.glob("*.litmus")))


#: The in-repo regression corpus replayed by tier-1 tests.
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "corpus"


__all__ = [
    "CorpusEntry",
    "DEFAULT_CORPUS_DIR",
    "load_corpus",
    "load_entry",
    "render_entry",
    "save_entry",
]
