"""Delta-debugging minimizer for fuzzer counterexamples.

Given a program and a *predicate* (``predicate(candidate) -> True`` when
the candidate still exhibits the failure — typically "this oracle still
reports a discrepancy"), :func:`shrink` greedily applies
failure-preserving reductions to a fixpoint:

1. drop whole threads;
2. delete instruction spans per thread (ddmin-style, halving chunk
   sizes down to single instructions, with branch labels re-pointed);
3. simplify single instructions in place (clear acquire/release flags,
   demote an RMW to a plain load, replace register-computed addresses
   with static locations, collapse stored values and ALU expressions to
   small constants);
4. drop initial-memory entries.

Any candidate that makes the predicate *raise* counts as not failing —
a reduction that produces an ill-typed program (e.g. an address register
now holding an integer) is simply rejected, so the predicate never needs
its own error handling.

The result is deterministic: reductions are attempted in a fixed order
and the first improvement is taken greedily.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from repro.isa.instructions import Compute, Instruction, Load, Rmw, Store
from repro.isa.operands import Const, Reg
from repro.isa.program import Program, Thread

Predicate = Callable[[Program], bool]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of a shrink run."""

    program: Program
    original_instructions: int
    candidates_tried: int
    reductions_applied: int

    @property
    def instructions(self) -> int:
        return self.program.instruction_count()


def shrink(program: Program, predicate: Predicate, max_rounds: int = 12) -> ShrinkResult:
    """Minimize ``program`` while ``predicate`` keeps returning True.

    ``predicate(program)`` itself must be True; otherwise the original
    is returned untouched (there is nothing to preserve).
    """
    tried = 0
    applied = 0
    original = program.instruction_count()

    def holds(candidate: Program) -> bool:
        nonlocal tried
        tried += 1
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    if not holds(program):
        return ShrinkResult(program, original, tried, applied)

    for _ in range(max_rounds):
        progress = False
        for candidate in _candidates(program):
            if holds(candidate):
                program = candidate
                applied += 1
                progress = True
                break
        while progress:
            # Greedy inner loop: keep taking the first improving
            # candidate of the *new* program until none improves.
            progress = False
            for candidate in _candidates(program):
                if holds(candidate):
                    program = candidate
                    applied += 1
                    progress = True
                    break
        # One extra outer round re-scans from scratch in case a late
        # simplification unlocked an early deletion; stop when a full
        # scan yields nothing.
        if not any(holds(candidate) for candidate in _candidates(program)):
            break

    return ShrinkResult(program, original, tried, applied)


# ---------------------------------------------------------------------------
# candidate generation


def _candidates(program: Program) -> Iterator[Program]:
    yield from _drop_threads(program)
    yield from _delete_spans(program)
    yield from _simplify_instructions(program)
    yield from _drop_initial_memory(program)


def reduction_candidates(program: Program) -> Iterator[Program]:
    """Every one-step reduction of ``program``, in the fixed order the
    shrinker tries them.  Also the *reducing* half of the coverage-guided
    mutation operators (:mod:`repro.testing.coverage`): each candidate is
    a valid, strictly-simpler neighbor of the input."""
    yield from _candidates(program)


def _rebuild(program: Program, threads: tuple[Thread, ...]) -> Program | None:
    if not threads or all(not thread.code for thread in threads):
        return None
    try:
        return Program(threads, dict(program.initial_memory), program.name)
    except Exception:
        return None


def _drop_threads(program: Program) -> Iterator[Program]:
    if len(program.threads) <= 1:
        return
    for index in range(len(program.threads)):
        threads = program.threads[:index] + program.threads[index + 1 :]
        candidate = _rebuild(program, threads)
        if candidate is not None:
            yield candidate


def _delete_span(thread: Thread, start: int, stop: int) -> Thread | None:
    code = thread.code[:start] + thread.code[stop:]
    removed = stop - start
    labels = {}
    for label, index in thread.labels.items():
        if index <= start:
            labels[label] = index
        elif index >= stop:
            labels[label] = index - removed
        else:
            labels[label] = start
    try:
        return Thread(thread.name, code, labels)
    except Exception:
        return None


def _delete_spans(program: Program) -> Iterator[Program]:
    for tindex, thread in enumerate(program.threads):
        size = len(thread.code)
        chunk = size
        while chunk >= 1:
            for start in range(0, size, chunk):
                stop = min(start + chunk, size)
                if chunk == size and len(program.threads) > 1:
                    # Whole-thread deletion is handled by _drop_threads;
                    # an empty thread is never useful.
                    break
                reduced = _delete_span(thread, start, stop)
                if reduced is None or not reduced.code:
                    continue
                threads = (
                    program.threads[:tindex] + (reduced,) + program.threads[tindex + 1 :]
                )
                candidate = _rebuild(program, threads)
                if candidate is not None:
                    yield candidate
            chunk //= 2


def _simpler_versions(instruction: Instruction, locations: tuple[str, ...]) -> Iterator[Instruction]:
    """Strictly-simpler replacements for one instruction, best first."""
    if isinstance(instruction, Rmw):
        yield Load(dst=instruction.dst, addr=instruction.addr)
        if instruction.acquire or instruction.release:
            yield replace(instruction, acquire=False, release=False)
    if isinstance(instruction, Load):
        if instruction.acquire:
            yield replace(instruction, acquire=False)
        if isinstance(instruction.addr, Reg):
            for location in locations[:2]:
                yield replace(instruction, addr=Const(location))
    if isinstance(instruction, Store):
        if instruction.release:
            yield replace(instruction, release=False)
        if isinstance(instruction.addr, Reg):
            for location in locations[:2]:
                yield replace(instruction, addr=Const(location))
        if instruction.value != Const(0):
            yield replace(instruction, value=Const(1))
            yield replace(instruction, value=Const(0))
    if isinstance(instruction, Compute):
        simplest = Compute(dst=instruction.dst, op="mov", args=(Const(0),))
        if instruction != simplest:
            yield simplest


def _simplify_instructions(program: Program) -> Iterator[Program]:
    locations = program.locations()
    for tindex, thread in enumerate(program.threads):
        for position, instruction in enumerate(thread.code):
            for simpler in _simpler_versions(instruction, locations):
                if simpler == instruction:
                    continue
                code = (
                    thread.code[:position] + (simpler,) + thread.code[position + 1 :]
                )
                try:
                    reduced = Thread(thread.name, code, dict(thread.labels))
                except Exception:
                    continue
                threads = (
                    program.threads[:tindex] + (reduced,) + program.threads[tindex + 1 :]
                )
                candidate = _rebuild(program, threads)
                if candidate is not None:
                    yield candidate


def _drop_initial_memory(program: Program) -> Iterator[Program]:
    for key in sorted(program.initial_memory):
        memory = {k: v for k, v in program.initial_memory.items() if k != key}
        try:
            yield Program(program.threads, memory, program.name)
        except Exception:
            continue


__all__ = ["Predicate", "ShrinkResult", "reduction_candidates", "shrink"]
