"""Seeded random program generation for differential fuzzing.

The cycle generator (:mod:`repro.litmus.generator`) only emits plain
loads and stores along a critical cycle; this generator covers the rest
of the ISA — acquire/release accesses, RMWs, fences of every kind,
ALU dependency chains, forward branches, and **register-computed
addresses** — the inputs that exercise the dataflow-pruning and
speculation paths none of the litmus library reaches.

Every generated program is *well-typed by construction* so that each of
the repository's independent implementations can execute it:

* Memory locations are partitioned into **data locations** (only ever
  hold integers) and **pointer locations** (only ever hold the name of a
  data location).  Initial values respect the partition, and so does
  every generated store.
* A register is tracked as a *data register* (holds an int on every
  path) or a *pointer register* (holds a data-location name on every
  path).  Only pointer registers are used as addresses; only data
  registers feed the ALU, branch conditions, and stored values.
* Pointer registers defined inside a branch arm are not used after the
  join point (the arm may be skipped, and an unwritten register reads
  as integer 0 — not an address).
* Branches only jump forward, so every program terminates under any
  reordering and the enumeration node budget is never the limiting
  factor.
* Destination registers are always fresh, so a register's type never
  changes over the thread.

Generation is driven by a :class:`FuzzProfile` of weights; the same
``(seed, profile)`` pair always produces the same program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import ReproError
from repro.isa.dsl import ProgramBuilder, ThreadBuilder
from repro.isa.instructions import FenceKind, RmwKind
from repro.isa.operands import Reg
from repro.isa.program import Program

#: ALU operations safe on arbitrary integers (no division by zero).
_SAFE_ALU = ("add", "sub", "mul", "xor", "and", "or", "eq", "ne", "lt", "ge")


@dataclass(frozen=True)
class FuzzProfile:
    """Weights and shape bounds for one family of random programs.

    ``weights`` maps op kinds (``store``, ``load``, ``compute``,
    ``fence``, ``branch``, ``rmw``, ``ptrstore``) to relative
    frequencies; zero/absent kinds are never emitted.  ``ptrstore``
    re-points a pointer location at another data location mid-run, which
    is what makes register-computed addresses genuinely dynamic.
    """

    name: str
    description: str = ""
    threads: tuple[int, int] = (2, 3)
    ops_per_thread: tuple[int, int] = (2, 5)
    data_locations: tuple[str, ...] = ("x", "y", "z")
    pointer_locations: tuple[str, ...] = ()
    weights: Mapping[str, float] = field(
        default_factory=lambda: {"store": 4, "load": 4, "compute": 1, "fence": 1}
    )
    acqrel_rate: float = 0.0  #: P(acquire/release annotation) per load/store/RMW
    register_addr_rate: float = 0.0  #: P(register address) per memory op
    fence_kinds: tuple[FenceKind, ...] = (FenceKind.FULL,)
    rmw_kinds: tuple[RmwKind, ...] = (
        RmwKind.CAS,
        RmwKind.EXCHANGE,
        RmwKind.FETCH_ADD,
    )
    max_const: int = 3  #: stored data values are drawn from 1..max_const


PROFILES: dict[str, FuzzProfile] = {
    profile.name: profile
    for profile in (
        FuzzProfile(
            name="default",
            description="a bit of everything: fences, RMWs, branches, "
            "register addresses, acquire/release",
            threads=(2, 3),
            ops_per_thread=(2, 5),
            pointer_locations=("p", "q"),
            weights={
                "store": 4,
                "load": 4,
                "compute": 1.5,
                "fence": 1,
                "branch": 1,
                "rmw": 1,
                "ptrstore": 0.5,
            },
            acqrel_rate=0.15,
            register_addr_rate=0.25,
            fence_kinds=tuple(FenceKind),
        ),
        FuzzProfile(
            name="relaxed",
            description="plain loads/stores over few locations — the "
            "classic litmus soup, maximal reordering surface",
            threads=(2, 3),
            ops_per_thread=(2, 4),
            data_locations=("x", "y"),
            weights={"store": 5, "load": 5},
        ),
        FuzzProfile(
            name="dataflow",
            description="ALU chains and register-computed addresses — "
            "targets the PR 3 alias analysis and candidate pruning",
            threads=(2, 3),
            ops_per_thread=(3, 6),
            pointer_locations=("p", "q"),
            weights={
                "store": 3,
                "load": 4,
                "compute": 4,
                "ptrstore": 1.5,
                "fence": 0.5,
            },
            register_addr_rate=0.6,
        ),
        FuzzProfile(
            name="branchy",
            description="forward branches guarding stores and loads — "
            "targets speculation and control-dependency handling",
            threads=(2, 3),
            ops_per_thread=(3, 6),
            pointer_locations=("p",),
            weights={
                "store": 4,
                "load": 4,
                "compute": 2,
                "branch": 3,
                "fence": 0.5,
            },
            register_addr_rate=0.2,
        ),
        FuzzProfile(
            name="rmw",
            description="atomics-heavy: CAS/exchange/fetch-add with "
            "acquire-release annotations (lock-shaped programs)",
            threads=(2, 3),
            ops_per_thread=(2, 5),
            data_locations=("x", "y", "l"),
            weights={"store": 2, "load": 3, "rmw": 4, "compute": 1, "fence": 0.5},
            acqrel_rate=0.3,
        ),
        FuzzProfile(
            name="fences",
            description="densely fenced loads/stores of every fence kind "
            "— targets the Store Atomicity closure (rule c needs "
            "enforced program order to matter)",
            threads=(2, 3),
            ops_per_thread=(2, 5),
            data_locations=("x", "y"),
            weights={"store": 4, "load": 4, "fence": 3},
            acqrel_rate=0.2,
            fence_kinds=tuple(FenceKind),
        ),
    )
}

#: The pseudo-profile that cycles deterministically through every real
#: profile — the default for fuzzing campaigns.
MIXED = "mixed"

#: The fixed round-robin order :data:`MIXED` cycles through — also the
#: deterministic tie-break order of the coverage-guided profile bandit
#: (:mod:`repro.testing.coverage`).
MIXED_ORDER = ("relaxed", "default", "dataflow", "branchy", "rmw", "fences")
_MIXED_ORDER = MIXED_ORDER


def derive_seed(seed: int, index: int) -> int:
    """The per-program seed of the ``index``-th draw of a campaign.

    A pure function of ``(seed, index)``, so any slicing of a campaign —
    chunked workers, interrupted-and-resumed runs, guided replanning —
    regenerates exactly the same program for a given index.
    """
    return (seed * 1_000_003 + index) & 0x7FFFFFFF


def get_profile(name: str) -> FuzzProfile:
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES) + [MIXED])
        raise ReproError(
            f"unknown fuzz profile {name!r}; known profiles: {known}"
        ) from None


def profile_for_index(name: str, index: int) -> FuzzProfile:
    """Resolve the profile for the ``index``-th program of a campaign —
    constant for a real profile, round-robin for :data:`MIXED`."""
    if name == MIXED:
        return PROFILES[_MIXED_ORDER[index % len(_MIXED_ORDER)]]
    return get_profile(name)


class _ThreadGen:
    """Generation state for one thread: typed register pools."""

    def __init__(self, builder: ThreadBuilder, rng: random.Random, profile: FuzzProfile):
        self.builder = builder
        self.rng = rng
        self.profile = profile
        self.data_regs: list[str] = []
        self.pointer_regs: list[str] = []
        self.reg_counter = 0
        self.label_counter = 0

    def fresh_reg(self) -> str:
        self.reg_counter += 1
        return f"r{self.reg_counter}"

    def fresh_label(self) -> str:
        self.label_counter += 1
        return f"L{self.label_counter}"

    # -- operand pickers ------------------------------------------------

    def address(self) -> object:
        """A store/load/RMW address: a data-location constant, or a
        pointer register when the profile asks for register addressing."""
        rng, profile = self.rng, self.profile
        if self.pointer_regs and rng.random() < profile.register_addr_rate:
            return Reg(rng.choice(self.pointer_regs))
        return rng.choice(profile.data_locations)

    def data_value(self) -> object:
        """An integer-typed value: a small constant or a data register."""
        rng = self.rng
        if self.data_regs and rng.random() < 0.4:
            return rng.choice(self.data_regs)
        return rng.randint(1, self.profile.max_const)


def _emit_op(state: _ThreadGen, kind: str) -> None:
    """Emit one instruction of the chosen kind."""
    rng, profile, thread = state.rng, state.profile, state.builder
    if kind == "store":
        thread.store(
            state.address(),
            state.data_value(),
            release=rng.random() < profile.acqrel_rate,
        )
    elif kind == "load":
        dst = state.fresh_reg()
        thread.load(dst, state.address(), acquire=rng.random() < profile.acqrel_rate)
        state.data_regs.append(dst)
    elif kind == "compute":
        dst = state.fresh_reg()
        op = rng.choice(_SAFE_ALU)
        args = [state.data_value() for _ in range(2)]
        thread.compute(dst, op, *args)
        state.data_regs.append(dst)
    elif kind == "fence":
        thread.fence(rng.choice(profile.fence_kinds))
    elif kind == "rmw":
        dst = state.fresh_reg()
        rmw_kind = rng.choice(profile.rmw_kinds)
        acquire = rng.random() < profile.acqrel_rate
        release = rng.random() < profile.acqrel_rate
        addr = state.address()
        if rmw_kind is RmwKind.CAS:
            # Expect 0 or 1 so that success and failure are both live.
            thread.cas(dst, addr, rng.randint(0, 1), state.data_value(),
                       acquire=acquire, release=release)
        elif rmw_kind is RmwKind.EXCHANGE:
            thread.xchg(dst, addr, state.data_value(), acquire=acquire, release=release)
        else:
            thread.fetch_add(dst, addr, rng.randint(1, profile.max_const),
                             acquire=acquire, release=release)
        state.data_regs.append(dst)
    elif kind == "ptrstore":
        # Re-point a pointer location at a (possibly different) data
        # location — keeps the pointer/data partition intact.
        thread.store(
            rng.choice(profile.pointer_locations),
            rng.choice(profile.data_locations),
        )
    else:  # pragma: no cover - _pick_kind only returns known kinds
        raise ReproError(f"unknown op kind {kind!r}")


def _pick_kind(state: _ThreadGen, *, allow_branch: bool) -> str:
    profile, rng = state.profile, state.rng
    kinds, weights = [], []
    for kind, weight in profile.weights.items():
        if weight <= 0:
            continue
        if kind == "branch" and not allow_branch:
            continue
        if kind == "ptrstore" and not profile.pointer_locations:
            continue
        kinds.append(kind)
        weights.append(weight)
    return rng.choices(kinds, weights)[0]


def _emit_pointer_setup(state: _ThreadGen) -> int:
    """Seed the thread's pointer registers: a direct ``mov`` of a data
    location and/or a load from a pointer location.  Returns the number
    of instructions emitted."""
    rng, profile, thread = state.rng, state.profile, state.builder
    emitted = 0
    reg = state.fresh_reg()
    thread.mov(reg, rng.choice(profile.data_locations))
    state.pointer_regs.append(reg)
    emitted += 1
    if profile.pointer_locations and rng.random() < 0.7:
        reg = state.fresh_reg()
        thread.load(reg, rng.choice(profile.pointer_locations))
        state.pointer_regs.append(reg)
        emitted += 1
    return emitted


def _emit_branch(state: _ThreadGen, budget: int) -> int:
    """Emit a forward conditional branch skipping 1..3 ops; returns the
    number of instructions consumed (branch + guarded body)."""
    rng, thread = state.rng, state.builder
    body = rng.randint(1, max(1, min(3, budget - 1)))
    if state.data_regs and rng.random() < 0.8:
        cond = rng.choice(state.data_regs)
    else:
        cond = state.fresh_reg()
        thread.compute(cond, "eq", state.data_value(), rng.randint(0, 1))
        state.data_regs.append(cond)
        body = max(1, body - 1)
    label = state.fresh_label()
    if rng.random() < 0.5:
        thread.beqz(cond, label)
    else:
        thread.bnez(cond, label)
    # Pointer registers defined in the (skippable) arm must not escape.
    outer_pointers = list(state.pointer_regs)
    for _ in range(body):
        _emit_op(state, _pick_kind(state, allow_branch=False))
    state.pointer_regs = outer_pointers
    thread.label(label)
    return body + 1


def generate_program(seed: int, profile: FuzzProfile | str = "default") -> Program:
    """The deterministic random program for ``(seed, profile)``."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    rng = random.Random((seed, profile.name).__repr__())
    builder = ProgramBuilder(f"fz-{profile.name}-{seed}")

    # Pointer locations start out pointing at a data location each.
    for pointer in profile.pointer_locations:
        builder.init(pointer, rng.choice(profile.data_locations))
    # Occasionally give a data location a non-zero initial value.
    for location in profile.data_locations:
        if rng.random() < 0.2:
            builder.init(location, rng.randint(1, profile.max_const))

    needs_pointers = profile.register_addr_rate > 0
    for _ in range(rng.randint(*profile.threads)):
        state = _ThreadGen(builder.thread(), rng, profile)
        budget = rng.randint(*profile.ops_per_thread)
        if needs_pointers:
            budget = max(budget - _emit_pointer_setup(state), 1)
        while budget > 0:
            kind = _pick_kind(state, allow_branch=budget >= 2)
            if kind == "branch":
                budget -= _emit_branch(state, budget)
            else:
                _emit_op(state, kind)
                budget -= 1
    return builder.build()


def iter_programs(
    seed: int, count: int, profile: str = MIXED
) -> Iterator[tuple[int, str, Program]]:
    """The campaign stream: ``count`` programs derived from ``seed``.

    Yields ``(derived_seed, profile_name, program)``; the derivation is
    independent of chunking, so a parallel campaign sees exactly the
    same programs as a sequential one.
    """
    for index in range(count):
        derived = derive_seed(seed, index)
        resolved = profile_for_index(profile, index)
        yield derived, resolved.name, generate_program(derived, resolved)


__all__ = [
    "FuzzProfile",
    "PROFILES",
    "MIXED",
    "MIXED_ORDER",
    "derive_seed",
    "get_profile",
    "profile_for_index",
    "generate_program",
    "iter_programs",
]
