"""Coverage-guided, resumable fuzzing campaigns.

The PR 5 fuzzer is *blind*: every program is an independent draw, and a
nightly run restarts from scratch.  This module turns ``repro fuzz``
into a campaign that **learns** and **accumulates**:

* **Coverage grid** — every checked program contributes cells of an
  (edge-kind × model × exhaustion-reason × oracle-outcome) grid.  Edge
  kinds are syntactic features of the program (adjacent memory-op pairs
  like ``St.rel>Ld``, fence flavors, register-addressed accesses);
  the model axis is the coverage label of each enumeration variant an
  oracle ran (``weak``, ``weak+par``, ``tso+pruned``, …); the reason
  axis is ``complete`` or the :class:`~repro.core.enumerate.ExhaustionReason`;
  the outcome axis is ``<oracle>:<ok|skip|fail>``.
* **Guided generation** — programs that hit *new* grid cells enter a
  mutation corpus.  Future draws preferentially mutate rare-cell corpus
  entries (via the PR 5 shrink reducers plus amplifying operators:
  fence insertion of every kind, acquire/release toggles, value bumps),
  pick fresh profiles by observed novelty yield, and prune duplicate
  programs through a :class:`~repro.cache.bloom.BloomFilter` of program
  digests *before* any enumeration budget is spent on them.
* **Campaign state** — grid, corpus, RNG cursor, and spent budget
  persist in a WAL-checkpointed directory
  (``state.json`` + ``campaign.wal``), so a killed or nightly-restarted
  campaign resumes exactly where it stopped and budget accumulates
  across runs instead of restarting.

Determinism contract (what the tests and ``bench_fuzzcov.py`` pin):

* feedback folds in only at **batch boundaries**, and planning a batch
  is a pure function of the committed state — so verdicts, the grid,
  and the corpus are identical for any ``--jobs`` value;
* every batch commits atomically (one fsynced WAL record), batch
  windows align to fixed multiples of the batch size, and per-slot
  RNG is derived from ``(campaign seed, index)`` — so a campaign killed
  at *any* point and resumed reproduces the uninterrupted campaign's
  grid and corpus byte-for-byte (a kill loses only unacknowledged
  whole windows).  Explicit ``budget`` slicing reproduces the
  uninterrupted run exactly when each slice is a multiple of the batch
  size; an odd slice commits a short window whose feedback folds one
  window early, and the next run realigns to the fixed grid;
* nothing in planning or folding consults the clock, the PID, or
  ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import base64
import hashlib
import json
import random
from dataclasses import dataclass, field, replace as dc_replace
from pathlib import Path

from repro.cache.bloom import BloomFilter
from repro.errors import ReproError
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.instructions import Fence, FenceKind, Load, Rmw, Store
from repro.isa.operands import Const, Reg
from repro.isa.program import Program, Thread
from repro.service.wal import WriteAheadLog, replay_wal
from repro.testing.fuzzgen import (
    MIXED,
    MIXED_ORDER,
    PROFILES,
    derive_seed,
    generate_program,
    get_profile,
    profile_for_index,
)
from repro.testing.oracles import (
    FUZZ_LIMITS,
    ORACLES,
    Discrepancy,
    OracleContext,
    get_oracle,
    run_oracles,
)
from repro.testing.shrink import reduction_candidates

#: One grid cell: (edge kind, coverage label, exhaustion reason, outcome).
Cell = tuple[str, str, str, str]

STATE_FILE = "state.json"
WAL_FILE = "campaign.wal"
CORPUS_SUBDIR = "corpus"

DEFAULT_BATCH_SIZE = 12
DEFAULT_MUTATE_RATE = 0.45
DEFAULT_CORPUS_LIMIT = 256

_STATE_FORMAT = 1
_STATE_CRC_SIZE = 8
_PLAN_ATTEMPTS = 6  #: dedup retries per slot before accepting a duplicate
_MUTANT_ATTEMPTS = 3  #: of those, how many may draw from the corpus
_CHECKPOINT_EVERY = 4  #: batches between state.json checkpoints
_BLOOM_EXPECTED = 65536  #: program-digest capacity at the design FPR
_EXPLORE_EVERY = 3  #: fresh-draw indices forced onto the round-robin


# ---------------------------------------------------------------------------
# edge kinds and cells


def _tag(instruction) -> str | None:
    """The edge-kind tag of one instruction; ``None`` for non-memory ops."""
    if isinstance(instruction, Load):
        tag = "Ld.acq" if instruction.acquire else "Ld"
        if isinstance(instruction.addr, Reg):
            tag += "@r"
        return tag
    if isinstance(instruction, Store):
        tag = "St.rel" if instruction.release else "St"
        if isinstance(instruction.addr, Reg):
            tag += "@r"
        return tag
    if isinstance(instruction, Rmw):
        tag = f"Rmw.{instruction.kind.value}"
        if instruction.acquire:
            tag += ".a"
        if instruction.release:
            tag += ".r"
        if isinstance(instruction.addr, Reg):
            tag += "@r"
        return tag
    if isinstance(instruction, Fence):
        return f"F.{instruction.kind.value}"
    return None


def program_edge_kinds(program: Program) -> frozenset[str]:
    """The syntactic coverage features of ``program``: every memory-op
    tag, every *adjacent* (by memory program order) tag pair rendered as
    ``a>b``, plus a ``branch`` marker for control flow.  Purely a
    function of the instruction stream — no enumeration needed, so the
    grid axis is free to compute and stable under replay."""
    kinds: set[str] = set()
    for thread in program.threads:
        tags = [tag for tag in map(_tag, thread.code) if tag is not None]
        kinds.update(tags)
        kinds.update(f"{a}>{b}" for a, b in zip(tags, tags[1:]))
    if program.has_branches():
        kinds.add("branch")
    return frozenset(kinds)


def verdict_cells(
    program: Program,
    reasons: dict[str, str],
    statuses: dict[str, str],
) -> frozenset[Cell]:
    """The grid cells one checked program contributes.

    ``reasons`` is :meth:`OracleContext.enumeration_reasons` after the
    oracles ran; ``statuses`` maps each selected oracle name to
    ``ok``/``skip``/``fail``.  An oracle contributes cells only for the
    coverage labels it *touches* and that actually enumerated — an
    oracle that skipped before enumerating adds nothing.
    """
    kinds = program_edge_kinds(program)
    cells: set[Cell] = set()
    for oracle_name, status in statuses.items():
        outcome = f"{oracle_name}:{status}"
        for label in get_oracle(oracle_name).touches:
            reason = reasons.get(label)
            if reason is None:
                continue
            for kind in kinds:
                cells.add((kind, label, reason, outcome))
    return frozenset(cells)


# ---------------------------------------------------------------------------
# the coverage grid


@dataclass
class CoverageGrid:
    """Hit counts over the 4-dimensional coverage grid."""

    cells: dict[Cell, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.cells)

    def add(self, cells) -> frozenset[Cell]:
        """Count one program's cells; returns the cells seen for the
        first time (the novelty signal that admits corpus entries)."""
        new = set()
        for cell in cells:
            if cell not in self.cells:
                new.add(cell)
            self.cells[cell] = self.cells.get(cell, 0) + 1
        return frozenset(new)

    def merge(self, other: "CoverageGrid") -> None:
        for cell, count in other.cells.items():
            self.cells[cell] = self.cells.get(cell, 0) + count

    def project(self, axes: tuple[int, ...] = (0, 1, 2)) -> frozenset[tuple]:
        """The distinct cells projected onto ``axes`` — the benchmark
        gate compares the default (edge-kind × model × reason)
        projection, which ignores the oracle-outcome axis."""
        return frozenset(tuple(cell[a] for a in axes) for cell in self.cells)

    def axis_values(self, axis: int) -> tuple[str, ...]:
        return tuple(sorted({cell[axis] for cell in self.cells}))

    def min_count(self, cells) -> int:
        """The rarest hit count among ``cells`` (0 when unseen) — the
        rarity weight used to pick corpus entries for mutation."""
        counts = [self.cells.get(cell, 0) for cell in cells]
        return min(counts) if counts else 0

    def is_superset_of(self, other: "CoverageGrid") -> bool:
        """Cell-set containment (counts ignored) — the nightly
        monotonicity gate: a restored campaign's grid must never
        shrink."""
        return set(other.cells) <= set(self.cells)

    def to_json(self) -> dict:
        return {
            "cells": sorted([*cell, count] for cell, count in self.cells.items())
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CoverageGrid":
        grid = cls()
        for entry in payload["cells"]:
            kind, label, reason, outcome, count = entry
            grid.cells[(str(kind), str(label), str(reason), str(outcome))] = int(count)
        return grid


# ---------------------------------------------------------------------------
# program identity


def program_digest(program: Program) -> str:
    """Content digest of a program *modulo its name* — two draws with
    identical threads and initial memory dedup even though the generator
    names them after their seeds."""
    lines = disassemble(program).splitlines()
    if lines and lines[0].startswith("test "):
        lines = lines[1:]
    body = "\n".join(lines)
    return hashlib.blake2b(body.encode("utf-8"), digest_size=16).hexdigest()


def model_tables_digest(digest_size: int = 16) -> str:
    """Canonical digest of every registered model's full semantic
    content (reordering table, bypass and speculation flags).  The
    nightly workflow keys its campaign-state cache on this: changing a
    model definition invalidates accumulated coverage rather than
    resuming a grid measured under different semantics."""
    from repro.models.registry import all_models

    payload = [
        {
            "name": model.name,
            "store_load_bypass": bool(model.store_load_bypass),
            "speculative_aliasing": bool(model.speculative_aliasing),
            "table": sorted(
                (first.value, second.value, int(requirement))
                for (first, second), requirement in model.table.entries.items()
            ),
        }
        for model in all_models()
    ]
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=digest_size).hexdigest()


# ---------------------------------------------------------------------------
# mutation operators


def _replace_instruction(thread: Thread, position: int, instruction) -> Thread | None:
    code = thread.code[:position] + (instruction,) + thread.code[position + 1 :]
    try:
        return Thread(thread.name, code, dict(thread.labels))
    except Exception:
        return None


def _insert_instruction(thread: Thread, position: int, instruction) -> Thread | None:
    code = thread.code[:position] + (instruction,) + thread.code[position:]
    labels = {
        label: index + 1 if index >= position else index
        for label, index in thread.labels.items()
    }
    try:
        return Thread(thread.name, code, labels)
    except Exception:
        return None


def _rebuild(program: Program, tindex: int, thread: Thread | None) -> Program | None:
    if thread is None:
        return None
    threads = program.threads[:tindex] + (thread,) + program.threads[tindex + 1 :]
    try:
        return Program(threads, dict(program.initial_memory), program.name)
    except Exception:
        return None


def _amplified(program: Program):
    """Amplifying mutations — the complement of the shrink reducers.
    Each either widens an instruction's ordering annotations, inserts a
    fence, or perturbs a stored value; all preserve well-typedness by
    construction (invalid rebuilds are dropped)."""
    for tindex, thread in enumerate(program.threads):
        for position, instruction in enumerate(thread.code):
            variants = []
            if isinstance(instruction, Load):
                variants.append(dc_replace(instruction, acquire=not instruction.acquire))
            elif isinstance(instruction, Store):
                variants.append(dc_replace(instruction, release=not instruction.release))
                value = instruction.value
                if isinstance(value, Const) and isinstance(value.value, int) and 0 <= value.value < 8:
                    variants.append(dc_replace(instruction, value=Const(value.value + 1)))
            elif isinstance(instruction, Rmw):
                variants.append(dc_replace(instruction, acquire=not instruction.acquire))
                variants.append(dc_replace(instruction, release=not instruction.release))
            elif isinstance(instruction, Fence):
                variants.extend(
                    Fence(kind) for kind in FenceKind if kind is not instruction.kind
                )
            for variant in variants:
                candidate = _rebuild(
                    program, tindex, _replace_instruction(thread, position, variant)
                )
                if candidate is not None:
                    yield candidate
    for tindex, thread in enumerate(program.threads):
        for position in range(len(thread.code) + 1):
            for kind in FenceKind:
                candidate = _rebuild(
                    program, tindex, _insert_instruction(thread, position, Fence(kind))
                )
                if candidate is not None:
                    yield candidate


def mutation_candidates(program: Program) -> list[Program]:
    """Every one-step neighbor of ``program``, in a fixed deterministic
    order: the PR 5 shrink reducers first (drop threads/spans, simplify,
    drop initial memory), then the amplifiers."""
    return [*reduction_candidates(program), *_amplified(program)]


# ---------------------------------------------------------------------------
# campaign state


@dataclass(frozen=True)
class CampaignConfig:
    """The parameters a campaign directory is pinned to.  Planning is a
    function of these plus the folded state, so resuming under different
    parameters would silently change history — :func:`open_campaign`
    refuses instead."""

    seed: int
    profile: str = MIXED
    oracles: tuple[str, ...] | None = None
    batch_size: int = DEFAULT_BATCH_SIZE
    mutate_rate: float = DEFAULT_MUTATE_RATE
    corpus_limit: int = DEFAULT_CORPUS_LIMIT
    tables: str = ""

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "oracles": list(self.oracles) if self.oracles is not None else None,
            "batch_size": self.batch_size,
            "mutate_rate": self.mutate_rate,
            "corpus_limit": self.corpus_limit,
            "tables": self.tables,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CampaignConfig":
        oracles = payload["oracles"]
        return cls(
            seed=int(payload["seed"]),
            profile=str(payload["profile"]),
            oracles=tuple(oracles) if oracles is not None else None,
            batch_size=int(payload["batch_size"]),
            mutate_rate=float(payload["mutate_rate"]),
            corpus_limit=int(payload["corpus_limit"]),
            tables=str(payload["tables"]),
        )


@dataclass(frozen=True)
class CorpusRecord:
    """One mutation-corpus entry: a program that hit new grid cells."""

    index: int
    seed: int
    profile: str
    source: str  #: ``fresh`` or ``mutant``
    digest: str
    program: str  #: disassembly text (self-contained — no file dependency)
    new_cells: tuple[Cell, ...]

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "profile": self.profile,
            "source": self.source,
            "digest": self.digest,
            "program": self.program,
            "new_cells": [list(cell) for cell in self.new_cells],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CorpusRecord":
        return cls(
            index=int(payload["index"]),
            seed=int(payload["seed"]),
            profile=str(payload["profile"]),
            source=str(payload["source"]),
            digest=str(payload["digest"]),
            program=str(payload["program"]),
            new_cells=tuple(
                (str(k), str(m), str(r), str(o)) for k, m, r, o in payload["new_cells"]
            ),
        )


@dataclass
class CampaignState:
    """Everything a campaign has learned, fold-deterministic.

    The same committed batches folded in the same order always produce
    the same state — whether they arrive live or from WAL replay after a
    crash.  ``next_index`` doubles as the fold cursor: a WAL record
    whose ``start`` is behind it has already been folded into the last
    checkpoint and is skipped.
    """

    config: CampaignConfig
    next_index: int = 0
    budget_spent: int = 0
    discrepancies: int = 0
    grid: CoverageGrid = field(default_factory=CoverageGrid)
    corpus: list[CorpusRecord] = field(default_factory=list)
    bloom: BloomFilter = field(
        default_factory=lambda: BloomFilter.sized_for(_BLOOM_EXPECTED)
    )
    #: per-profile (programs checked, new cells yielded) — the bandit's
    #: evidence for picking fresh-draw profiles.
    profile_programs: dict[str, int] = field(default_factory=dict)
    profile_novelty: dict[str, int] = field(default_factory=dict)


def _state_crc(body: dict) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=_STATE_CRC_SIZE).hexdigest()


def save_state(state: CampaignState, campaign_dir: Path) -> Path:
    """Atomically checkpoint ``state`` to ``<dir>/state.json``."""
    import os
    import tempfile

    campaign_dir = Path(campaign_dir)
    campaign_dir.mkdir(parents=True, exist_ok=True)
    body = {
        "format": _STATE_FORMAT,
        "config": state.config.to_json(),
        "next_index": state.next_index,
        "budget_spent": state.budget_spent,
        "discrepancies": state.discrepancies,
        "grid": state.grid.to_json(),
        "corpus": [record.to_json() for record in state.corpus],
        "profiles": {
            name: [
                state.profile_programs.get(name, 0),
                state.profile_novelty.get(name, 0),
            ]
            for name in sorted(
                set(state.profile_programs) | set(state.profile_novelty)
            )
        },
        "bloom": base64.b64encode(state.bloom.encode()).decode("ascii"),
    }
    payload = dict(body)
    payload["crc"] = _state_crc(body)
    path = campaign_dir / STATE_FILE
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    fd, tmp_name = tempfile.mkstemp(dir=campaign_dir, prefix=f".{STATE_FILE}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_state(campaign_dir: Path) -> CampaignState | None:
    """The last checkpoint, validated; ``None`` when the directory has
    no campaign yet.  Raises :class:`~repro.errors.ReproError` on a
    damaged checkpoint — coverage accounting must never silently trust
    or silently discard corrupt state."""
    path = Path(campaign_dir) / STATE_FILE
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ReproError(f"campaign state {path} is unreadable: {exc}") from exc
    try:
        crc = payload.pop("crc")
    except (KeyError, AttributeError):
        raise ReproError(f"campaign state {path} is malformed (no crc)") from None
    if _state_crc(payload) != crc:
        raise ReproError(f"campaign state {path} failed its checksum")
    if payload.get("format") != _STATE_FORMAT:
        raise ReproError(
            f"campaign state {path} has unsupported format {payload.get('format')!r}"
        )
    bloom = BloomFilter.decode(base64.b64decode(payload["bloom"]))
    if bloom is None:
        raise ReproError(f"campaign state {path} has a damaged bloom filter")
    state = CampaignState(
        config=CampaignConfig.from_json(payload["config"]),
        next_index=int(payload["next_index"]),
        budget_spent=int(payload["budget_spent"]),
        discrepancies=int(payload["discrepancies"]),
        grid=CoverageGrid.from_json(payload["grid"]),
        corpus=[CorpusRecord.from_json(entry) for entry in payload["corpus"]],
        bloom=bloom,
    )
    for name, (programs, novelty) in payload["profiles"].items():
        state.profile_programs[name] = int(programs)
        state.profile_novelty[name] = int(novelty)
    return state


def _fold_batch(state: CampaignState, items: list[dict]) -> frozenset[Cell]:
    """Apply one committed batch to the state, in index order.  This is
    the *only* mutation path — live runs and WAL replay both go through
    it, so they cannot diverge.  Returns the newly-hit cells."""
    new_cells: set[Cell] = set()
    for item in items:
        cells = frozenset(
            (str(k), str(m), str(r), str(o)) for k, m, r, o in item["cells"]
        )
        state.budget_spent += 1
        state.next_index = int(item["index"]) + 1
        state.discrepancies += int(item["fails"])
        profile = str(item["profile"])
        state.profile_programs[profile] = state.profile_programs.get(profile, 0) + 1
        new = state.grid.add(cells)
        new_cells |= new
        state.profile_novelty[profile] = state.profile_novelty.get(profile, 0) + len(new)
        state.bloom.add(bytes.fromhex(item["digest"]))
        if new and len(state.corpus) < state.config.corpus_limit:
            state.corpus.append(
                CorpusRecord(
                    index=int(item["index"]),
                    seed=int(item["seed"]),
                    profile=profile,
                    source=str(item["source"]),
                    digest=str(item["digest"]),
                    program=str(item["text"]),
                    new_cells=tuple(sorted(new)),
                )
            )
    return frozenset(new_cells)


def load_campaign(campaign_dir: Path) -> CampaignState | None:
    """Checkpoint + WAL fold: the campaign's current state, including
    batches committed after the last ``state.json`` checkpoint."""
    state = load_state(campaign_dir)
    if state is None:
        return None
    for record in replay_wal(Path(campaign_dir) / WAL_FILE):
        if record.event == "batch" and int(record.data.get("start", -1)) == state.next_index:
            _fold_batch(state, record.data["items"])
    return state


def open_campaign(
    campaign_dir: Path, config: CampaignConfig, *, resume: bool
) -> CampaignState:
    """Load-or-create the campaign in ``campaign_dir``.

    A fresh directory starts a new campaign (checkpointed immediately so
    the directory is marked).  An existing campaign requires
    ``resume=True`` — continuing one by accident would silently append
    history — and its pinned config (seed, profile, oracle set, batch
    size, mutation rate) must match exactly, as must the
    :func:`model_tables_digest` (resuming a grid measured under edited
    model semantics would compare incomparable coverage).
    """
    state = load_campaign(campaign_dir)
    if state is None:
        state = CampaignState(config=config)
        save_state(state, campaign_dir)
        return state
    if not resume:
        raise ReproError(
            f"{campaign_dir} already holds a campaign "
            f"({state.budget_spent} programs spent); pass --resume to continue it"
        )
    if state.config.tables != config.tables:
        raise ReproError(
            f"{campaign_dir} was measured under different model tables "
            f"({state.config.tables} vs {config.tables}); the model definitions "
            f"changed — start a fresh campaign directory"
        )
    if dc_replace(state.config, tables="") != dc_replace(config, tables=""):
        raise ReproError(
            f"campaign config mismatch for {campaign_dir}: stored "
            f"{state.config.to_json()} vs requested {config.to_json()}; "
            f"planning is pinned to the original parameters"
        )
    return state


# ---------------------------------------------------------------------------
# guided planning


@dataclass(frozen=True)
class PlannedProgram:
    """One deterministic slot of a guided batch."""

    index: int
    seed: int
    profile: str
    source: str  #: ``fresh`` or ``mutant``
    text: str | None  #: mutant disassembly; ``None`` regenerates from seed
    digest: str


def _fresh_profile(state: CampaignState, index: int):
    """The bandit: fresh draws go to the profile with the best observed
    new-cells-per-program yield, with every ``_EXPLORE_EVERY``-th index
    forced onto the plain round-robin so no profile starves.  Entirely
    deterministic — ties break in :data:`MIXED_ORDER` order."""
    if state.config.profile != MIXED:
        return get_profile(state.config.profile)
    if state.budget_spent == 0:
        return profile_for_index(MIXED, index)
    if index % _EXPLORE_EVERY == 0:
        # Divide the index first: consecutive exploration slots walk the
        # whole MIXED_ORDER cycle (indices divisible by 3 taken mod 6
        # would only ever reach two of the six profiles).
        return profile_for_index(MIXED, index // _EXPLORE_EVERY)
    best_name, best_score = MIXED_ORDER[0], -1.0
    for name in MIXED_ORDER:
        score = (state.profile_novelty.get(name, 0) + 1.0) / (
            state.profile_programs.get(name, 0) + 1.0
        )
        if score > best_score:
            best_name, best_score = name, score
    return PROFILES[best_name]


def _pick_corpus_record(state: CampaignState, rng: random.Random) -> CorpusRecord:
    """Rarity-weighted corpus draw: entries whose novel cells are still
    rare in the grid are the most promising mutation parents."""
    weights = [
        1.0 / (1.0 + state.grid.min_count(record.new_cells))
        for record in state.corpus
    ]
    return rng.choices(state.corpus, weights=weights, k=1)[0]


def _pick_mutant(
    state: CampaignState, candidates: list[Program], rng: random.Random
) -> Program:
    """Novelty-targeted candidate choice: prefer (uniformly among) the
    mutants introducing the most edge kinds the grid has never seen —
    each genuinely new kind multiplies into a fresh cell per coverage
    label.  When no candidate adds a new kind, fall back to a uniform
    draw (perturbing reasons/outcomes can still pay)."""
    known = {cell[0] for cell in state.grid.cells}
    scores = [len(program_edge_kinds(c) - known) for c in candidates]
    best = max(scores)
    if best > 0:
        pool = [i for i, score in enumerate(scores) if score == best]
        return candidates[pool[rng.randrange(len(pool))]]
    return candidates[rng.randrange(len(candidates))]


def plan_batch(state: CampaignState, count: int) -> list[PlannedProgram]:
    """The next ``count`` slots, as a pure function of the committed
    state.  Each slot retries up to ``_PLAN_ATTEMPTS`` candidates whose
    digest the campaign bloom (or this batch) has already seen — dedup
    pruning *before* enumeration — and accepts the last candidate
    unconditionally so a saturated filter degrades to blind generation,
    never to a stall."""
    planned: list[PlannedProgram] = []
    local: set[str] = set()
    for slot in range(count):
        index = state.next_index + slot
        rng = random.Random(repr((state.config.seed, "guided", index)))
        chosen: PlannedProgram | None = None
        for attempt in range(_PLAN_ATTEMPTS):
            program = None
            source = "fresh"
            text = None
            profile_name = None
            pseed = derive_seed(state.config.seed, index * _PLAN_ATTEMPTS + attempt)
            if (
                state.corpus
                and attempt < _MUTANT_ATTEMPTS
                and rng.random() < state.config.mutate_rate
            ):
                record = _pick_corpus_record(state, rng)
                try:
                    parent = assemble(record.program).program
                    candidates = mutation_candidates(parent)
                except Exception:
                    candidates = []
                if candidates:
                    program = _pick_mutant(state, candidates, rng)
                    source = "mutant"
                    text = disassemble(program)
                    profile_name = record.profile
                    pseed = record.seed
            if program is None:
                profile = _fresh_profile(state, index)
                profile_name = profile.name
                program = generate_program(pseed, profile)
            digest = program_digest(program)
            last = attempt == _PLAN_ATTEMPTS - 1
            if last or (digest not in local and bytes.fromhex(digest) not in state.bloom):
                chosen = PlannedProgram(index, pseed, profile_name, source, text, digest)
                break
        assert chosen is not None
        local.add(chosen.digest)
        planned.append(chosen)
    return planned


# ---------------------------------------------------------------------------
# the work unit


def guided_one(item: tuple) -> dict:
    """Picklable guided-campaign work unit: ``(index, seed, profile,
    source, text | None, digest, oracle_names | None, cache_dir | None)``
    → a verdict dict carrying the program's grid cells, oracle statuses,
    and (for the driver only — never the WAL) its discrepancies."""
    index, seed, profile_name, source, text, digest, oracle_names, cache_dir = item
    cache = None
    if cache_dir is not None:
        from repro.cache import BehaviorCache

        cache = BehaviorCache.shared(cache_dir)
    if text is not None:
        program = assemble(text).program
    else:
        program = generate_program(seed, get_profile(profile_name))
    context = OracleContext(program, FUZZ_LIMITS, cache=cache)
    discrepancies, skipped = run_oracles(
        program, names=oracle_names, limits=FUZZ_LIMITS, cache=cache, context=context
    )
    selected = (
        tuple(oracle.name for oracle in ORACLES)
        if oracle_names is None
        else tuple(oracle_names)
    )
    failed = {d.oracle for d in discrepancies}
    statuses = {
        name: "fail" if name in failed else "skip" if name in skipped else "ok"
        for name in selected
    }
    cells = verdict_cells(program, context.enumeration_reasons(), statuses)
    return {
        "index": index,
        "seed": seed,
        "profile": profile_name,
        "source": source,
        "digest": digest,
        "text": disassemble(program),
        "cells": sorted(list(cell) for cell in cells),
        "fails": len(discrepancies),
        "discrepancies": tuple(discrepancies),
        "skipped": tuple(skipped),
    }


_WAL_ITEM_KEYS = ("index", "seed", "profile", "source", "digest", "text", "cells", "fails")


# ---------------------------------------------------------------------------
# the campaign driver


@dataclass
class GuidedReport:
    """What one guided run did (this run's slice of the campaign)."""

    campaign_dir: Path
    seed: int
    budget: int
    profile: str
    resumed_from: int  #: budget already spent when this run started
    verdicts: list[dict] = field(default_factory=list)
    minimized: list = field(default_factory=list)
    new_cells: int = 0
    state: CampaignState | None = None

    @property
    def discrepancies(self) -> list[Discrepancy]:
        return [d for verdict in self.verdicts for d in verdict["discrepancies"]]

    @property
    def clean(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        state = self.state
        skip_counts: dict[str, int] = {}
        for verdict in self.verdicts:
            for name in verdict["skipped"]:
                skip_counts[name] = skip_counts.get(name, 0) + 1
        mutants = sum(1 for v in self.verdicts if v["source"] == "mutant")
        lines = [
            f"guided campaign {self.campaign_dir}: seed={self.seed} "
            f"budget=+{self.budget} profile={self.profile}",
            f"  programs checked : {len(self.verdicts)} "
            f"({mutants} mutated; campaign total {state.budget_spent})",
            f"  discrepancies    : {len(self.discrepancies)}",
            f"  grid cells       : {len(state.grid)} (+{self.new_cells} this run)",
            f"  3-dim cells      : {len(state.grid.project())} (edge × model × reason)",
            f"  mutation corpus  : {len(state.corpus)} / {state.config.corpus_limit} entries",
        ]
        for name, count in sorted(skip_counts.items()):
            lines.append(f"  skipped {name}: {count}")
        for discrepancy in self.discrepancies:
            lines.append(f"  FAIL {discrepancy}")
        for discrepancy, result, path in self.minimized:
            where = f" -> {path}" if path else ""
            lines.append(
                f"  minimized {discrepancy.program}: "
                f"{result.original_instructions} -> {result.instructions} "
                f"instructions{where}"
            )
        return "\n".join(lines)


def _export_corpus_files(state: CampaignState, campaign_dir: Path) -> None:
    """Mirror the mutation corpus as replayable ``.litmus`` files under
    ``<dir>/corpus/`` — a human-inspectable convenience view; the
    authoritative copy lives inside the checkpoint, so a crash between
    the two writes at worst leaves this directory one checkpoint stale."""
    from repro.testing.corpus import CorpusEntry, save_entry

    directory = Path(campaign_dir) / CORPUS_SUBDIR
    for record in state.corpus:
        try:
            program = assemble(record.program).program
        except Exception:
            continue
        entry = CorpusEntry(
            program=program,
            seed=record.seed,
            profile=record.profile,
            note=f"campaign {record.source} draw {record.index}",
            cells="; ".join("|".join(cell) for cell in record.new_cells),
        )
        save_entry(entry, directory)


def run_guided_campaign(
    campaign_dir: Path,
    seed: int,
    budget: int,
    profile: str = MIXED,
    jobs: int = 1,
    oracle_names: tuple[str, ...] | None = None,
    cache_dir: Path | None = None,
    corpus_dir: Path | None = None,
    do_shrink: bool = True,
    resume: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
    mutate_rate: float = DEFAULT_MUTATE_RATE,
    corpus_limit: int = DEFAULT_CORPUS_LIMIT,
    fsync: bool = True,
) -> GuidedReport:
    """Add ``budget`` programs to the campaign in ``campaign_dir``.

    ``budget`` is *incremental*: each run appends that many programs to
    whatever the campaign has accumulated, which is how nightly budget
    adds up across runs.  Every batch commits as one fsynced WAL record
    before it is folded, so a ``kill -9`` at any moment loses at most
    in-flight (never acknowledged) work, and the resumed campaign is
    byte-identical to an uninterrupted one of the same total budget.
    """
    from repro.experiments.base import parallel_map
    from repro.testing.corpus import CorpusEntry, save_entry
    from repro.testing.fuzz import minimize_discrepancy, _renamed

    if profile != MIXED:
        get_profile(profile)
    config = CampaignConfig(
        seed=seed,
        profile=profile,
        oracles=tuple(oracle_names) if oracle_names is not None else None,
        batch_size=batch_size,
        mutate_rate=mutate_rate,
        corpus_limit=corpus_limit,
        tables=model_tables_digest(),
    )
    campaign_dir = Path(campaign_dir)
    state = open_campaign(campaign_dir, config, resume=resume)
    report = GuidedReport(
        campaign_dir=campaign_dir,
        seed=seed,
        budget=budget,
        profile=profile,
        resumed_from=state.budget_spent,
    )
    wal = WriteAheadLog(campaign_dir / WAL_FILE, fsync=fsync)
    try:
        done = 0
        batches = 0
        new_cells: set[Cell] = set()
        while done < budget:
            # Batch windows align to *absolute* multiples of the batch
            # size, not to where this particular run happened to start:
            # a run whose budget was not a multiple of the batch size
            # commits a short window, and the next run first completes
            # that window before returning to the fixed grid.  Feedback
            # therefore folds at the same indices regardless of how the
            # total budget was sliced into runs — provided every slice
            # is a multiple of the batch size (which kill -9 resumes
            # always satisfy, because only whole windows ever commit).
            size = state.config.batch_size
            count = min(size - state.next_index % size, budget - done)
            planned = plan_batch(state, count)
            items = [
                (p.index, p.seed, p.profile, p.source, p.text, p.digest,
                 state.config.oracles, cache_dir)
                for p in planned
            ]
            if jobs > 1:
                results = list(parallel_map(guided_one, items, jobs=jobs))
            else:
                results = [guided_one(item) for item in items]
            wal_items = [{key: r[key] for key in _WAL_ITEM_KEYS} for r in results]
            wal.append(
                "batch",
                f"batch-{state.next_index}",
                {"start": state.next_index, "items": wal_items},
            )
            new_cells |= _fold_batch(state, wal_items)
            report.verdicts.extend(results)
            done += count
            batches += 1
            if batches % _CHECKPOINT_EVERY == 0:
                save_state(state, campaign_dir)
                wal.rewrite([])
                _export_corpus_files(state, campaign_dir)
        save_state(state, campaign_dir)
        wal.rewrite([])
        _export_corpus_files(state, campaign_dir)
    finally:
        wal.close()
    report.new_cells = len(new_cells)
    report.state = state

    if do_shrink:
        for verdict in report.verdicts:
            if not verdict["discrepancies"]:
                continue
            program = assemble(verdict["text"]).program
            for discrepancy in verdict["discrepancies"]:
                result = minimize_discrepancy(program, discrepancy)
                path = None
                if corpus_dir is not None:
                    entry = CorpusEntry(
                        program=_renamed(result.program, f"{program.name}-min"),
                        seed=verdict["seed"],
                        profile=verdict["profile"],
                        oracle=discrepancy.oracle,
                        note=f"minimized from {result.original_instructions} "
                        f"instructions (guided campaign)",
                    )
                    path = save_entry(entry, corpus_dir)
                report.minimized.append((discrepancy, result, path))
    return report


# ---------------------------------------------------------------------------
# the blind baseline (what the benchmark compares against)


def blind_grid(
    seed: int,
    budget: int,
    oracle_names: tuple[str, ...] | None = None,
    profile: str = MIXED,
) -> CoverageGrid:
    """The coverage grid of the *stateless* PR 5 stream — exactly the
    programs ``repro fuzz --seed S --budget N`` checks, scored on the
    same grid.  ``bench_fuzzcov.py`` gates guided coverage strictly
    above this at equal budget."""
    grid = CoverageGrid()
    for index in range(budget):
        resolved = profile_for_index(profile, index)
        item = (
            index, derive_seed(seed, index), resolved.name, "fresh", None,
            "", oracle_names, None,
        )
        result = guided_one(item)
        grid.add(
            frozenset((str(k), str(m), str(r), str(o)) for k, m, r, o in result["cells"])
        )
    return grid


# ---------------------------------------------------------------------------
# reporting


def coverage_report(campaign_dir: Path) -> str:
    """The human-readable grid report behind ``repro fuzz coverage DIR``."""
    state = load_campaign(campaign_dir)
    if state is None:
        raise ReproError(f"no campaign state under {campaign_dir}")
    config = state.config
    oracles = "all" if config.oracles is None else ",".join(config.oracles)
    lines = [
        f"campaign {campaign_dir}",
        f"  config       : seed={config.seed} profile={config.profile} "
        f"oracles={oracles} batch={config.batch_size} "
        f"mutate-rate={config.mutate_rate}",
        f"  model tables : {config.tables}",
        f"  budget spent : {state.budget_spent} (next index {state.next_index})",
        f"  discrepancies: {state.discrepancies}",
        f"  grid cells   : {len(state.grid)} (edge-kind × model × reason × outcome)",
        f"  3-dim cells  : {len(state.grid.project())} (edge-kind × model × reason)",
        f"  axes         : {len(state.grid.axis_values(0))} edge kinds, "
        f"{len(state.grid.axis_values(1))} models, "
        f"{len(state.grid.axis_values(2))} reasons, "
        f"{len(state.grid.axis_values(3))} outcomes",
        f"  corpus       : {len(state.corpus)} / {config.corpus_limit} entries",
        "  profile yield (programs / new cells):",
    ]
    for name in MIXED_ORDER:
        programs = state.profile_programs.get(name, 0)
        novelty = state.profile_novelty.get(name, 0)
        if programs or novelty:
            lines.append(f"    {name:10s} {programs} / {novelty}")
    return "\n".join(lines)


__all__ = [
    "Cell",
    "CampaignConfig",
    "CampaignState",
    "CorpusRecord",
    "CoverageGrid",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CORPUS_LIMIT",
    "DEFAULT_MUTATE_RATE",
    "GuidedReport",
    "PlannedProgram",
    "blind_grid",
    "coverage_report",
    "guided_one",
    "load_campaign",
    "load_state",
    "model_tables_digest",
    "mutation_candidates",
    "open_campaign",
    "plan_batch",
    "program_digest",
    "program_edge_kinds",
    "run_guided_campaign",
    "save_state",
    "verdict_cells",
]
