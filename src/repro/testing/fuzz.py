"""Differential fuzzing campaigns: generate → check → shrink → bank.

:func:`run_campaign` drives the healthy-tree loop — ``budget`` seeded
programs through every applicable oracle, optionally fanned out over
processes with :func:`repro.experiments.base.parallel_map`.  A campaign
is deterministic: the same ``(seed, budget, profile)`` produces the same
programs, verdicts, and skip lists, regardless of ``jobs`` (enumeration
budgets are counting budgets; nothing consults the clock).

:func:`run_mutation_kill` proves the subsystem can catch real bugs:
every seeded :data:`~repro.testing.mutants.MUTANTS` entry must be
detected within the budget, shrunk to a small reproducer, banked as a
corpus file, and the file must replay — fail under the mutant, pass on
the healthy tree.  Mutation campaigns always run in-process
(``jobs=1``): monkeypatched mutants are invisible to subprocess workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.experiments.base import parallel_map
from repro.isa.program import Program
from repro.testing.corpus import CorpusEntry, save_entry
from repro.testing.fuzzgen import (
    MIXED,
    derive_seed,
    generate_program,
    get_profile,
    profile_for_index,
)
from repro.testing.mutants import MUTANTS, Mutant
from repro.testing.oracles import FUZZ_LIMITS, Discrepancy, run_oracles
from repro.testing.shrink import ShrinkResult, shrink

#: Oracles used during mutation campaigns: the parallel engine runs in
#: subprocesses that cannot see a monkeypatched mutant, so its oracle is
#: excluded (it could only produce *spurious* kills via a mutated
#: in-process warm-up).
KILL_ORACLES: tuple[str, ...] = (
    "axiomatic-vs-sc",
    "axiomatic-vs-tso",
    "axiomatic-vs-pso",
    "axiomatic-vs-dataflow",
    "pruned-vs-unpruned",
    "inclusion-chain",
    "static-vs-enumeration",
    "speculation-safety",
)


@dataclass(frozen=True)
class ProgramVerdict:
    """One fuzzed program's oracle results."""

    index: int
    seed: int
    profile: str
    program_name: str
    instructions: int
    discrepancies: tuple[Discrepancy, ...]
    skipped: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.discrepancies


def fuzz_one(item: tuple) -> ProgramVerdict:
    """Picklable campaign work unit: ``(index, seed, profile_name,
    oracle_names | None[, cache_dir | None])`` → :class:`ProgramVerdict`."""
    index, seed, profile_name, oracle_names, *rest = item
    cache_dir = rest[0] if rest else None
    cache = None
    if cache_dir is not None:
        from repro.cache import BehaviorCache

        # One shared instance per worker process: each opens its own
        # append segment (concurrent-writer safe) and flushes sidecars
        # at exit, so enumeration budget accumulates across campaigns.
        cache = BehaviorCache.shared(cache_dir)
    program = generate_program(seed, get_profile(profile_name))
    discrepancies, skipped = run_oracles(
        program, names=oracle_names, limits=FUZZ_LIMITS, cache=cache
    )
    return ProgramVerdict(
        index=index,
        seed=seed,
        profile=profile_name,
        program_name=program.name,
        instructions=program.instruction_count(),
        discrepancies=tuple(discrepancies),
        skipped=tuple(skipped),
    )


@dataclass
class CampaignReport:
    """Everything a fuzz run learned, in deterministic order."""

    seed: int
    budget: int
    profile: str
    verdicts: list[ProgramVerdict] = field(default_factory=list)
    minimized: list[tuple[Discrepancy, ShrinkResult, Path | None]] = field(
        default_factory=list
    )

    @property
    def discrepancies(self) -> list[Discrepancy]:
        return [d for verdict in self.verdicts for d in verdict.discrepancies]

    @property
    def clean(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        skip_counts: dict[str, int] = {}
        for verdict in self.verdicts:
            for name in verdict.skipped:
                skip_counts[name] = skip_counts.get(name, 0) + 1
        lines = [
            f"fuzz campaign: seed={self.seed} budget={self.budget} "
            f"profile={self.profile}",
            f"  programs checked : {len(self.verdicts)}",
            f"  discrepancies    : {len(self.discrepancies)}",
        ]
        for name, count in sorted(skip_counts.items()):
            lines.append(f"  skipped {name}: {count}")
        for discrepancy in self.discrepancies:
            lines.append(f"  FAIL {discrepancy}")
        for discrepancy, result, path in self.minimized:
            where = f" -> {path}" if path else ""
            lines.append(
                f"  minimized {discrepancy.program}: "
                f"{result.original_instructions} -> {result.instructions} "
                f"instructions{where}"
            )
        return "\n".join(lines)


def campaign_items(
    seed: int,
    budget: int,
    profile: str = MIXED,
    oracle_names: tuple[str, ...] | None = None,
    cache_dir: Path | None = None,
) -> list[tuple]:
    """The deterministic work list for a campaign (chunking-independent)."""
    items = []
    for index in range(budget):
        resolved = profile_for_index(profile, index)
        items.append(
            (index, derive_seed(seed, index), resolved.name, oracle_names, cache_dir)
        )
    return items


def run_campaign(
    seed: int,
    budget: int,
    profile: str = MIXED,
    jobs: int = 1,
    oracle_names: tuple[str, ...] | None = None,
    do_shrink: bool = True,
    corpus_dir: Path | None = None,
    cache_dir: Path | None = None,
) -> CampaignReport:
    """Fuzz ``budget`` programs; shrink and bank any counterexample.

    ``cache_dir`` opens a shared :class:`~repro.cache.store.BehaviorCache`
    in every worker, so baseline enumerations are paid once across
    oracles, repeat programs, and successive campaigns.  Verdicts are
    identical with and without it.
    """
    if profile != MIXED:
        get_profile(profile)  # validate the name before spawning workers
    items = campaign_items(seed, budget, profile, oracle_names, cache_dir)
    if jobs > 1:
        verdicts = list(parallel_map(fuzz_one, items, jobs=jobs))
    else:
        verdicts = [fuzz_one(item) for item in items]
    report = CampaignReport(seed=seed, budget=budget, profile=profile, verdicts=verdicts)

    if do_shrink:
        for verdict in verdicts:
            for discrepancy in verdict.discrepancies:
                program = generate_program(verdict.seed, get_profile(verdict.profile))
                result = minimize_discrepancy(program, discrepancy)
                path = None
                if corpus_dir is not None:
                    entry = CorpusEntry(
                        program=_renamed(result.program, f"{program.name}-min"),
                        seed=verdict.seed,
                        profile=verdict.profile,
                        oracle=discrepancy.oracle,
                        note=f"minimized from {result.original_instructions} instructions",
                    )
                    path = save_entry(entry, corpus_dir)
                report.minimized.append((discrepancy, result, path))
    return report


def minimize_discrepancy(program: Program, discrepancy: Discrepancy) -> ShrinkResult:
    """Shrink ``program`` while the same oracle keeps failing."""
    oracle_name = discrepancy.oracle

    def still_fails(candidate: Program) -> bool:
        found, _ = run_oracles(candidate, names=(oracle_name,), limits=FUZZ_LIMITS)
        return bool(found)

    return shrink(program, still_fails)


def _renamed(program: Program, name: str) -> Program:
    return Program(program.threads, dict(program.initial_memory), name)


# ---------------------------------------------------------------------------
# mutation-kill harness


@dataclass
class MutantKill:
    """Outcome of hunting one seeded mutant."""

    mutant: str
    detected: bool
    programs_run: int
    oracle: str | None = None
    program_name: str | None = None
    seed: int | None = None
    profile: str | None = None
    shrink_result: ShrinkResult | None = None
    corpus_path: Path | None = None
    replay_fails_under_mutant: bool | None = None
    healthy_tree_clean: bool | None = None

    @property
    def reproducer_instructions(self) -> int | None:
        if self.shrink_result is None:
            return None
        return self.shrink_result.instructions

    def summary(self) -> str:
        if not self.detected:
            return f"  {self.mutant}: SURVIVED after {self.programs_run} programs"
        parts = [
            f"  {self.mutant}: killed by {self.oracle} on {self.program_name} "
            f"(program {self.programs_run})"
        ]
        if self.shrink_result is not None:
            parts.append(
                f"    shrunk {self.shrink_result.original_instructions} -> "
                f"{self.shrink_result.instructions} instructions"
            )
        if self.corpus_path is not None:
            parts.append(
                f"    banked {self.corpus_path} "
                f"(replay-under-mutant={'FAIL' if self.replay_fails_under_mutant else 'ok?!'}, "
                f"healthy={'clean' if self.healthy_tree_clean else 'DIRTY'})"
            )
        return "\n".join(parts)


def hunt_mutant(
    mutant: Mutant,
    seed: int,
    budget: int,
    profile: str = MIXED,
    do_shrink: bool = True,
    corpus_dir: Path | None = None,
) -> MutantKill:
    """Fuzz under ``mutant`` until an oracle fires, then shrink and bank.

    Deliberately cache-free: the mutant is a monkeypatched engine bug,
    invisible to the cache key, so a warm cache would replay healthy
    pre-mutant behaviors and mask the kill.
    """
    items = campaign_items(seed, budget, profile, KILL_ORACLES)
    detection = None
    programs_run = 0
    with mutant.applied():
        for item in items:
            programs_run += 1
            verdict = fuzz_one(item)
            if verdict.discrepancies:
                detection = verdict
                break
        if detection is None:
            return MutantKill(mutant.name, detected=False, programs_run=programs_run)
        discrepancy = detection.discrepancies[0]
        kill = MutantKill(
            mutant.name,
            detected=True,
            programs_run=programs_run,
            oracle=discrepancy.oracle,
            program_name=detection.program_name,
            seed=detection.seed,
            profile=detection.profile,
        )
        if not do_shrink:
            return kill
        program = generate_program(detection.seed, get_profile(detection.profile))
        result = minimize_discrepancy(program, discrepancy)
        kill.shrink_result = result

        if corpus_dir is not None:
            entry = CorpusEntry(
                program=_renamed(result.program, f"{program.name}-min"),
                seed=detection.seed,
                profile=detection.profile,
                oracle=discrepancy.oracle,
                mutant=mutant.name,
                note=f"minimized from {result.original_instructions} instructions",
            )
            kill.corpus_path = save_entry(entry, corpus_dir)
            kill.replay_fails_under_mutant = bool(
                replay_path(kill.corpus_path, mutated=True)[0]
            )
    # Outside the mutant: the reproducer must be clean on the healthy tree.
    if kill.corpus_path is not None:
        kill.healthy_tree_clean = not replay_path(kill.corpus_path, mutated=False)[0]
    return kill


def run_mutation_kill(
    seed: int,
    budget: int,
    profile: str = MIXED,
    mutants: tuple[Mutant, ...] = MUTANTS,
    do_shrink: bool = True,
    corpus_dir: Path | None = None,
) -> list[MutantKill]:
    return [
        hunt_mutant(mutant, seed, budget, profile, do_shrink, corpus_dir)
        for mutant in mutants
    ]


# ---------------------------------------------------------------------------
# corpus replay


def _replay_context_key(entry: CorpusEntry, active_mutant: str | None) -> tuple:
    """Memoization key for replay contexts: the program *content* plus
    the installed mutant (mutated enumerations must never be shared with
    healthy ones, or vice versa)."""
    import hashlib

    from repro.isa.disassembler import disassemble

    digest = hashlib.blake2b(
        disassemble(entry.program).encode("utf-8"), digest_size=16
    ).hexdigest()
    return (digest, active_mutant)


def replay_entry(
    entry: CorpusEntry,
    mutated: bool | None = None,
    context_cache: dict | None = None,
):
    """Replay one loaded corpus entry: returns ``(discrepancies, skipped)``.

    ``mutated=None`` honors the entry's recorded mutant (installed when
    present); ``True`` requires one; ``False`` replays on the healthy
    tree regardless.  Mutant entries replay only their recorded oracle —
    that is the property the file witnesses.

    ``context_cache`` memoizes one :class:`~repro.testing.oracles.OracleContext`
    per (program content, installed mutant) across a replay batch, so a
    corpus holding both a healthy and a mutant view of the same program
    (or the CLI replaying after a mutation hunt already enumerated it)
    never re-enumerates from scratch.
    """
    from repro.testing.mutants import get_mutant
    from repro.testing.oracles import OracleContext

    names = None
    if entry.mutant:
        names = (entry.oracle,) if entry.oracle else KILL_ORACLES
    if mutated is True and not entry.mutant:
        raise ReproError(f"{entry.path or entry.name}: entry records no mutant to install")
    active_mutant = entry.mutant if (entry.mutant and mutated is not False) else None
    context = None
    program = entry.program
    if context_cache is not None:
        key = _replay_context_key(entry, active_mutant)
        context = context_cache.get(key)
        if context is None:
            context = OracleContext(program, FUZZ_LIMITS)
            context_cache[key] = context
        else:
            # Two corpus files may hold identical programs; run against
            # the context's own program object so memoized enumerations
            # are shared.
            program = context.program
    if active_mutant:
        with get_mutant(active_mutant).applied():
            return run_oracles(
                program, names=names, limits=FUZZ_LIMITS, context=context
            )
    return run_oracles(program, names=names, limits=FUZZ_LIMITS, context=context)


def replay_path(path: Path, mutated: bool | None = None, context_cache: dict | None = None):
    """Load-and-replay one corpus file (see :func:`replay_entry`)."""
    from repro.testing.corpus import load_entry

    return replay_entry(load_entry(path), mutated=mutated, context_cache=context_cache)


def replay_paths(paths, mutated: bool | None = None):
    """Replay a corpus batch with a shared replay-context memo.

    Returns ``[(entry, discrepancies, skipped), ...]`` in input order.
    One enumeration context is derived per distinct (program, mutant)
    pair for the whole batch — replaying the full banked corpus costs
    each program's enumeration once, not once per oracle invocation.
    """
    from repro.testing.corpus import load_entry

    context_cache: dict = {}
    results = []
    for path in paths:
        entry = load_entry(path)
        discrepancies, skipped = replay_entry(
            entry, mutated=mutated, context_cache=context_cache
        )
        results.append((entry, discrepancies, skipped))
    return results


__all__ = [
    "KILL_ORACLES",
    "CampaignReport",
    "MutantKill",
    "ProgramVerdict",
    "campaign_items",
    "fuzz_one",
    "hunt_mutant",
    "minimize_discrepancy",
    "replay_entry",
    "replay_path",
    "replay_paths",
    "run_campaign",
    "run_mutation_kill",
]
