"""Disassembler: programs back to the textual litmus format.

The inverse of :mod:`repro.isa.assembler` — the round-trip property
``assemble(disassemble(p)) == p`` holds for every representable program
(all of the litmus library) and is property-tested.  Useful for
exporting generated or family tests as standalone ``.litmus`` files.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ProgramError
from repro.isa.instructions import (
    Branch,
    Compute,
    Fence,
    FenceKind,
    Instruction,
    Load,
    Rmw,
    RmwKind,
    Store,
)
from repro.isa.operands import Operand, Reg
from repro.isa.program import Program

_RMW_NAME = {RmwKind.CAS: "cas", RmwKind.EXCHANGE: "xchg", RmwKind.FETCH_ADD: "fadd"}


def _operand_text(operand: Operand) -> str:
    if isinstance(operand, Reg):
        return operand.name
    value = operand.value
    if isinstance(value, int):
        return str(value)
    return value  # a location name


def _instruction_text(instruction: Instruction) -> str:
    if isinstance(instruction, Store):
        mnemonic = "S.rel" if instruction.release else "S"
        return f"{mnemonic} {_operand_text(instruction.addr)}, {_operand_text(instruction.value)}"
    if isinstance(instruction, Load):
        mnemonic = "L.acq" if instruction.acquire else "L"
        return f"{instruction.dst.name} = {mnemonic} {_operand_text(instruction.addr)}"
    if isinstance(instruction, Fence):
        if instruction.kind is FenceKind.FULL:
            return "fence"
        return f"fence {instruction.kind.value}"
    if isinstance(instruction, Compute):
        args = ", ".join(_operand_text(arg) for arg in instruction.args)
        return f"{instruction.dst.name} = {instruction.op} {args}"
    if isinstance(instruction, Branch):
        if instruction.cond is None:
            return f"jmp {instruction.target}"
        mnemonic = "beqz" if instruction.negate else "bnez"
        return f"{mnemonic} {instruction.cond.name}, {instruction.target}"
    if isinstance(instruction, Rmw):
        suffix = ""
        if instruction.acquire and instruction.release:
            suffix = ".acqrel"
        elif instruction.acquire:
            suffix = ".acq"
        elif instruction.release:
            suffix = ".rel"
        operands = ", ".join(
            [_operand_text(instruction.addr)]
            + [_operand_text(arg) for arg in instruction.args]
        )
        return f"{instruction.dst.name} = {_RMW_NAME[instruction.kind]}{suffix} {operands}"
    raise ProgramError(f"cannot disassemble {type(instruction).__name__}")


def disassemble(program: Program, condition_text: str | None = None) -> str:
    """The program in the textual format (optionally with a condition)."""
    lines = [f"test {program.name}"]
    if program.initial_memory:
        entries = " ".join(
            f"{location}={value}"
            for location, value in sorted(program.initial_memory.items())
        )
        lines.append(f"init {entries}")
    for thread in program.threads:
        lines.append("")
        lines.append(f"thread {thread.name}")
        labels_at: dict[int, list[str]] = {}
        for label, index in thread.labels.items():
            labels_at.setdefault(index, []).append(label)
        for index, instruction in enumerate(thread.code):
            for label in sorted(labels_at.get(index, [])):
                lines.append(f"{label}:")
            lines.append(f"    {_instruction_text(instruction)}")
        for label in sorted(labels_at.get(len(thread.code), [])):
            lines.append(f"{label}:")
    if condition_text:
        lines.append("")
        lines.append(condition_text)
    lines.append("")
    return "\n".join(lines)


def export_library(directory: str | Path) -> list[Path]:
    """Write every library litmus test as a ``.litmus`` file."""
    from repro.litmus.library import all_tests

    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written = []
    for test in all_tests():
        safe_name = test.name.replace("+", "_").replace(".", "_")
        path = target / f"{safe_name}.litmus"
        path.write_text(
            disassemble(test.program, str(test.condition)), encoding="utf-8"
        )
        written.append(path)
    return written
