"""Mini ISA substrate: operands, instructions, programs, assembler, DSL."""

from repro.isa.assembler import AssemblySource, assemble, assemble_program, parse_instruction
from repro.isa.disassembler import disassemble, export_library
from repro.isa.lint import LintFinding, LintLevel, lint_program
from repro.isa.dsl import ProgramBuilder, ThreadBuilder
from repro.isa.instructions import (
    Branch,
    Compute,
    Fence,
    FenceKind,
    Instruction,
    Load,
    OpClass,
    Rmw,
    RmwKind,
    Store,
    alu_eval,
)
from repro.isa.operands import Const, Operand, Reg, Value, as_operand
from repro.isa.program import Program, Thread

__all__ = [
    "disassemble",
    "export_library",
    "LintFinding",
    "LintLevel",
    "lint_program",
    "AssemblySource",
    "assemble",
    "assemble_program",
    "parse_instruction",
    "ProgramBuilder",
    "ThreadBuilder",
    "Branch",
    "Compute",
    "Fence",
    "FenceKind",
    "Instruction",
    "Load",
    "OpClass",
    "Rmw",
    "RmwKind",
    "Store",
    "alu_eval",
    "Const",
    "Operand",
    "Reg",
    "Value",
    "as_operand",
    "Program",
    "Thread",
]
