"""Static instruction set for the mini ISA.

The ISA mirrors the instruction classes of the paper's Figure 1:

* :class:`Compute` — ALU operations (the table's "+, etc." row/column),
* :class:`Load` / :class:`Store` — memory operations,
* :class:`Fence` — memory fences (full by default, fine-grained kinds as
  an extension),
* :class:`Branch` — conditional/unconditional control transfer,
* :class:`Rmw` — atomic read-modify-write (paper Section 8's future-work
  "atomic memory primitives such as Compare and Swap").

Instructions are immutable *static* entities; a dynamic instance of an
instruction in an execution is a graph node (see :mod:`repro.core.node`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ExecutionError, ProgramError
from repro.isa.operands import Operand, Reg, Value, as_operand


class OpClass(enum.Enum):
    """The instruction classes distinguished by reordering tables."""

    COMPUTE = "compute"
    LOAD = "load"
    STORE = "store"
    RMW = "rmw"
    FENCE = "fence"
    BRANCH = "branch"

    def reads_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.RMW)

    def writes_memory(self) -> bool:
        return self in (OpClass.STORE, OpClass.RMW)

    def is_memory(self) -> bool:
        return self.reads_memory() or self.writes_memory()


class FenceKind(enum.Enum):
    """Which orderings a fence enforces.

    ``FULL`` is the paper's Fence (orders all prior Loads and Stores before
    all subsequent Loads and Stores).  The fine-grained kinds are the
    SPARC-V9 ``membar`` flavors, provided as an extension: e.g.
    ``STORE_LOAD`` orders prior stores before subsequent loads only.
    """

    FULL = "full"
    LOAD_LOAD = "ld-ld"
    LOAD_STORE = "ld-st"
    STORE_LOAD = "st-ld"
    STORE_STORE = "st-st"

    def orders_before(self, cls: OpClass) -> bool:
        """True if operations of class ``cls`` *preceding* the fence must
        complete before it."""
        if not cls.is_memory():
            return False
        if self is FenceKind.FULL:
            return True
        wants_load = self in (FenceKind.LOAD_LOAD, FenceKind.LOAD_STORE)
        wants_store = self in (FenceKind.STORE_LOAD, FenceKind.STORE_STORE)
        return (wants_load and cls.reads_memory()) or (wants_store and cls.writes_memory())

    def orders_after(self, cls: OpClass) -> bool:
        """True if operations of class ``cls`` *following* the fence must
        wait for it."""
        if not cls.is_memory():
            return False
        if self is FenceKind.FULL:
            return True
        wants_load = self in (FenceKind.LOAD_LOAD, FenceKind.STORE_LOAD)
        wants_store = self in (FenceKind.LOAD_STORE, FenceKind.STORE_STORE)
        return (wants_load and cls.reads_memory()) or (wants_store and cls.writes_memory())


class RmwKind(enum.Enum):
    """Atomic read-modify-write flavors."""

    EXCHANGE = "xchg"  #: store operand, return old value
    CAS = "cas"  #: store new iff old == expected, return old value
    FETCH_ADD = "fadd"  #: store old + operand, return old value


#: ALU operations available to :class:`Compute`.  Each takes the operand
#: values in order and returns the result.  Comparison ops return 0/1.
_ALU_OPS: dict[str, Callable[..., Value]] = {
    "mov": lambda a: a,
    "add": lambda a, b: _arith(a, b, lambda x, y: x + y, "add"),
    "sub": lambda a, b: _arith(a, b, lambda x, y: x - y, "sub"),
    "mul": lambda a, b: _arith(a, b, lambda x, y: x * y, "mul"),
    "div": lambda a, b: _arith(a, b, lambda x, y: x // y, "div"),
    "mod": lambda a, b: _arith(a, b, lambda x, y: x % y, "mod"),
    "xor": lambda a, b: _arith(a, b, lambda x, y: x ^ y, "xor"),
    "and": lambda a, b: _arith(a, b, lambda x, y: x & y, "and"),
    "or": lambda a, b: _arith(a, b, lambda x, y: x | y, "or"),
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: _arith(a, b, lambda x, y: int(x < y), "lt"),
    "le": lambda a, b: _arith(a, b, lambda x, y: int(x <= y), "le"),
    "gt": lambda a, b: _arith(a, b, lambda x, y: int(x > y), "gt"),
    "ge": lambda a, b: _arith(a, b, lambda x, y: int(x >= y), "ge"),
    "not": lambda a: int(not a),
}

_ALU_ARITY: dict[str, int] = {name: (1 if name in ("mov", "not") else 2) for name in _ALU_OPS}


def _arith(a: Value, b: Value, fn: Callable[[int, int], int], name: str) -> int:
    if not isinstance(a, int) or not isinstance(b, int):
        raise ExecutionError(f"ALU op {name!r} requires integer operands, got {a!r}, {b!r}")
    return fn(a, b)


def alu_eval(op: str, args: tuple[Value, ...]) -> Value:
    """Evaluate ALU operation ``op`` on resolved operand values."""
    try:
        fn = _ALU_OPS[op]
    except KeyError:
        raise ProgramError(f"unknown ALU operation {op!r}") from None
    return fn(*args)


class Instruction:
    """Base class for static instructions.

    Subclasses are frozen dataclasses.  The common protocol:

    * ``op_class`` — the :class:`OpClass` used by reordering tables,
    * ``sources()`` — registers whose values the instruction needs,
    * ``dest()`` — register written (or None),
    * ``addr_operand()`` — the operand supplying the memory address
      (or None for non-memory instructions).
    """

    op_class: OpClass

    def sources(self) -> tuple[Reg, ...]:
        raise NotImplementedError

    def dest(self) -> Reg | None:
        return None

    def addr_operand(self) -> Operand | None:
        return None


def _regs_in(*operands: Operand) -> tuple[Reg, ...]:
    return tuple(op for op in operands if isinstance(op, Reg))


@dataclass(frozen=True, slots=True)
class Compute(Instruction):
    """ALU instruction: ``dst = op(args...)``.

    ``op`` names an operation in the ALU table (``mov``, ``add``, ``eq``,
    ...).  Operands may be registers or constants.
    """

    dst: Reg
    op: str
    args: tuple[Operand, ...]
    op_class: OpClass = field(default=OpClass.COMPUTE, init=False)

    def __post_init__(self) -> None:
        if self.op not in _ALU_OPS:
            raise ProgramError(f"unknown ALU operation {self.op!r}")
        if len(self.args) != _ALU_ARITY[self.op]:
            raise ProgramError(
                f"ALU op {self.op!r} takes {_ALU_ARITY[self.op]} operands, got {len(self.args)}"
            )

    def sources(self) -> tuple[Reg, ...]:
        return _regs_in(*self.args)

    def dest(self) -> Reg | None:
        return self.dst

    def __str__(self) -> str:
        return f"{self.dst} = {self.op}({', '.join(map(str, self.args))})"


@dataclass(frozen=True, slots=True)
class Load(Instruction):
    """Memory load: ``dst = M[addr]``.

    ``acquire=True`` gives the load half-fence semantics: it is ordered
    before every subsequent memory operation of its thread (an RCsc
    load-acquire, as on ARMv8/Itanium — the paper's "reference
    specification of a computer family" direction).
    """

    dst: Reg
    addr: Operand
    acquire: bool = False
    op_class: OpClass = field(default=OpClass.LOAD, init=False)

    def sources(self) -> tuple[Reg, ...]:
        return _regs_in(self.addr)

    def dest(self) -> Reg | None:
        return self.dst

    def addr_operand(self) -> Operand | None:
        return self.addr

    def __str__(self) -> str:
        mnemonic = "L.acq" if self.acquire else "L"
        return f"{self.dst} = {mnemonic} {self.addr}"


@dataclass(frozen=True, slots=True)
class Store(Instruction):
    """Memory store: ``M[addr] = value``.

    ``release=True`` gives the store half-fence semantics: every prior
    memory operation of its thread is ordered before it.
    """

    addr: Operand
    value: Operand
    release: bool = False
    op_class: OpClass = field(default=OpClass.STORE, init=False)

    def sources(self) -> tuple[Reg, ...]:
        return _regs_in(self.addr, self.value)

    def addr_operand(self) -> Operand | None:
        return self.addr

    def __str__(self) -> str:
        mnemonic = "S.rel" if self.release else "S"
        return f"{mnemonic} {self.addr}, {self.value}"


@dataclass(frozen=True, slots=True)
class Fence(Instruction):
    """Memory fence.  ``kind`` selects which orderings it enforces."""

    kind: FenceKind = FenceKind.FULL
    op_class: OpClass = field(default=OpClass.FENCE, init=False)

    def sources(self) -> tuple[Reg, ...]:
        return ()

    def __str__(self) -> str:
        return "Fence" if self.kind is FenceKind.FULL else f"Fence[{self.kind.value}]"


@dataclass(frozen=True, slots=True)
class Branch(Instruction):
    """Conditional branch: jump to ``target`` when the condition holds.

    ``cond`` is the condition register; the branch is taken when the
    register is non-zero (or zero, when ``negate`` is set).  With
    ``cond=None`` the branch is unconditional (a jump).
    """

    target: str
    cond: Reg | None = None
    negate: bool = False
    op_class: OpClass = field(default=OpClass.BRANCH, init=False)

    def sources(self) -> tuple[Reg, ...]:
        return (self.cond,) if self.cond is not None else ()

    def taken(self, cond_value: Value) -> bool:
        """Decide whether the branch is taken given its condition value."""
        if self.cond is None:
            return True
        truth = bool(cond_value)
        return (not truth) if self.negate else truth

    def __str__(self) -> str:
        if self.cond is None:
            return f"jmp {self.target}"
        op = "beqz" if self.negate else "bnez"
        return f"{op} {self.cond}, {self.target}"


@dataclass(frozen=True, slots=True)
class Rmw(Instruction):
    """Atomic read-modify-write on ``addr``; old value is written to ``dst``.

    * ``EXCHANGE``: stores ``args[0]``.
    * ``CAS``: stores ``args[1]`` iff the old value equals ``args[0]``.
    * ``FETCH_ADD``: stores ``old + args[0]``.

    In the execution-graph semantics an Rmw is a single node that acts as
    both Load and Store; serialization condition 3 (no intervening store
    between source and observer) then yields atomicity for free.

    ``acquire``/``release`` give the usual half-fence annotations (an
    acquire-release CAS is the canonical lock primitive).
    """

    dst: Reg
    addr: Operand
    kind: RmwKind
    args: tuple[Operand, ...]
    acquire: bool = False
    release: bool = False
    op_class: OpClass = field(default=OpClass.RMW, init=False)

    def __post_init__(self) -> None:
        arity = {RmwKind.EXCHANGE: 1, RmwKind.CAS: 2, RmwKind.FETCH_ADD: 1}[self.kind]
        if len(self.args) != arity:
            raise ProgramError(
                f"RMW {self.kind.value} takes {arity} operands, got {len(self.args)}"
            )

    def sources(self) -> tuple[Reg, ...]:
        return _regs_in(self.addr, *self.args)

    def dest(self) -> Reg | None:
        return self.dst

    def addr_operand(self) -> Operand | None:
        return self.addr

    def stored_value(self, old: Value, args: tuple[Value, ...]) -> Value | None:
        """The value this Rmw stores given the observed old value, or None
        if it does not store (a failed CAS)."""
        if self.kind is RmwKind.EXCHANGE:
            return args[0]
        if self.kind is RmwKind.CAS:
            return args[1] if old == args[0] else None
        if not isinstance(old, int) or not isinstance(args[0], int):
            raise ExecutionError(f"fetch-add requires integers, got {old!r} + {args[0]!r}")
        return old + args[0]

    def __str__(self) -> str:
        suffix = ""
        if self.acquire and self.release:
            suffix = ".acqrel"
        elif self.acquire:
            suffix = ".acq"
        elif self.release:
            suffix = ".rel"
        return (
            f"{self.dst} = {self.kind.value}{suffix} {self.addr}, "
            f"{', '.join(map(str, self.args))}"
        )


def normalize_args(args: tuple[object, ...]) -> tuple[Operand, ...]:
    """Coerce a tuple of raw values/operands into operands (DSL helper)."""
    return tuple(as_operand(a) for a in args)


__all__ = [
    "OpClass",
    "FenceKind",
    "RmwKind",
    "Instruction",
    "Compute",
    "Load",
    "Store",
    "Fence",
    "Branch",
    "Rmw",
    "alu_eval",
    "normalize_args",
]
