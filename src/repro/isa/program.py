"""Programs and threads.

A :class:`Program` is a set of named threads plus the initial memory
contents.  Thread code is a flat list of instructions with symbolic labels
as branch targets (labels are attached between instructions, herd-style).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.isa.instructions import Branch, Instruction, OpClass
from repro.isa.operands import Const, Reg, Value


@dataclass(frozen=True)
class Thread:
    """A single program thread.

    ``labels`` maps a label name to the instruction index it precedes; a
    label equal to ``len(code)`` marks the end of the thread (branching
    there terminates the thread).
    """

    name: str
    code: tuple[Instruction, ...]
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.code):
                raise ProgramError(
                    f"thread {self.name!r}: label {label!r} points at {index}, "
                    f"valid range is 0..{len(self.code)}"
                )
        for position, instruction in enumerate(self.code):
            if isinstance(instruction, Branch) and instruction.target not in self.labels:
                raise ProgramError(
                    f"thread {self.name!r}: branch at {position} targets unknown "
                    f"label {instruction.target!r}"
                )

    def target_of(self, branch: Branch) -> int:
        """The instruction index a taken branch transfers control to."""
        return self.labels[branch.target]

    def registers(self) -> tuple[Reg, ...]:
        """All registers mentioned by this thread, in first-use order."""
        seen: dict[Reg, None] = {}
        for instruction in self.code:
            for reg in instruction.sources():
                seen.setdefault(reg, None)
            dst = instruction.dest()
            if dst is not None:
                seen.setdefault(dst, None)
        return tuple(seen)

    def static_locations(self) -> set[str]:
        """Location names appearing as constant addresses or constant data."""
        locations: set[str] = set()
        for instruction in self.code:
            addr = instruction.addr_operand()
            if isinstance(addr, Const) and isinstance(addr.value, str):
                locations.add(addr.value)
            # Stored string constants are pointer values: they name locations
            # a register-indirect access may later touch (paper Figure 8).
            for operand in _data_operands(instruction):
                if isinstance(operand, Const) and isinstance(operand.value, str):
                    locations.add(operand.value)
        return locations


def _data_operands(instruction: Instruction) -> tuple:
    from repro.isa.instructions import Compute, Rmw, Store

    if isinstance(instruction, Store):
        return (instruction.value,)
    if isinstance(instruction, Rmw):
        return instruction.args
    if isinstance(instruction, Compute):
        return instruction.args
    return ()


@dataclass(frozen=True)
class Program:
    """A multithreaded program: threads plus initial memory contents.

    Locations not listed in ``initial_memory`` start at integer 0; the
    enumeration machinery materializes one *init Store* per referenced
    location, ordered before all thread operations (paper Section 4:
    "Memory is initialized with Store operations before any thread is
    started", guaranteeing ``candidates(L)`` is never empty).
    """

    threads: tuple[Thread, ...]
    initial_memory: dict[str, Value] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        if not self.threads:
            raise ProgramError("a program must have at least one thread")
        names = [thread.name for thread in self.threads]
        if len(set(names)) != len(names):
            raise ProgramError(f"duplicate thread names: {names}")

    def thread_index(self, name: str) -> int:
        for index, thread in enumerate(self.threads):
            if thread.name == name:
                return index
        raise ProgramError(f"no thread named {name!r} in program {self.name!r}")

    def locations(self) -> tuple[str, ...]:
        """All memory locations the program may touch, sorted.

        Includes statically named locations, pointer constants, and keys of
        ``initial_memory``.  Register-indirect accesses can only reach
        addresses that exist as values somewhere in the program, so this
        set is conservative and complete for init-store generation.
        """
        locations: set[str] = set(self.initial_memory)
        for thread in self.threads:
            locations |= thread.static_locations()
        for value in self.initial_memory.values():
            if isinstance(value, str):
                locations.add(value)
        return tuple(sorted(locations))

    def instruction_count(self) -> int:
        return sum(len(thread.code) for thread in self.threads)

    def has_branches(self) -> bool:
        return any(
            instruction.op_class is OpClass.BRANCH
            for thread in self.threads
            for instruction in thread.code
        )

    def initial_value(self, location: str) -> Value:
        return self.initial_memory.get(location, 0)

    def __str__(self) -> str:
        lines = [f"program {self.name!r}:"]
        for thread in self.threads:
            lines.append(f"  thread {thread.name}:")
            back_labels = {index: label for label, index in thread.labels.items()}
            for position, instruction in enumerate(thread.code):
                if position in back_labels:
                    lines.append(f"   {back_labels[position]}:")
                lines.append(f"    {instruction}")
            if len(thread.code) in back_labels:
                lines.append(f"   {back_labels[len(thread.code)]}:")
        return "\n".join(lines)
