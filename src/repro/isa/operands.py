"""Operand types for the mini ISA.

Instructions take operands that are either registers (:class:`Reg`) or
immediate constants (:class:`Const`).  Values flowing through the machine
are either integers (ordinary data) or strings (memory-location names,
i.e. addresses — the paper's Figure 8 stores the *address* ``w`` into
location ``x`` to model pointers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import ProgramError

#: A runtime value: plain data (int) or a memory-location name (str).
Value = Union[int, str]


@dataclass(frozen=True, slots=True)
class Reg:
    """A register operand, identified by name (e.g. ``r1``).

    Registers are thread-local; the same name in two threads denotes two
    unrelated registers.  A register that is read before any instruction
    has written it holds the integer 0.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ProgramError(f"register name must be a non-empty string, got {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """An immediate constant operand.

    The payload may be an int (data) or a str (a memory-location name,
    used both as store data for pointer idioms and as a direct address).
    """

    value: Value

    def __post_init__(self) -> None:
        if not isinstance(self.value, (int, str)) or isinstance(self.value, bool):
            raise ProgramError(f"constant must be int or str, got {self.value!r}")

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


#: Any instruction operand.
Operand = Union[Reg, Const]


def as_operand(raw: "Operand | Value") -> Operand:
    """Coerce a raw int/str into a :class:`Const`; pass operands through.

    The DSL accepts bare Python values wherever an operand is expected;
    this helper normalizes them.  Strings are treated as location names
    (constants), **not** register references — use :class:`Reg` explicitly
    for registers.
    """
    if isinstance(raw, (Reg, Const)):
        return raw
    if isinstance(raw, (int, str)) and not isinstance(raw, bool):
        return Const(raw)
    raise ProgramError(f"cannot interpret {raw!r} as an operand")
