"""Textual assembly format for litmus-style programs.

The format is line-oriented; ``#`` starts a comment.  Example::

    test SB
    init x=0 y=0

    thread P0
        S x, 1
        fence
        r1 = L y

    thread P1
        S y, 1
        fence
        r2 = L x

    exists (P0:r1=0 /\\ P1:r2=0)

Operand syntax: tokens matching ``r<digits>`` are registers; integer
literals are data; any other identifier is a memory-location name (used
both as an address and as a pointer value, matching the paper's Figure 8).
A trailing ``exists``/``forall``/``~exists`` line carries the litmus
condition; it is returned verbatim for :mod:`repro.litmus` to parse.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import AssemblerError
from repro.isa.instructions import (
    Branch,
    Compute,
    Fence,
    FenceKind,
    Instruction,
    Load,
    Rmw,
    RmwKind,
    Store,
)
from repro.isa.operands import Const, Operand, Reg, Value
from repro.isa.program import Program, Thread

_REGISTER_RE = re.compile(r"^r\d+$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_INT_RE = re.compile(r"^-?\d+$")
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")

_FENCE_KINDS = {kind.value: kind for kind in FenceKind}
_CONDITION_KEYWORDS = ("exists", "~exists", "forall")


@dataclass
class AssemblySource:
    """The result of assembling a source text: a program plus the raw
    condition line (if any), for the litmus layer to interpret."""

    program: Program
    condition_text: str | None = None


def parse_operand(token: str, line_number: int | None = None) -> Operand:
    """Parse one operand token into a :class:`Reg` or :class:`Const`."""
    token = token.strip()
    if _INT_RE.match(token):
        return Const(int(token))
    if _REGISTER_RE.match(token):
        return Reg(token)
    if token.startswith("&"):
        name = token[1:]
        if not _IDENT_RE.match(name):
            raise AssemblerError(f"bad address-of operand {token!r}", line_number)
        return Const(name)
    if _IDENT_RE.match(token):
        return Const(token)
    raise AssemblerError(f"cannot parse operand {token!r}", line_number)


def _split_operands(text: str, line_number: int) -> list[str]:
    parts = [part.strip() for part in text.split(",")]
    if any(not part for part in parts):
        raise AssemblerError(f"empty operand in {text!r}", line_number)
    return parts


def parse_instruction(line: str, line_number: int | None = None) -> Instruction:
    """Parse a single instruction line (without label or comment)."""
    text = line.strip()
    lowered = text.lower()

    if lowered == "fence":
        return Fence()
    if lowered.startswith("fence "):
        kind_name = text.split(None, 1)[1].strip().lower()
        if kind_name not in _FENCE_KINDS:
            raise AssemblerError(f"unknown fence kind {kind_name!r}", line_number)
        return Fence(_FENCE_KINDS[kind_name])

    match = re.match(r"^(bnez|beqz)\s+(\S+)\s*,\s*(\S+)$", text, re.IGNORECASE)
    if match:
        mnemonic, reg_token, target = match.groups()
        operand = parse_operand(reg_token, line_number)
        if not isinstance(operand, Reg):
            raise AssemblerError(f"{mnemonic} needs a register, got {reg_token!r}", line_number)
        return Branch(target, operand, negate=(mnemonic.lower() == "beqz"))

    match = re.match(r"^jmp\s+(\S+)$", text, re.IGNORECASE)
    if match:
        return Branch(match.group(1), None)

    match = re.match(r"^S(\.rel)?\s+(.+)$", text)
    if match:
        parts = _split_operands(match.group(2), line_number or 0)
        if len(parts) != 2:
            raise AssemblerError(f"store takes 'S addr, value', got {text!r}", line_number)
        return Store(
            parse_operand(parts[0], line_number),
            parse_operand(parts[1], line_number),
            release=match.group(1) is not None,
        )

    match = re.match(r"^(r\d+)\s*=\s*(.+)$", text)
    if match:
        dst = Reg(match.group(1))
        rhs = match.group(2).strip()
        return _parse_assignment(dst, rhs, line_number)

    raise AssemblerError(f"cannot parse instruction {text!r}", line_number)


def _parse_assignment(dst: Reg, rhs: str, line_number: int | None) -> Instruction:
    match = re.match(r"^L(\.acq)?\s+(\S+)$", rhs)
    if match:
        return Load(
            dst,
            parse_operand(match.group(2), line_number),
            acquire=match.group(1) is not None,
        )

    match = re.match(r"^(cas|xchg|fadd)(\.acqrel|\.acq|\.rel)?\s+(.+)$", rhs, re.IGNORECASE)
    if match:
        kind = {
            "cas": RmwKind.CAS,
            "xchg": RmwKind.EXCHANGE,
            "fadd": RmwKind.FETCH_ADD,
        }[match.group(1).lower()]
        suffix = (match.group(2) or "").lower()
        parts = _split_operands(match.group(3), line_number or 0)
        addr = parse_operand(parts[0], line_number)
        args = tuple(parse_operand(part, line_number) for part in parts[1:])
        return Rmw(
            dst,
            addr,
            kind,
            args,
            acquire=suffix in (".acq", ".acqrel"),
            release=suffix in (".rel", ".acqrel"),
        )

    match = re.match(r"^([a-z]+)\s+(.+)$", rhs)
    if match:
        op = match.group(1)
        parts = _split_operands(match.group(2), line_number or 0)
        return Compute(dst, op, tuple(parse_operand(part, line_number) for part in parts))

    # Bare operand: "r1 = 7" or "r1 = x" is a mov.
    return Compute(dst, "mov", (parse_operand(rhs, line_number),))


def _parse_init(text: str, line_number: int) -> dict[str, Value]:
    initial: dict[str, Value] = {}
    for assignment in text.split():
        if "=" not in assignment:
            raise AssemblerError(f"init entries look like loc=value, got {assignment!r}", line_number)
        location, _, raw = assignment.partition("=")
        if not _IDENT_RE.match(location):
            raise AssemblerError(f"bad location name {location!r}", line_number)
        if _INT_RE.match(raw):
            initial[location] = int(raw)
        elif _IDENT_RE.match(raw):
            initial[location] = raw
        else:
            raise AssemblerError(f"bad initial value {raw!r}", line_number)
    return initial


def assemble(source: str) -> AssemblySource:
    """Assemble a full source text into a program plus condition text."""
    name = "program"
    initial: dict[str, Value] = {}
    threads: list[Thread] = []
    condition_text: str | None = None

    current_name: str | None = None
    current_code: list[Instruction] = []
    current_labels: dict[str, int] = {}

    def flush_thread(line_number: int) -> None:
        nonlocal current_name, current_code, current_labels
        if current_name is None:
            return
        try:
            threads.append(Thread(current_name, tuple(current_code), dict(current_labels)))
        except Exception as exc:  # re-wrap with location info
            raise AssemblerError(str(exc), line_number) from exc
        current_name, current_code, current_labels = None, [], {}

    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        lowered = line.lower()

        if lowered.startswith("test "):
            name = line.split(None, 1)[1].strip()
            continue
        if lowered.startswith("init"):
            rest = line[4:].strip()
            initial.update(_parse_init(rest, line_number))
            continue
        if lowered.startswith("thread"):
            flush_thread(line_number)
            parts = line.split(None, 1)
            current_name = parts[1].strip() if len(parts) > 1 else f"P{len(threads)}"
            continue
        if any(lowered.startswith(keyword) for keyword in _CONDITION_KEYWORDS):
            condition_text = line
            continue

        if current_name is None:
            raise AssemblerError(
                f"instruction {line!r} appears before any 'thread' directive", line_number
            )

        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group(1)
            if label in current_labels:
                raise AssemblerError(f"duplicate label {label!r}", line_number)
            current_labels[label] = len(current_code)
            continue

        current_code.append(parse_instruction(line, line_number))

    flush_thread(len(source.splitlines()))
    if not threads:
        raise AssemblerError("source contains no threads")

    return AssemblySource(Program(tuple(threads), initial, name), condition_text)


def assemble_program(source: str) -> Program:
    """Assemble and return just the program (ignoring any condition)."""
    return assemble(source).program
