"""A small builder DSL for constructing programs in Python.

Example — the store-buffering (SB) litmus test::

    from repro.isa.dsl import ProgramBuilder

    builder = ProgramBuilder("SB")
    p0 = builder.thread("P0")
    p0.store("x", 1)
    p0.load("r1", "y")
    p1 = builder.thread("P1")
    p1.store("y", 1)
    p1.load("r2", "x")
    program = builder.build()

Addresses and stored values may be strings (location names), ints, or
:class:`~repro.isa.operands.Reg` for register-indirect access.  As in
the assembler, a string matching ``r<digits>`` denotes a *register*;
any other string is a memory-location name.
"""

from __future__ import annotations

import re

from repro.errors import ProgramError
from repro.isa.instructions import (
    Branch,
    Compute,
    Fence,
    FenceKind,
    Instruction,
    Load,
    Rmw,
    RmwKind,
    Store,
)
from repro.isa.operands import Operand, Reg, Value, as_operand
from repro.isa.program import Program, Thread

_REGISTER_RE = re.compile(r"^r\d+$")


def _operand(value: object) -> Operand:
    """DSL operand coercion: ``r<digits>`` strings are registers (matching
    the assembler's convention); other strings are location names."""
    if isinstance(value, str) and _REGISTER_RE.match(value):
        return Reg(value)
    return as_operand(value)  # type: ignore[arg-type]


class ThreadBuilder:
    """Accumulates instructions and labels for one thread.

    All instruction methods return ``self`` so calls can be chained.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._code: list[Instruction] = []
        self._labels: dict[str, int] = {}

    def _push(self, instruction: Instruction) -> "ThreadBuilder":
        self._code.append(instruction)
        return self

    def load(self, dst: str | Reg, addr: object, acquire: bool = False) -> "ThreadBuilder":
        """``dst = M[addr]`` (optionally with acquire semantics)."""
        return self._push(Load(_reg(dst), _operand(addr), acquire=acquire))

    def store(self, addr: object, value: object, release: bool = False) -> "ThreadBuilder":
        """``M[addr] = value`` (optionally with release semantics)."""
        return self._push(Store(_operand(addr), _operand(value), release=release))

    def fence(self, kind: FenceKind = FenceKind.FULL) -> "ThreadBuilder":
        return self._push(Fence(kind))

    def compute(self, dst: str | Reg, op: str, *args: object) -> "ThreadBuilder":
        """``dst = op(args...)`` — see the ALU table in instructions.py."""
        return self._push(Compute(_reg(dst), op, tuple(_operand(a) for a in args)))

    def mov(self, dst: str | Reg, src: object) -> "ThreadBuilder":
        return self.compute(dst, "mov", src)

    def add(self, dst: str | Reg, a: object, b: object) -> "ThreadBuilder":
        return self.compute(dst, "add", a, b)

    def eq(self, dst: str | Reg, a: object, b: object) -> "ThreadBuilder":
        return self.compute(dst, "eq", a, b)

    def label(self, name: str) -> "ThreadBuilder":
        """Attach a label at the current position (before the next instruction)."""
        if name in self._labels:
            raise ProgramError(f"thread {self.name!r}: duplicate label {name!r}")
        self._labels[name] = len(self._code)
        return self

    def bnez(self, cond: str | Reg, target: str) -> "ThreadBuilder":
        """Branch to ``target`` when ``cond`` is non-zero."""
        return self._push(Branch(target, _reg(cond), negate=False))

    def beqz(self, cond: str | Reg, target: str) -> "ThreadBuilder":
        """Branch to ``target`` when ``cond`` is zero."""
        return self._push(Branch(target, _reg(cond), negate=True))

    def jmp(self, target: str) -> "ThreadBuilder":
        return self._push(Branch(target, None))

    def cas(
        self,
        dst: str | Reg,
        addr: object,
        expected: object,
        new: object,
        acquire: bool = False,
        release: bool = False,
    ) -> "ThreadBuilder":
        """Atomic compare-and-swap; old value lands in ``dst``."""
        return self._push(
            Rmw(
                _reg(dst),
                _operand(addr),
                RmwKind.CAS,
                (_operand(expected), _operand(new)),
                acquire=acquire,
                release=release,
            )
        )

    def xchg(
        self,
        dst: str | Reg,
        addr: object,
        value: object,
        acquire: bool = False,
        release: bool = False,
    ) -> "ThreadBuilder":
        """Atomic exchange; old value lands in ``dst``."""
        return self._push(
            Rmw(
                _reg(dst),
                _operand(addr),
                RmwKind.EXCHANGE,
                (_operand(value),),
                acquire=acquire,
                release=release,
            )
        )

    def fetch_add(
        self,
        dst: str | Reg,
        addr: object,
        delta: object,
        acquire: bool = False,
        release: bool = False,
    ) -> "ThreadBuilder":
        """Atomic fetch-and-add; old value lands in ``dst``."""
        return self._push(
            Rmw(
                _reg(dst),
                _operand(addr),
                RmwKind.FETCH_ADD,
                (_operand(delta),),
                acquire=acquire,
                release=release,
            )
        )

    def build(self) -> Thread:
        return Thread(self.name, tuple(self._code), dict(self._labels))


class ProgramBuilder:
    """Accumulates threads and initial memory into a :class:`Program`."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._threads: list[ThreadBuilder] = []
        self._initial: dict[str, Value] = {}

    def thread(self, name: str | None = None) -> ThreadBuilder:
        """Create (and register) a new thread builder."""
        if name is None:
            name = f"P{len(self._threads)}"
        builder = ThreadBuilder(name)
        self._threads.append(builder)
        return builder

    def init(self, location: str, value: Value) -> "ProgramBuilder":
        """Set the initial value of a memory location (default is 0)."""
        self._initial[location] = value
        return self

    def build(self) -> Program:
        return Program(
            tuple(tb.build() for tb in self._threads),
            dict(self._initial),
            self.name,
        )


def _reg(value: str | Reg) -> Reg:
    return value if isinstance(value, Reg) else Reg(value)
