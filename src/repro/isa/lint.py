"""A program linter: static sanity checks before enumeration.

The enumerator happily executes any well-formed program; this linter
catches the mistakes that silently change what a litmus test means —
registers read before any write (they read 0), dead labels, locations
written but never read (or vice versa), threads with no memory
operations, and registers written twice in a way that usually indicates
a typo in a hand-written test.

Findings come at three levels: ``ERROR`` (the program is almost
certainly not the test you meant — e.g. a memory access through a
never-written address register targets location 0 in every execution),
``WARNING`` (suspicious, probably a typo), and ``INFO`` (worth knowing,
harmless).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.instructions import Branch, Fence
from repro.isa.operands import Const, Reg
from repro.isa.program import Program, Thread


class LintLevel(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class LintFinding:
    """One linter finding."""

    level: LintLevel
    thread: str | None
    message: str

    def __str__(self) -> str:
        where = f"[{self.thread}] " if self.thread else ""
        return f"{self.level.value}: {where}{self.message}"


def _lint_thread(thread: Thread) -> list[LintFinding]:
    findings: list[LintFinding] = []
    written: set[str] = set()
    read_before_write: set[str] = set()
    address_before_write: set[str] = set()
    write_counts: dict[str, int] = {}

    for instruction in thread.code:
        addr = instruction.addr_operand() if instruction.op_class.is_memory() else None
        address_registers = {addr.name} if isinstance(addr, Reg) else set()
        for register in instruction.sources():
            if register.name in written:
                continue
            if register.name in address_registers:
                address_before_write.add(register.name)
            else:
                read_before_write.add(register.name)
        destination = instruction.dest()
        if destination is not None:
            written.add(destination.name)
            write_counts[destination.name] = write_counts.get(destination.name, 0) + 1

    for register in sorted(address_before_write):
        findings.append(
            LintFinding(
                LintLevel.ERROR,
                thread.name,
                f"register {register} is used as a memory address before any "
                f"write (every access through it targets location 0)",
            )
        )
    for register in sorted(read_before_write - address_before_write):
        findings.append(
            LintFinding(
                LintLevel.WARNING,
                thread.name,
                f"register {register} is read before any write (reads as 0)",
            )
        )
    for register, count in sorted(write_counts.items()):
        if count > 1:
            findings.append(
                LintFinding(
                    LintLevel.INFO,
                    thread.name,
                    f"register {register} is written {count} times (final value "
                    f"comes from the last write)",
                )
            )

    targets = {
        instruction.target
        for instruction in thread.code
        if isinstance(instruction, Branch)
    }
    for label in sorted(set(thread.labels) - targets):
        findings.append(
            LintFinding(LintLevel.INFO, thread.name, f"label {label!r} is never branched to")
        )

    if not any(instruction.op_class.is_memory() for instruction in thread.code):
        findings.append(
            LintFinding(
                LintLevel.WARNING,
                thread.name,
                "thread performs no memory operations (it cannot affect or "
                "observe other threads)",
            )
        )

    trailing_fence = bool(thread.code) and isinstance(thread.code[-1], Fence)
    if trailing_fence:
        findings.append(
            LintFinding(
                LintLevel.INFO,
                thread.name,
                "trailing fence has nothing after it to order",
            )
        )
    return findings


def _static_reads_writes(program: Program) -> tuple[set[str], set[str], bool]:
    reads: set[str] = set()
    writes: set[str] = set()
    dynamic = False
    for thread in program.threads:
        for instruction in thread.code:
            if not instruction.op_class.is_memory():
                continue
            addr = instruction.addr_operand()
            if not isinstance(addr, Const) or not isinstance(addr.value, str):
                dynamic = True
                continue
            if instruction.op_class.reads_memory():
                reads.add(addr.value)
            if instruction.op_class.writes_memory():
                writes.add(addr.value)
    return reads, writes, dynamic


def lint_program(program: Program) -> list[LintFinding]:
    """All findings for ``program``, threads first, then globals."""
    findings: list[LintFinding] = []
    for thread in program.threads:
        findings.extend(_lint_thread(thread))

    reads, writes, dynamic = _static_reads_writes(program)
    if dynamic:
        findings.append(
            LintFinding(
                LintLevel.INFO,
                None,
                "dynamic addressing: location-level checks suppressed",
            )
        )
        return findings

    for location in sorted(writes - reads):
        findings.append(
            LintFinding(
                LintLevel.INFO,
                None,
                f"location {location!r} is written but never read "
                f"(only observable through final-memory conditions)",
            )
        )
    for location in sorted(reads - writes - set(program.initial_memory)):
        findings.append(
            LintFinding(
                LintLevel.INFO,
                None,
                f"location {location!r} is read but never written "
                f"(always the initial value 0)",
            )
        )
    for location in sorted(program.initial_memory):
        if location not in reads | writes:
            findings.append(
                LintFinding(
                    LintLevel.WARNING,
                    None,
                    f"initial value for {location!r} is never used",
                )
            )
    return findings
