"""A program linter: static sanity checks before enumeration.

The enumerator happily executes any well-formed program; this linter
catches the mistakes that silently change what a litmus test means —
registers read before any write (they read 0), dead labels, locations
written but never read (or vice versa), threads with no memory
operations, and registers written twice in a way that usually indicates
a typo in a hand-written test.

Findings come at three levels: ``ERROR`` (the program is almost
certainly not the test you meant — e.g. a memory access through a
never-written address register targets location 0 in every execution),
``WARNING`` (suspicious, probably a typo), and ``INFO`` (worth knowing,
harmless).

The read-before-write checks run on the reaching-definitions pass from
:mod:`repro.analysis.static.dataflow` (imported lazily — this module is
re-exported from ``repro.isa`` and the dataflow layer builds on the
ISA): a register defined on *every* path to a use is never flagged,
even when no single straight-line scan can prove it.  Looping threads
fall back to the linear scan.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.instructions import Branch, Fence
from repro.isa.operands import Reg
from repro.isa.program import Program, Thread


class LintLevel(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class LintFinding:
    """One linter finding."""

    level: LintLevel
    thread: str | None
    message: str

    def __str__(self) -> str:
        where = f"[{self.thread}] " if self.thread else ""
        return f"{self.level.value}: {where}{self.message}"


def _linear_uninit_uses(thread: Thread) -> set[tuple[int, str]]:
    """(index, register) uses before any write, by straight-line scan —
    the fallback for threads the dataflow layer cannot analyze."""
    written: set[str] = set()
    uses: set[tuple[int, str]] = set()
    for index, instruction in enumerate(thread.code):
        for register in instruction.sources():
            if register.name not in written:
                uses.add((index, register.name))
        destination = instruction.dest()
        if destination is not None:
            written.add(destination.name)
    return uses


def _uninit_uses(thread: Thread, maybe_uninit) -> set[tuple[int, str]]:
    if maybe_uninit is None:
        return _linear_uninit_uses(thread)
    return set(maybe_uninit)


def _lint_thread(thread: Thread, maybe_uninit=None) -> list[LintFinding]:
    findings: list[LintFinding] = []
    read_before_write: set[str] = set()
    address_before_write: set[str] = set()

    for index, register in _uninit_uses(thread, maybe_uninit):
        instruction = thread.code[index]
        addr = instruction.addr_operand() if instruction.op_class.is_memory() else None
        if isinstance(addr, Reg) and addr.name == register:
            address_before_write.add(register)
        else:
            read_before_write.add(register)

    write_counts: dict[str, int] = {}
    for instruction in thread.code:
        destination = instruction.dest()
        if destination is not None:
            write_counts[destination.name] = write_counts.get(destination.name, 0) + 1

    for register in sorted(address_before_write):
        findings.append(
            LintFinding(
                LintLevel.ERROR,
                thread.name,
                f"register {register} is used as a memory address before any "
                f"write (every access through it targets location 0)",
            )
        )
    for register in sorted(read_before_write - address_before_write):
        findings.append(
            LintFinding(
                LintLevel.WARNING,
                thread.name,
                f"register {register} is read before any write (reads as 0)",
            )
        )
    for register, count in sorted(write_counts.items()):
        if count > 1:
            findings.append(
                LintFinding(
                    LintLevel.INFO,
                    thread.name,
                    f"register {register} is written {count} times (final value "
                    f"comes from the last write)",
                )
            )

    targets = {
        instruction.target
        for instruction in thread.code
        if isinstance(instruction, Branch)
    }
    for label in sorted(set(thread.labels) - targets):
        findings.append(
            LintFinding(LintLevel.INFO, thread.name, f"label {label!r} is never branched to")
        )

    if not any(instruction.op_class.is_memory() for instruction in thread.code):
        findings.append(
            LintFinding(
                LintLevel.WARNING,
                thread.name,
                "thread performs no memory operations (it cannot affect or "
                "observe other threads)",
            )
        )

    trailing_fence = bool(thread.code) and isinstance(thread.code[-1], Fence)
    if trailing_fence:
        findings.append(
            LintFinding(
                LintLevel.INFO,
                thread.name,
                "trailing fence has nothing after it to order",
            )
        )
    return findings


def _static_reads_writes(program: Program) -> tuple[set[str], set[str], bool]:
    """Locations statically read/written, plus a dynamic-addressing flag.
    A thin wrapper over the shared collector in the dataflow module."""
    from repro.analysis.static.dataflow import collect_memory_accesses

    reads: set[str] = set()
    writes: set[str] = set()
    dynamic = False
    for site in collect_memory_accesses(program):
        if site.location is None:
            dynamic = True
            continue
        if "R" in site.kind:
            reads.add(site.location)
        if "W" in site.kind:
            writes.add(site.location)
    return reads, writes, dynamic


def lint_program(program: Program) -> list[LintFinding]:
    """All findings for ``program``, threads first, then globals."""
    from repro.analysis.static.dataflow import compute_static_facts

    facts = compute_static_facts(program)
    findings: list[LintFinding] = []
    for tid, thread in enumerate(program.threads):
        findings.extend(_lint_thread(thread, facts.threads[tid].maybe_uninit))

    reads, writes, dynamic = _static_reads_writes(program)
    if dynamic:
        findings.append(
            LintFinding(
                LintLevel.INFO,
                None,
                "dynamic addressing: location-level checks suppressed",
            )
        )
        return findings

    for location in sorted(writes - reads):
        findings.append(
            LintFinding(
                LintLevel.INFO,
                None,
                f"location {location!r} is written but never read "
                f"(only observable through final-memory conditions)",
            )
        )
    for location in sorted(reads - writes - set(program.initial_memory)):
        findings.append(
            LintFinding(
                LintLevel.INFO,
                None,
                f"location {location!r} is read but never written "
                f"(always the initial value 0)",
            )
        )
    for location in sorted(program.initial_memory):
        if location not in reads | writes:
            findings.append(
                LintFinding(
                    LintLevel.WARNING,
                    None,
                    f"initial value for {location!r} is never used",
                )
            )
    return findings
