"""Command-line interface.

Usage examples::

    python -m repro models                      # list memory models
    python -m repro models --table weak         # render a Figure-1 table
    python -m repro run SB --model tso          # run a library litmus test
    python -m repro run my_test.litmus -m weak  # ... or a file
    python -m repro run SB -m weak --dot sb.dot # emit a Graphviz graph
    python -m repro enumerate MP -m weak --graphs 2
    python -m repro enumerate IRIW -m weak --workers 4  # parallel engine
    python -m repro enumerate --library -m weak --jobs 4
    python -m repro matrix --models sc,tso,weak
    python -m repro wellsync MP -m weak --sync flag
    python -m repro analyze SB -m weak -m tso    # static delay-set analysis
    python -m repro analyze --library -m weak    # ... whole litmus library
    python -m repro analyze MP -m weak --repair  # static minimal fence repair
    python -m repro fences MP -m weak --static --upgrades
    python -m repro fences MP -m weak --verify   # static == enumerative gate
    python -m repro robust MP -m pso --static    # robustness certificate
    python -m repro robust MP --portability tso  # lattice portability
    python -m repro robust --library -m weak     # certify the whole library
    python -m repro models --lint               # audit every model table
    python -m repro lint SB --strict            # nonzero exit on warnings
    python -m repro experiments --markdown EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.analysis.wellsync import check_well_synchronized
from repro.core.enumerate import (
    EnumerationCheckpoint,
    EnumerationLimits,
    ParallelEnumerationConfig,
    enumerate_behaviors,
    resume_enumeration,
)
from repro.experiments.base import parallel_map
from repro.experiments.fig1 import render_table
from repro.litmus.library import all_tests, get_test, test_names
from repro.litmus.runner import format_matrix, run_litmus, run_matrix
from repro.litmus.test import LitmusTest, litmus_from_source
from repro.models.registry import available_models, get_model
from repro.viz.dot import to_dot


def _load_test(spec: str) -> LitmusTest:
    """Resolve a test spec: a library name, or a path to a litmus file."""
    path = Path(spec)
    if path.exists():
        return litmus_from_source(path.read_text(encoding="utf-8"))
    try:
        return get_test(spec)
    except ReproError:
        known = ", ".join(test_names())
        raise ReproError(
            f"{spec!r} is neither a readable file nor a library test; "
            f"library tests: {known}"
        ) from None


def _limits(args: argparse.Namespace) -> EnumerationLimits:
    defaults = EnumerationLimits()
    max_behaviors = getattr(args, "max_behaviors", None)
    max_executions = getattr(args, "max_executions", None)
    return EnumerationLimits(
        max_behaviors=defaults.max_behaviors if max_behaviors is None else max_behaviors,
        max_executions=defaults.max_executions if max_executions is None else max_executions,
        max_nodes_per_thread=args.max_nodes,
        deadline_seconds=getattr(args, "deadline", None),
    )




def _cache(args: argparse.Namespace):
    """The shared :class:`BehaviorCache` for ``--cache-dir``, or None."""
    cache_dir = getattr(args, "cache_dir", None)
    if not cache_dir:
        return None
    from repro.cache import BehaviorCache

    return BehaviorCache.shared(cache_dir)


def _strict(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "strict", False))


def _parallel(args: argparse.Namespace) -> ParallelEnumerationConfig | None:
    workers = getattr(args, "workers", 0)
    return ParallelEnumerationConfig(workers=workers) if workers else None


def _enumerate_pair(task: tuple) -> tuple:
    """Process-pool work unit for ``enumerate --library``: one (test,
    model) cell, returned as a rendered summary row."""
    name, model_name, limits, workers, cache_dir = task
    test = get_test(name)
    parallel = ParallelEnumerationConfig(workers=workers) if workers else None
    cache = None
    if cache_dir:
        from repro.cache import BehaviorCache

        cache = BehaviorCache.shared(cache_dir)
    result = enumerate_behaviors(
        test.program, get_model(model_name), limits, parallel=parallel, cache=cache
    )
    status = result.status + (" cached" if result.cached else "")
    return (name, model_name, len(result), result.stats.explored, status)


def _analyze_pair(task: tuple) -> str:
    """Process-pool work unit for ``analyze --library``: one (test,
    model) static analysis, returned as a rendered line."""
    from repro.analysis.static import analyze_program, repair_fences

    name, model_name, precise, repair = task
    test = get_test(name)
    report = analyze_program(test.program, model_name, precise=precise)
    if report.precise:
        exact, approx = report.finding_provenance()
        caveat = f" exact={exact} approx={approx}"
    else:
        caveat = " [conservative]" if report.conservative else ""
    repaired = ""
    if repair:
        result = repair_fences(test.program, model_name)
        count = result.fence_count
        repaired = f" repair={'-' if count is None else count}"
    return (
        f"{name:<16} {model_name:<10} "
        f"cycles={len(report.live_cycles)} races={len(report.races)} "
        f"delays={len(report.delays)}{repaired}{caveat}"
    )


def _auto_lint(test: LitmusTest, args: argparse.Namespace) -> int | None:
    """Lint ``test`` before an enumeration-backed command.  Prints
    warnings/errors to stderr; returns an exit code on ERROR findings,
    None to proceed.  ``--no-lint`` skips the whole check."""
    if getattr(args, "no_lint", False):
        return None
    from repro.isa.lint import LintLevel, lint_program

    findings = [
        finding
        for finding in lint_program(test.program)
        if finding.level is not LintLevel.INFO
    ]
    for finding in findings:
        print(f"{test.name}: {finding}", file=sys.stderr)
    if any(finding.level is LintLevel.ERROR for finding in findings):
        print(
            f"{test.name}: lint errors — refusing to run "
            f"(pass --no-lint to override)",
            file=sys.stderr,
        )
        return 2
    return None


def cmd_models(args: argparse.Namespace) -> int:
    if args.lint is not None:
        from repro.analysis.static import (
            canonical_chain_findings,
            lint_all_models,
            lint_model,
        )
        from repro.isa.lint import LintLevel

        reports = (
            lint_all_models() if args.lint == "*" else {args.lint: lint_model(args.lint)}
        )
        worst_is_error = False
        for name, findings in sorted(reports.items()):
            if not findings:
                print(f"{name}: clean")
                continue
            for finding in findings:
                print(str(finding))
                worst_is_error |= finding.level is LintLevel.ERROR
        if args.lint == "*":
            for finding in canonical_chain_findings():
                print(str(finding))
                worst_is_error = True
        return 1 if worst_is_error else 0
    if args.explain:
        from repro.models.doc import model_card

        print(model_card(args.explain).render())
        return 0
    if args.table:
        print(render_table(get_model(args.table)))
        return 0
    for name in available_models():
        model = get_model(name)
        print(f"{name:<12} {model.description}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.isa.lint import LintLevel, lint_program

    if args.all:
        tests = all_tests()
    elif args.test:
        tests = [_load_test(args.test)]
    else:
        raise ReproError("lint requires a test name (or --all for the library)")

    worst: LintLevel | None = None
    for test in tests:
        findings = lint_program(test.program)
        if not findings:
            print(f"{test.name}: no findings")
            continue
        for finding in findings:
            print(f"{test.name}: {finding}")
            if finding.level is LintLevel.ERROR:
                worst = LintLevel.ERROR
            elif finding.level is LintLevel.WARNING and worst is not LintLevel.ERROR:
                worst = LintLevel.WARNING
    if worst is LintLevel.ERROR:
        return 1
    if worst is LintLevel.WARNING and args.strict:
        return 1
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.static import analyze_program, repair_fences

    precise = not args.syntactic
    if args.library:
        tasks = [
            (test.name, model_name, precise, args.repair)
            for test in all_tests()
            for model_name in args.model
        ]
        for line in parallel_map(_analyze_pair, tasks, getattr(args, "jobs", 1)):
            print(line)
        return 0
    if not args.test:
        raise ReproError("analyze requires a test name (or --library)")
    test = _load_test(args.test)
    racy = False
    for model_name in args.model:
        report = analyze_program(test.program, model_name, precise=precise)
        print(report.summary())
        if args.repair:
            repair = repair_fences(test.program, model_name)
            print("  " + repair.summary())
        racy |= bool(report.races)
    return 1 if racy else 0


def cmd_dataflow(args: argparse.Namespace) -> int:
    from repro.analysis.static import (
        compute_static_facts,
        describe_facts,
        speculation_safety,
    )

    test = _load_test(args.test)
    facts = compute_static_facts(test.program)
    print(describe_facts(facts))
    for model_name in args.model:
        report = speculation_safety(test.program, model_name, facts)
        print()
        print(report.summary())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    test = _load_test(args.test)
    lint_exit = _auto_lint(test, args)
    if lint_exit is not None:
        return lint_exit
    exit_code = 0
    for model_name in args.model:
        verdict = run_litmus(test, model_name, _limits(args), strict=_strict(args))
        expectation = ""
        if verdict.matches_expectation is False:
            expectation = "  [UNEXPECTED]"
            exit_code = 1
        partial = "" if verdict.complete else f"  [{verdict.result.status.upper()}]"
        print(
            f"{test.name} under {model_name}: {test.condition} -> "
            f"{'Yes' if verdict.holds else 'No'} "
            f"({verdict.executions} executions, "
            f"{verdict.satisfied_pairs}/{verdict.total_pairs} final states match)"
            f"{expectation}{partial}"
        )
    if args.dot:
        result = enumerate_behaviors(test.program, get_model(args.model[0]), _limits(args))
        witnesses = [
            execution
            for execution in result.executions
            if test.condition.holds_in(execution.final_registers(), {})
        ] or result.executions
        Path(args.dot).write_text(
            to_dot(witnesses[0].graph, title=f"{test.name} / {args.model[0]}"),
            encoding="utf-8",
        )
        print(f"wrote {args.dot}")
    return exit_code


def cmd_enumerate(args: argparse.Namespace) -> int:
    if args.library:
        tasks = [
            (test.name, model_name, _limits(args), args.workers, args.cache_dir)
            for test in all_tests()
            for model_name in args.model
        ]
        rows = parallel_map(_enumerate_pair, tasks, args.jobs)
        for name, model_name, count, explored, status in rows:
            print(
                f"{name:<16} {model_name:<10} {count:>4} executions "
                f"(explored {explored}) [{status}]"
            )
        return 0
    if not args.resume and not args.test:
        raise ReproError(
            "enumerate requires a test name (or --resume CHECKPOINT, or --library)"
        )
    if args.resume:
        # A resume takes this invocation's budgets (defaults unless
        # flags are given) — counting budgets are cumulative, so the
        # defaults let an exhausted search make progress.
        checkpoint = EnumerationCheckpoint.load(args.resume)
        result = resume_enumeration(
            checkpoint, _limits(args), strict=_strict(args), parallel=_parallel(args)
        )
        name = checkpoint.program.name
        model_name = checkpoint.model.name
    else:
        test = _load_test(args.test)
        lint_exit = _auto_lint(test, args)
        if lint_exit is not None:
            return lint_exit
        name = test.name
        model_name = args.model[0]
        result = enumerate_behaviors(
            test.program,
            get_model(model_name),
            _limits(args),
            strict=_strict(args),
            parallel=_parallel(args),
            cache=_cache(args),
        )
    print(
        f"{name} under {model_name}: {len(result)} distinct executions "
        f"(explored {result.stats.explored} behaviors, "
        f"{result.stats.duplicates} duplicates discarded, "
        f"{result.stats.rolled_back} rolled back) "
        f"[{result.status}{' cached' if result.cached else ''}]"
    )
    if not result.complete and args.checkpoint:
        result.checkpoint.save(args.checkpoint)
        print(f"wrote checkpoint {args.checkpoint} (resume with --resume)")
    for outcome in sorted(result.register_outcomes(), key=repr):
        rendered = "  ".join(
            f"{thread}:{register}={value}"
            for (thread, register), value in sorted(outcome, key=repr)
        )
        print(f"  {rendered}")
    if args.graphs:
        from repro.viz.ascii import render

        for execution in result.executions[: args.graphs]:
            print()
            print(render(execution.graph))
    return 0


def cmd_matrix(args: argparse.Namespace) -> int:
    models = tuple(args.models.split(","))
    tests = (
        [get_test(name) for name in args.tests.split(",")] if args.tests else all_tests()
    )
    verdicts = run_matrix(tests, models, _limits(args), strict=_strict(args))
    print(format_matrix(verdicts))
    mismatches = [v for v in verdicts if v.matches_expectation is False]
    if mismatches:
        print(f"\n{len(mismatches)} verdicts differ from expectations:")
        for verdict in mismatches:
            print(f"  {verdict.summary()}")
        return 1
    return 0


def cmd_wellsync(args: argparse.Namespace) -> int:
    test = _load_test(args.test)
    sync = frozenset(args.sync.split(",")) if args.sync else frozenset()
    report = check_well_synchronized(test.program, args.model[0], sync, _limits(args))
    print(report.summary())
    return 0 if report.well_synchronized else 1


def cmd_robust(args: argparse.Namespace) -> int:
    from repro.analysis.compare import check_robustness
    from repro.analysis.static import certify_robustness, check_portability

    if args.library:
        model_names = args.model
        for test in all_tests():
            for model_name in model_names:
                certificate = certify_robustness(test.program, model_name)
                repairs = ""
                if certificate.repairs:
                    count = len(certificate.repairs[0])
                    repairs = (
                        f"  {count} fence(s): "
                        + " | ".join(
                            "{" + ", ".join(str(s) for s in sol) + "}"
                            for sol in certificate.repairs[:3]
                        )
                    )
                print(
                    f"{test.name:<16} {model_name:<10} "
                    f"{certificate.verdict:<22}{repairs}"
                )
        return 0

    test = _load_test(args.test)
    if args.portability:
        report = check_portability(test.program, args.portability)
        print(report.summary())
        return 0 if all(step.portable for step in report.steps) else 1
    if args.static:
        exit_code = 0
        for model_name in args.model:
            certificate = certify_robustness(test.program, model_name)
            print(certificate.summary())
            exit_code |= 0 if certificate.robust else 1
        return exit_code
    report = check_robustness(test.program, args.model[0], _limits(args))
    print(report.summary())
    return 0 if report.robust else 1


def cmd_delays(args: argparse.Namespace) -> int:
    from repro.analysis.compare import check_robustness
    from repro.analysis.delays import delay_set, fence_delays

    test = _load_test(args.test)
    report = delay_set(test.program)
    print(report.summary())
    if args.verify:
        fenced = fence_delays(test.program, report)
        robust = check_robustness(fenced, args.model[0], _limits(args))
        print(f"after fencing the delays: {robust.summary()}")
        return 0 if robust.robust else 1
    return 0


def cmd_fences(args: argparse.Namespace) -> int:
    from repro.analysis.fencesynth import synthesize_fences
    from repro.analysis.static import repair_fences, repair_upgrades

    test = _load_test(args.test)
    model_name = args.model[0]

    if args.static or args.verify:
        static = repair_fences(test.program, model_name)
        print(static.summary())
        if args.upgrades:
            print(repair_upgrades(test.program, model_name).summary())
        if not args.verify:
            return 0 if static.fence_count is not None else 1
        enumerative = synthesize_fences(
            test.program,
            model_name,
            _limits(args),
            max_fences=args.max_fences,
            target="robust",
            max_subsets=args.max_subsets,
        )
        print(enumerative.summary())
        if not enumerative.complete:
            print("verify: INCONCLUSIVE — the enumerative search was truncated")
            return 1
        agree = (
            enumerative.already_forbidden == static.already_robust
            and enumerative.solutions == static.solutions
        )
        print(
            "verify: static and enumerative minimal sets "
            + ("AGREE (byte-identical)" if agree else "DISAGREE")
        )
        return 0 if agree else 1

    target = "robust" if args.robust else "condition"
    synthesis = synthesize_fences(
        test.program if args.robust else test,
        model_name,
        _limits(args),
        max_fences=args.max_fences,
        target=target,
        max_subsets=args.max_subsets,
    )
    print(synthesis.summary())
    return 0 if synthesis.fence_count is not None else 1


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.litmus.generator import EdgeKindSpec, generate, predict_verdict

    by_name = {kind.value: kind for kind in EdgeKindSpec}
    try:
        cycle = [by_name[name] for name in args.edges]
    except KeyError as exc:
        raise ReproError(
            f"unknown edge {exc.args[0]!r}; known edges: {', '.join(by_name)}"
        ) from None
    generated = generate(cycle)
    print(generated.test.program)
    print(f"condition: {generated.test.condition}")
    for model_name in args.model:
        predicted = predict_verdict(generated, model_name)
        observed = run_litmus(generated.test, model_name, _limits(args)).holds
        print(
            f"  {model_name:<10} predicted {'Yes' if predicted else 'No ':<4}"
            f"observed {'Yes' if observed else 'No'}"
        )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.isa.disassembler import export_library

    written = export_library(args.out)
    print(f"wrote {len(written)} .litmus files to {args.out}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    test = _load_test(args.test)
    if args.forbidden:
        from repro.analysis.solver import explain_forbidden

        solved = explain_forbidden(test, args.model[0], _limits(args))
        print(solved.render())
        return 0 if solved.forbidden else 1
    from repro.analysis.explain import explain_trace, trace_from_litmus

    trace = trace_from_litmus(test)
    explanation = explain_trace(trace, args.model[0])
    print(f"{test.name}: {test.condition}")
    print(explanation.render())
    return 0 if explanation.forbidden else 1


def cmd_solve(args: argparse.Namespace) -> int:
    from repro.analysis.solver.behaviors import solve_behaviors_with_stats

    limits = _limits(args)
    names = test_names() if args.library else [args.test]
    exit_code = 0
    for name in names:
        test = _load_test(name)
        for model_name in args.model:
            solved, stats = solve_behaviors_with_stats(test.program, model_name, limits)
            line = (
                f"{test.name:<16} {model_name:<10} "
                f"behaviors={stats.behaviors:<5} proposals={stats.proposals:<6} "
                f"infeasible={stats.infeasible:<5} conflicts={stats.conflicts:<6} "
                f"[{solved.status}]"
            )
            if args.check:
                reference = enumerate_behaviors(
                    test.program, get_model(model_name), limits
                )
                agree = solved.complete == reference.complete and sorted(
                    repr(e.loadstore_key()) for e in solved.executions
                ) == sorted(repr(e.loadstore_key()) for e in reference.executions)
                line += "  agree=yes" if agree else "  agree=NO"
                if not agree:
                    exit_code = 1
            print(line)
    return exit_code


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.artifacts import write_figures

    for path in write_figures(args.out):
        print(f"wrote {path}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.report import main as report_main

    argv = ["--markdown", args.markdown] if args.markdown else []
    if args.deadline is not None:
        argv += ["--deadline", str(args.deadline)]
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    return report_main(argv)


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.testing.fuzz import replay_paths, run_campaign, run_mutation_kill
    from repro.testing.fuzzgen import MIXED, PROFILES
    from repro.testing.mutants import MUTANTS
    from repro.testing.oracles import ORACLES

    if args.list_oracles:
        for oracle in ORACLES:
            print(f"{oracle.name:24s} {oracle.description}")
        return 0
    if args.list_profiles:
        print(f"{MIXED:24s} round-robin over every profile below")
        for profile in PROFILES.values():
            print(f"{profile.name:24s} {profile.description}")
        return 0
    if args.list_mutants:
        for mutant in MUTANTS:
            print(f"{mutant.name:26s} {mutant.description}")
        return 0

    if args.action == "coverage":
        from repro.testing.coverage import coverage_report, load_campaign

        if not args.dir:
            raise ReproError("usage: repro fuzz coverage DIR")
        print(coverage_report(Path(args.dir)))
        state = load_campaign(Path(args.dir))
        if args.export:
            Path(args.export).write_text(
                json.dumps(state.grid.to_json(), sort_keys=True, indent=1) + "\n"
            )
            print(f"grid exported to {args.export}")
        if args.check_superset:
            from repro.testing.coverage import CoverageGrid

            baseline = CoverageGrid.from_json(
                json.loads(Path(args.check_superset).read_text())
            )
            if not state.grid.is_superset_of(baseline):
                missing = set(baseline.cells) - set(state.grid.cells)
                print(
                    f"GRID SHRANK: {len(missing)} cell(s) of "
                    f"{args.check_superset} are no longer covered"
                )
                return 1
            print(f"grid covers all {len(baseline)} cells of {args.check_superset}")
        return 0

    corpus_dir = Path(args.corpus_dir) if args.corpus_dir else None

    if args.campaign_dir and (args.replay or args.mutants):
        raise ReproError("--campaign-dir cannot be combined with --replay/--mutants")

    if args.replay:
        target = Path(args.replay)
        paths = sorted(target.glob("*.litmus")) if target.is_dir() else [target]
        if not paths:
            raise ReproError(f"no corpus entries under {target}")

        failures = 0
        for entry, discrepancies, _skipped in replay_paths(paths):
            # A mutant entry replays *with its mutant installed*, so a
            # discrepancy is the expected, healthy verdict for it.
            if entry.mutant:
                ok = bool(discrepancies)
                verdict = "reproduces" if ok else "LOST (mutant no longer caught)"
            else:
                ok = not discrepancies
                verdict = "clean" if ok else "DISCREPANCY"
            failures += 0 if ok else 1
            print(f"{entry.path.name:40s} {verdict}")
            for discrepancy in discrepancies if not ok else ():
                print(f"    {discrepancy}")
        return 1 if failures else 0

    if args.mutants:
        kills = run_mutation_kill(
            seed=args.seed,
            budget=args.budget,
            profile=args.profile,
            do_shrink=not args.no_shrink,
            corpus_dir=corpus_dir,
        )
        print(f"mutation-kill campaign: seed={args.seed} budget={args.budget}")
        bad = 0
        for kill in kills:
            print(kill.summary())
            ok = kill.detected
            if kill.shrink_result is not None:
                ok = ok and kill.reproducer_instructions <= args.max_reproducer
            if kill.corpus_path is not None:
                ok = ok and bool(kill.replay_fails_under_mutant)
                ok = ok and bool(kill.healthy_tree_clean)
            bad += 0 if ok else 1
        print(f"{len(kills) - bad}/{len(kills)} mutants killed cleanly")
        return 1 if bad else 0

    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    if args.campaign_dir:
        from repro.testing.coverage import DEFAULT_BATCH_SIZE, run_guided_campaign

        guided = run_guided_campaign(
            campaign_dir=Path(args.campaign_dir),
            seed=args.seed,
            budget=args.budget,
            profile=args.profile,
            jobs=args.jobs,
            do_shrink=not args.no_shrink,
            corpus_dir=corpus_dir,
            cache_dir=cache_dir,
            resume=args.resume,
            batch_size=args.batch_size or DEFAULT_BATCH_SIZE,
        )
        print(guided.summary())
        return 0 if guided.clean else 1
    report = run_campaign(
        seed=args.seed,
        budget=args.budget,
        profile=args.profile,
        jobs=args.jobs,
        do_shrink=not args.no_shrink,
        corpus_dir=corpus_dir,
        cache_dir=cache_dir,
    )
    print(report.summary())
    return 0 if report.clean else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import ServiceConfig, run_server

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        wal_dir=args.wal_dir,
        workers=args.workers,
        queue_limit=args.queue_limit,
        rate_capacity=args.rate_capacity,
        rate_refill=args.rate_refill,
        retries=args.retries,
        slice_behaviors=args.slice,
        slice_delay=args.slice_delay,
        fsync=not args.no_fsync,
        cache_dir=args.cache_dir,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.cache import BehaviorCache

    directory = Path(args.dir)
    if not directory.exists():
        raise ReproError(f"no cache directory {directory}")
    cache = BehaviorCache(directory)

    if args.action == "stats":
        stats = cache.stats()
        print(f"cache {stats['directory']}")
        print(f"  segments          : {stats['segments']}")
        print(f"  disk bytes        : {stats['disk_bytes']}")
        print(f"  records           : {stats['records']}")
        print(f"  live entries      : {stats['live_entries']}")
        print(f"  tombstoned        : {stats['tombstoned']}")
        print(f"  redundant records : {stats['redundant_records']}")
        print(f"  bloom FPR estimate: {stats['bloom_fpr_estimate']:.2e}")
        return 0

    if args.action == "verify":
        report = cache.verify(full=args.full)
        mode = "re-enumerated" if args.full else "decode-checked"
        print(
            f"verified {report['checked']} entries ({mode}): "
            f"{report['ok']} ok, {len(report['bad'])} bad"
        )
        for keyhex in report["bad"]:
            print(f"  BAD {keyhex}")
        return 1 if report["bad"] else 0

    report = cache.compact()
    cache.close()
    print(
        f"compacted {report['segments_before']} segments "
        f"({report['records_before']} records, {report['bytes_before']} bytes) "
        f"-> 1 segment ({report['live_entries']} live entries, "
        f"{report['bytes_after']} bytes)"
    )
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient

    test_path = Path(args.test)
    if test_path.exists():
        source = test_path.read_text(encoding="utf-8")
    else:
        test = _load_test(args.test)
        from repro.isa.disassembler import disassemble

        source = disassemble(test.program, condition_text=str(test.condition))

    limits = {}
    if args.max_behaviors is not None:
        limits["max_behaviors"] = args.max_behaviors
    if args.max_nodes is not None:
        limits["max_nodes_per_thread"] = args.max_nodes
    client = ServiceClient(args.url)
    job = client.submit(
        source,
        model=args.model[0],
        limits=limits,
        deadline_seconds=args.deadline,
        account=args.account,
    )
    if args.wait:
        job = client.wait(job["id"], timeout=args.timeout)
    print(json.dumps(job, indent=2, sort_keys=True))
    return 0 if job["state"] not in ("failed", "quarantined") else 1


def cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.job == "all":
        for job in client.list_jobs():
            print(
                f"{job['id']}  {job['state']:<12} {job.get('program', ''):<16} "
                f"{job['model']:<8} explored={job.get('explored', 0)}"
            )
        return 0
    job = client.status(args.job)
    print(json.dumps(job, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory Model = Instruction Reordering + Store Atomicity "
        "(ISCA 2006) — behavior enumerator and litmus runner.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, multi_model: bool = True) -> None:
        p.add_argument(
            "--model",
            "-m",
            action="append" if multi_model else "store",
            default=None,
            help="memory model name (repeatable)" if multi_model else "memory model",
        )
        p.add_argument(
            "--max-nodes",
            type=int,
            default=64,
            help="dynamic-instruction bound per thread (loop guard)",
        )
        p.add_argument(
            "--deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget per enumeration; exceeding it returns "
            "an honestly-labeled partial result",
        )
        p.add_argument(
            "--strict",
            action="store_true",
            help="raise on an exhausted budget instead of returning a "
            "partial result",
        )

    p_models = sub.add_parser("models", help="list models / render a reordering table")
    p_models.add_argument("--table", metavar="MODEL", help="render MODEL's Figure-1 table")
    p_models.add_argument(
        "--explain",
        metavar="MODEL",
        help="full model card: table, flags, litmus signature (enumerated live)",
    )
    p_models.add_argument(
        "--lint",
        nargs="?",
        const="*",
        default=None,
        metavar="MODEL",
        help="audit model tables for soundness (all models when no name given); "
        "exits nonzero on errors",
    )
    p_models.set_defaults(func=cmd_models)

    p_lint = sub.add_parser("lint", help="static sanity checks on a test")
    p_lint.add_argument("test", nargs="?", help="test name/file (omit with --all)")
    p_lint.add_argument(
        "--all", action="store_true", help="lint every test in the litmus library"
    )
    p_lint.add_argument(
        "--strict", action="store_true", help="exit nonzero on warnings, not just errors"
    )
    p_lint.set_defaults(func=cmd_lint)

    p_analyze = sub.add_parser(
        "analyze",
        help="static delay-set analysis: races, delay edges, fence sites — "
        "no enumeration",
    )
    p_analyze.add_argument("test", nargs="?", help="test name/file (omit with --library)")
    p_analyze.add_argument(
        "--library", action="store_true", help="analyze the whole litmus library"
    )
    p_analyze.add_argument(
        "--model",
        "-m",
        action="append",
        default=None,
        help="memory model name (repeatable)",
    )
    p_analyze.add_argument(
        "--precise",
        action="store_true",
        help="use the dataflow layer for alias/constant precision (default)",
    )
    p_analyze.add_argument(
        "--syntactic",
        action="store_true",
        help="disable the dataflow layer (PR-2 behavior: dynamic "
        "addresses alias everything)",
    )
    p_analyze.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="with --library, fan (test, model) pairs across N worker processes",
    )
    p_analyze.add_argument(
        "--repair",
        action="store_true",
        help="also compute the minimal static fence repair (set cover "
        "over the delay edges) per model",
    )
    p_analyze.set_defaults(func=cmd_analyze)

    p_dataflow = sub.add_parser(
        "dataflow",
        help="per-thread dataflow facts (address sets, dead code, "
        "dependencies) + speculation-safety verdicts",
    )
    p_dataflow.add_argument("test", help="test name or .litmus file")
    p_dataflow.add_argument(
        "--model",
        "-m",
        action="append",
        default=None,
        help="model for speculation-safety verdicts (repeatable)",
    )
    p_dataflow.set_defaults(func=cmd_dataflow)

    p_run = sub.add_parser("run", help="run a litmus test (library name or file)")
    p_run.add_argument("test")
    add_common(p_run)
    p_run.add_argument("--dot", metavar="PATH", help="write a witness graph as Graphviz")
    p_run.add_argument(
        "--no-lint",
        dest="no_lint",
        action="store_true",
        help="skip the automatic pre-run lint",
    )
    p_run.set_defaults(func=cmd_run)

    p_enum = sub.add_parser("enumerate", help="enumerate all behaviors of a test")
    p_enum.add_argument(
        "test", nargs="?", help="test name/file (omit with --resume or --library)"
    )
    add_common(p_enum)
    p_enum.add_argument("--graphs", type=int, default=0, help="print the first N graphs")
    p_enum.add_argument(
        "--library",
        action="store_true",
        help="enumerate every library test under each --model (summary rows)",
    )
    p_enum.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="with --library, fan (test, model) pairs across N worker processes",
    )
    p_enum.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="use the sharded parallel engine with N worker processes "
        "for each enumeration (0 = sequential)",
    )
    p_enum.add_argument(
        "--max-behaviors", type=int, default=None, help="behavior-exploration budget"
    )
    p_enum.add_argument(
        "--max-executions", type=int, default=None, help="kept-execution budget"
    )
    p_enum.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="where to save a resumable checkpoint if the search is budget-limited",
    )
    p_enum.add_argument(
        "--resume",
        metavar="PATH",
        help="resume an interrupted search from a checkpoint file",
    )
    p_enum.add_argument(
        "--no-lint",
        dest="no_lint",
        action="store_true",
        help="skip the automatic pre-enumeration lint",
    )
    p_enum.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="memoize enumerations in a persistent behavior cache under DIR "
        "(repeat runs become near-free hits; see docs/api.md)",
    )
    p_enum.set_defaults(func=cmd_enumerate)

    p_matrix = sub.add_parser("matrix", help="run the litmus × model matrix")
    p_matrix.add_argument("--models", default="sc,tso,pso,weak,weak-corr")
    p_matrix.add_argument("--tests", default=None, help="comma-separated test names")
    p_matrix.add_argument("--max-nodes", type=int, default=64)
    p_matrix.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per enumeration (partial cells marked ~)",
    )
    p_matrix.add_argument("--strict", action="store_true")
    p_matrix.set_defaults(func=cmd_matrix)

    p_ws = sub.add_parser("wellsync", help="check the §8 well-sync discipline")
    p_ws.add_argument("test")
    add_common(p_ws)
    p_ws.add_argument("--sync", default="", help="comma-separated sync locations")
    p_ws.set_defaults(func=cmd_wellsync)

    p_robust = sub.add_parser(
        "robust", help="check SC-robustness of a test under a weak model"
    )
    p_robust.add_argument("test", nargs="?", help="test name/file (omit with --library)")
    add_common(p_robust)
    p_robust.add_argument(
        "--static",
        action="store_true",
        help="certify robustness statically (no enumeration), with "
        "minimal repairs attached to refutations",
    )
    p_robust.add_argument(
        "--library",
        action="store_true",
        help="static robustness certificates for the whole litmus "
        "library under each --model",
    )
    p_robust.add_argument(
        "--portability",
        metavar="MODEL",
        help="lattice portability: verified under MODEL, which cycles "
        "break under each weaker model and which fences repair them",
    )
    p_robust.set_defaults(func=cmd_robust)

    p_delays = sub.add_parser(
        "delays", help="Shasha-Snir delay-set analysis of a test"
    )
    p_delays.add_argument("test")
    add_common(p_delays)
    p_delays.add_argument(
        "--verify",
        action="store_true",
        help="also fence the delays and verify SC-robustness by enumeration",
    )
    p_delays.set_defaults(func=cmd_delays)

    p_fences = sub.add_parser("fences", help="synthesize minimal fences")
    p_fences.add_argument("test")
    add_common(p_fences)
    p_fences.add_argument("--max-fences", type=int, default=None)
    p_fences.add_argument(
        "--max-subsets",
        type=int,
        default=None,
        metavar="N",
        help="cap the enumerative search at N fenced variants; exceeding "
        "it returns an honest partial result",
    )
    p_fences.add_argument(
        "--robust",
        action="store_true",
        help="synthesize for SC-robustness (behavior signature collapses "
        "to SC) instead of forbidding the test's condition",
    )
    p_fences.add_argument(
        "--static",
        action="store_true",
        help="compute the minimal robust fence sets statically (set "
        "cover over delay edges — no enumeration)",
    )
    p_fences.add_argument(
        "--upgrades",
        action="store_true",
        help="with --static, also show the cheapest table-priced mix of "
        "fences and acquire/release upgrades",
    )
    p_fences.add_argument(
        "--verify",
        action="store_true",
        help="run both the static and the enumerative robust synthesis "
        "and require byte-identical minimal sets",
    )
    p_fences.set_defaults(func=cmd_fences)

    p_gen = sub.add_parser(
        "generate", help="synthesize a litmus test from a critical cycle"
    )
    p_gen.add_argument("edges", nargs="+", help="e.g. Fre PodWR Fre PodWR")
    add_common(p_gen)
    p_gen.set_defaults(func=cmd_generate)

    p_export = sub.add_parser(
        "export", help="write the whole litmus library as .litmus files"
    )
    p_export.add_argument("--out", default="litmus", help="output directory")
    p_export.set_defaults(func=cmd_export)

    p_explain = sub.add_parser(
        "explain", help="explain WHY a test's condition is (un)observable"
    )
    p_explain.add_argument("test")
    p_explain.add_argument(
        "--forbidden",
        action="store_true",
        help="certify the outcome with the constraint solver: a minimal "
        "violated-axiom unsat core plus a forced-ordering cycle witness",
    )
    add_common(p_explain)
    p_explain.set_defaults(func=cmd_explain)

    p_solve = sub.add_parser(
        "solve",
        help="enumerate behaviors with the SAT/AllSAT constraint solver",
    )
    p_solve.add_argument("test", nargs="?", help="library test name or litmus file")
    p_solve.add_argument(
        "--library", action="store_true", help="solve every library test"
    )
    p_solve.add_argument(
        "--check",
        action="store_true",
        help="cross-validate against the axiomatic enumerator "
        "(loadstore_key byte-identical); exits nonzero on disagreement",
    )
    add_common(p_solve)
    p_solve.set_defaults(func=cmd_solve)

    p_fig = sub.add_parser(
        "figures", help="write every paper figure as a Graphviz .dot file"
    )
    p_fig.add_argument("--out", default="figures", help="output directory")
    p_fig.set_defaults(func=cmd_figures)

    p_exp = sub.add_parser("experiments", help="run every paper experiment")
    p_exp.add_argument("--markdown", metavar="PATH", help="also write EXPERIMENTS.md")
    p_exp.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-experiment wall-clock budget; hung experiments become ERROR rows",
    )
    p_exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the experiments across N worker processes",
    )
    p_exp.set_defaults(func=cmd_experiments)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generated programs vs N-way oracles",
    )
    p_fuzz.add_argument(
        "action",
        nargs="?",
        choices=["coverage"],
        help="'coverage DIR' prints a campaign's coverage-grid report "
        "instead of fuzzing",
    )
    p_fuzz.add_argument(
        "dir",
        nargs="?",
        metavar="DIR",
        help="campaign directory (with the 'coverage' action)",
    )
    p_fuzz.add_argument(
        "--budget",
        type=int,
        default=60,
        metavar="N",
        help="number of programs to generate and check (per mutant, "
        "with --mutants)",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (deterministic)"
    )
    p_fuzz.add_argument(
        "--profile",
        default="mixed",
        help="generator profile ('mixed' round-robins; see --list-profiles)",
    )
    p_fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan programs across N worker processes (verdicts unchanged)",
    )
    p_fuzz.add_argument(
        "--corpus-dir",
        metavar="DIR",
        help="bank minimized counterexamples as corpus files under DIR",
    )
    p_fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report discrepancies without delta-debugging them",
    )
    p_fuzz.add_argument(
        "--mutants",
        action="store_true",
        help="mutation-kill mode: every seeded mutant must be detected, "
        "shrunk, and banked as a replayable reproducer",
    )
    p_fuzz.add_argument(
        "--max-reproducer",
        type=int,
        default=8,
        metavar="N",
        help="with --mutants: maximum instructions allowed in a "
        "minimized reproducer",
    )
    p_fuzz.add_argument(
        "--replay",
        metavar="PATH",
        help="replay a corpus file (or every *.litmus under a directory) "
        "instead of fuzzing",
    )
    p_fuzz.add_argument(
        "--list-oracles", action="store_true", help="list oracles and exit"
    )
    p_fuzz.add_argument(
        "--list-profiles", action="store_true", help="list generator profiles and exit"
    )
    p_fuzz.add_argument(
        "--list-mutants", action="store_true", help="list seeded mutants and exit"
    )
    p_fuzz.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="share a persistent behavior cache across oracles and "
        "campaigns (ignored by --mutants, which must re-enumerate)",
    )
    p_fuzz.add_argument(
        "--campaign-dir",
        metavar="DIR",
        default=None,
        help="coverage-guided mode: persist the campaign (coverage grid, "
        "mutation corpus, RNG cursor, spent budget) under DIR; --budget "
        "adds that many programs to whatever the campaign accumulated",
    )
    p_fuzz.add_argument(
        "--resume",
        action="store_true",
        help="continue the existing campaign in --campaign-dir (required "
        "when the directory already holds one)",
    )
    p_fuzz.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="guided-campaign batch size (coverage feedback folds in at "
        "batch boundaries; pinned per campaign)",
    )
    p_fuzz.add_argument(
        "--export",
        metavar="FILE",
        default=None,
        help="with 'coverage DIR': also write the grid as JSON to FILE",
    )
    p_fuzz.add_argument(
        "--check-superset",
        metavar="FILE",
        default=None,
        help="with 'coverage DIR': exit 1 unless the campaign's grid "
        "covers every cell of the grid JSON in FILE (monotonicity gate)",
    )
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_serve = sub.add_parser(
        "serve",
        help="run the crash-safe analysis job server (WAL-backed, "
        "rate-limited; see docs/service.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port (printed)"
    )
    p_serve.add_argument(
        "--wal-dir",
        default="service-data",
        help="directory for the write-ahead log and job checkpoints",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="enumeration worker processes (0 = run slices inline)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="bounded submission queue; full queue answers 429",
    )
    p_serve.add_argument(
        "--rate-capacity", type=float, default=10,
        help="token-bucket burst per account",
    )
    p_serve.add_argument(
        "--rate-refill", type=float, default=1.0,
        help="token-bucket refill per second per account",
    )
    p_serve.add_argument(
        "--retries", type=int, default=1,
        help="worker-crash retries before a job is quarantined",
    )
    p_serve.add_argument(
        "--slice", type=int, default=500, metavar="N",
        help="behaviors per checkpointed enumeration slice",
    )
    p_serve.add_argument(
        "--slice-delay", type=float, default=0.0, metavar="SECONDS",
        help="pause between slices (crash-recovery testing knob)",
    )
    p_serve.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on WAL appends (faster, weaker durability)",
    )
    p_serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="behavior cache shared by the submit fast path and the "
        "workers (cached submissions complete instantly)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain a behavior-cache directory"
    )
    p_cache.add_argument(
        "action",
        choices=("stats", "verify", "compact"),
        help="stats: store accounting; verify: decode-check every entry "
        "(--full also re-enumerates); compact: fold segments, drop "
        "tombstoned/duplicate records",
    )
    p_cache.add_argument("dir", metavar="DIR", help="cache directory")
    p_cache.add_argument(
        "--full",
        action="store_true",
        help="with verify: re-enumerate every entry and compare "
        "loadstore-key sets (slow)",
    )
    p_cache.set_defaults(func=cmd_cache)

    p_submit = sub.add_parser(
        "submit", help="submit an enumeration job to a running server"
    )
    p_submit.add_argument("test", help="test name or .litmus file")
    p_submit.add_argument(
        "--url", default="http://127.0.0.1:8642", help="server base URL"
    )
    add_common(p_submit)
    p_submit.add_argument(
        "--max-behaviors", type=int, default=None, help="behavior-exploration budget"
    )
    p_submit.add_argument("--account", default="anonymous", help="X-Account header")
    p_submit.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    p_submit.add_argument(
        "--timeout", type=float, default=300.0, help="with --wait: polling timeout"
    )
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "status", help="query a job (or 'all') on a running server"
    )
    p_status.add_argument("job", help="job id, or 'all' for a summary listing")
    p_status.add_argument(
        "--url", default="http://127.0.0.1:8642", help="server base URL"
    )
    p_status.set_defaults(func=cmd_status)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "model", None) is None and hasattr(args, "model"):
        args.model = ["weak"]
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Reader closed the pipe (e.g. ``repro fuzz coverage DIR | head``)
        # — the POSIX convention is a quiet exit, not a traceback.
        # Reopen stdout on devnull so the interpreter's shutdown flush
        # does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
