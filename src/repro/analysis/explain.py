"""Explain *why* an outcome is forbidden.

The enumeration procedure can show an outcome is unreachable, but a
programmer wants the reason — the cycle of orderings that every attempted
construction runs into.  This module replays the trace-checker's source
assignment search and, for each assignment consistent with the observed
load values, extracts the contradiction: the Store Atomicity obligation
that could not be inserted, together with the explicit-edge path that
already ordered the two operations the other way.

This is the §3.2 methodology ("reasoning from examples … identify
ordering relationships which unambiguously rule them out") mechanized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AtomicityViolation, CycleError, ReproError
from repro.core.atomicity import close_store_atomicity
from repro.core.graph import EdgeKind, ExecutionGraph
from repro.core.node import Node
from repro.analysis.tracecheck import Trace, _build_graph
from repro.models.base import MemoryModel
from repro.models.registry import get_model

_KIND_WORD = {
    EdgeKind.PROGRAM: "program order",
    EdgeKind.DATA: "data dependency",
    EdgeKind.ADDR_DEP: "address dependency",
    EdgeKind.SAME_ADDR: "same-address order",
    EdgeKind.INIT: "initialization",
    EdgeKind.SOURCE: "observation",
    EdgeKind.ATOMICITY: "store atomicity",
    EdgeKind.IMPOSED: "imposed order",
}


def _kind_word(kinds: EdgeKind) -> str:
    for kind in (
        EdgeKind.SOURCE,
        EdgeKind.ATOMICITY,
        EdgeKind.SAME_ADDR,
        EdgeKind.ADDR_DEP,
        EdgeKind.DATA,
        EdgeKind.PROGRAM,
        EdgeKind.IMPOSED,
        EdgeKind.INIT,
    ):
        if kinds & kind:
            return _KIND_WORD[kind]
    return "order"


def _describe_path(graph: ExecutionGraph, path) -> str:
    pieces = []
    for u, v, kinds in path:
        pieces.append(
            f"{graph.node(u).describe()}  ⊑ [{_kind_word(kinds)}]  "
            f"{graph.node(v).describe()}"
        )
    return "\n      ".join(pieces)


@dataclass
class Contradiction:
    """One failed construction attempt and its reason."""

    assignment: dict  #: (thread, op index) -> source description
    obligation: str  #: the edge Store Atomicity needed
    reverse_path: str  #: why the opposite order already holds

    def render(self) -> str:
        bound = ", ".join(
            f"{thread}[{index}]←{source}" for (thread, index), source in sorted(self.assignment.items())
        )
        return (
            f"with sources {{{bound}}}:\n"
            f"    needs {self.obligation}, but the opposite is already forced:\n"
            f"      {self.reverse_path}"
        )


@dataclass
class Explanation:
    """The full verdict: forbidden (with reasons) or observable."""

    forbidden: bool
    model_name: str
    contradictions: list[Contradiction]

    def render(self) -> str:
        if not self.forbidden:
            return f"the outcome IS observable under {self.model_name}"
        lines = [
            f"forbidden under {self.model_name}: every source assignment "
            f"consistent with the observed values is contradictory —"
        ]
        for index, contradiction in enumerate(self.contradictions, start=1):
            lines.append(f"  ({index}) {contradiction.render()}")
        return "\n".join(lines)


def trace_from_litmus(test) -> Trace:
    """Build the trace a litmus test's ``exists`` condition describes.

    Works when the program is straight-line and every load's destination
    register is pinned by a register atom of the condition.
    """
    from repro.analysis.tracecheck import TraceOp
    from repro.isa.instructions import Branch, Fence, Load, Store
    from repro.litmus.conditions import And, RegisterAtom

    atoms: dict[tuple[str, str], object] = {}

    def collect(expr):
        if isinstance(expr, RegisterAtom):
            atoms[(expr.thread, expr.register)] = expr.value
        elif isinstance(expr, And):
            for operand in expr.operands:
                collect(operand)

    collect(test.condition.expr)

    threads = []
    for thread in test.program.threads:
        ops = []
        for instruction in thread.code:
            if isinstance(instruction, Branch):
                raise ReproError("explain requires straight-line tests")
            if isinstance(instruction, Fence):
                ops.append(TraceOp.fence(instruction.kind))
            elif isinstance(instruction, Store):
                addr = instruction.addr_operand().value
                value = instruction.value.value  # type: ignore[union-attr]
                ops.append(TraceOp.store(addr, value))
            elif isinstance(instruction, Load):
                key = (thread.name, instruction.dst.name)
                if key not in atoms:
                    raise ReproError(
                        f"condition does not pin {thread.name}:{instruction.dst.name}; "
                        f"cannot build the trace to explain"
                    )
                ops.append(TraceOp.load(instruction.addr_operand().value, atoms[key]))
            else:
                raise ReproError(
                    "explain supports plain load/store/fence tests only"
                )
        threads.append((thread.name, tuple(ops)))
    return Trace(tuple(threads), dict(test.program.initial_memory))


def explain_trace(
    trace: Trace, model: MemoryModel | str = "weak", max_attempts: int = 10_000
) -> Explanation:
    """Explain the (non-)observability of a trace's outcome under a model."""
    if isinstance(model, str):
        model = get_model(model)
    if model.store_load_bypass:
        raise ReproError("explanations are supported for store-atomic models")

    base_graph, loads, _ = _build_graph(trace, model)
    stores = [node for node in base_graph.nodes if node.is_visible_store]
    contradictions: list[Contradiction] = []
    attempts = 0

    def describe_source(graph: ExecutionGraph, nid: int) -> str:
        node = graph.node(nid)
        return "init" if node.is_init else f"{trace.threads[node.tid][0]}[{node.index}]"

    def search(graph: ExecutionGraph, remaining: list[Node], assignment: dict) -> bool:
        nonlocal attempts
        if not remaining:
            return True
        load = remaining[0]
        found_any = False
        for store in stores:
            if store.addr != load.addr or store.stored != load.value:
                continue
            attempts += 1
            if attempts > max_attempts:
                raise ReproError("explanation search exceeded its attempt budget")
            attempt = graph.copy()
            attempt_load = attempt.node(load.nid)
            bound = dict(assignment)
            key = (trace.threads[load.tid][0], load.index)
            bound[key] = describe_source(attempt, store.nid)
            try:
                if attempt.before(load.nid, store.nid):
                    raise CycleError(store.nid, load.nid)
                attempt.add_edge(store.nid, load.nid, EdgeKind.SOURCE)
                attempt_load.source = store.nid
                attempt_load.executed = True
                attempt_load.value = load.value
                close_store_atomicity(attempt)
            except CycleError as exc:
                path = attempt.find_path(exc.target, exc.source) or []
                contradictions.append(
                    Contradiction(
                        assignment=bound,
                        obligation=(
                            f"{attempt.node(exc.source).describe()} ⊑ "
                            f"{attempt.node(exc.target).describe()}"
                        ),
                        reverse_path=_describe_path(attempt, path),
                    )
                )
                continue
            except AtomicityViolation as exc:
                cause = exc.__cause__
                if isinstance(cause, CycleError):
                    path = attempt.find_path(cause.target, cause.source) or []
                    contradictions.append(
                        Contradiction(
                            assignment=bound,
                            obligation=(
                                f"{attempt.node(cause.source).describe()} ⊑ "
                                f"{attempt.node(cause.target).describe()}"
                            ),
                            reverse_path=_describe_path(attempt, path),
                        )
                    )
                else:  # pragma: no cover - closure always chains CycleError
                    contradictions.append(
                        Contradiction(bound, str(exc), "(no path available)")
                    )
                continue
            if search(attempt, remaining[1:], bound):
                found_any = True
                return True
        return found_any

    observable = search(base_graph, loads, {})
    return Explanation(
        forbidden=not observable,
        model_name=model.name,
        contradictions=contradictions,
    )
