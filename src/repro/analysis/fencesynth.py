"""Minimal fence synthesis.

Shasha & Snir [27] (paper §7) compute which program orderings are
"involved in potential cycles and are therefore actually necessary";
everything else may be left to a weaker memory system.  This module does
the converse, as a verification-driven search: given a litmus condition
that must be *forbidden* and a memory model, find the minimal sets of
full-fence insertions that forbid it — by exhaustively enumerating
behaviors of each fenced variant.

The result is model-dependent in exactly the way hardware folklore says:
MP needs two fences under WEAK but only the writer-side fence under PSO,
SB needs one per thread everywhere weaker than SC, and so on — the
TAB-FENCESYNTH experiment pins those down.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.enumerate import EnumerationLimits, enumerate_behaviors
from repro.isa.instructions import Fence
from repro.isa.program import Program, Thread
from repro.litmus.conditions import Condition
from repro.litmus.finalstate import realizable_final_memory
from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel
from repro.models.registry import get_model


@dataclass(frozen=True, order=True)
class FenceSite:
    """A fence insertion point: before instruction ``position`` of
    ``thread`` (so ``position`` ranges over 1..len(code)-1)."""

    thread: str
    position: int

    def __str__(self) -> str:
        return f"{self.thread}@{self.position}"


def candidate_sites(program: Program) -> tuple[FenceSite, ...]:
    """All gaps between consecutive instructions where at least one
    neighbor is a memory operation (fences elsewhere cannot matter)."""
    sites = []
    for thread in program.threads:
        for position in range(1, len(thread.code)):
            before = thread.code[position - 1]
            after = thread.code[position]
            if before.op_class.is_memory() or after.op_class.is_memory():
                if not isinstance(before, Fence) and not isinstance(after, Fence):
                    sites.append(FenceSite(thread.name, position))
    return tuple(sites)


def insert_fences(program: Program, sites: tuple[FenceSite, ...]) -> Program:
    """A copy of ``program`` with full fences inserted at ``sites``."""
    by_thread: dict[str, list[int]] = {}
    for site in sites:
        by_thread.setdefault(site.thread, []).append(site.position)
    threads = []
    for thread in program.threads:
        positions = sorted(by_thread.get(thread.name, []), reverse=True)
        code = list(thread.code)
        labels = dict(thread.labels)
        for position in positions:
            code.insert(position, Fence())
            labels = {
                name: (index + 1 if index >= position else index)
                for name, index in labels.items()
            }
        threads.append(Thread(thread.name, tuple(code), labels))
    return Program(tuple(threads), dict(program.initial_memory), program.name)


def _condition_forbidden(
    program: Program,
    condition: Condition,
    model: MemoryModel,
    limits: EnumerationLimits | None,
) -> bool:
    result = enumerate_behaviors(program, model, limits)
    locations = condition.locations()
    for execution in result.executions:
        registers = execution.final_registers()
        for assignment in realizable_final_memory(execution, locations):
            if condition.holds_in(registers, assignment):
                return False
    return True


@dataclass
class FenceSynthesisResult:
    """Minimal fence placements forbidding the condition."""

    test_name: str
    model_name: str
    sites: tuple[FenceSite, ...]  #: the candidate insertion points
    solutions: list[tuple[FenceSite, ...]]  #: all minimum-size solutions
    already_forbidden: bool = False
    subsets_checked: int = 0

    @property
    def fence_count(self) -> int | None:
        """Size of the minimal solutions (0 when already forbidden,
        None when no placement works)."""
        if self.already_forbidden:
            return 0
        if not self.solutions:
            return None
        return len(self.solutions[0])

    def summary(self) -> str:
        if self.already_forbidden:
            return (
                f"{self.test_name} under {self.model_name}: already forbidden "
                f"(0 fences needed)"
            )
        if not self.solutions:
            return (
                f"{self.test_name} under {self.model_name}: NO fence placement "
                f"forbids the outcome"
            )
        rendered = " | ".join(
            "{" + ", ".join(str(site) for site in solution) + "}"
            for solution in self.solutions
        )
        return (
            f"{self.test_name} under {self.model_name}: {self.fence_count} "
            f"fence(s) suffice; minimal placements: {rendered}"
        )


def synthesize_fences(
    test: LitmusTest,
    model: MemoryModel | str,
    limits: EnumerationLimits | None = None,
    max_fences: int | None = None,
) -> FenceSynthesisResult:
    """Find all minimum-size full-fence insertions making the test's
    condition unobservable under ``model``.

    Intended for ``exists`` conditions describing a forbidden relaxed
    outcome; searches subsets of insertion points by increasing size and
    stops at the first size admitting a solution.
    """
    if isinstance(model, str):
        model = get_model(model)
    sites = candidate_sites(test.program)
    result = FenceSynthesisResult(test.name, model.name, sites, [])

    if _condition_forbidden(test.program, test.condition, model, limits):
        result.already_forbidden = True
        return result

    budget = len(sites) if max_fences is None else min(max_fences, len(sites))
    for size in range(1, budget + 1):
        for subset in combinations(sites, size):
            result.subsets_checked += 1
            fenced = insert_fences(test.program, subset)
            if _condition_forbidden(fenced, test.condition, model, limits):
                result.solutions.append(subset)
        if result.solutions:
            break
    return result
