"""Minimal fence synthesis (the enumerative ground truth).

Shasha & Snir [27] (paper §7) compute which program orderings are
"involved in potential cycles and are therefore actually necessary";
everything else may be left to a weaker memory system.  This module does
the converse, as a verification-driven search: given a goal that must
hold under a memory model, find the minimal sets of full-fence
insertions that achieve it — by exhaustively enumerating behaviors of
each fenced variant.  Two goals are supported:

* ``target="condition"`` — a litmus condition must become *forbidden*
  (the historical mode, for ``exists`` conditions describing a relaxed
  outcome),
* ``target="robust"`` — the fenced program must be **SC-robust**: its
  behavior signature (final registers × realizable final memory) under
  the model must collapse to its SC signature.

The second is the goal the static set-cover pass in
:mod:`repro.analysis.static.fencerepair` computes without enumerating;
this module is the verification oracle it is cross-validated against,
over the shared site vocabulary of :mod:`repro.analysis.sites`.

The result is model-dependent in exactly the way hardware folklore says:
MP needs two fences under WEAK but only the writer-side fence under PSO,
SB needs one per thread everywhere weaker than SC, and so on — the
TAB-FENCESYNTH and TAB-FENCEREPAIR experiments pin those down.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable

from repro.analysis.sites import FenceSite, candidate_sites, insert_fences
from repro.core.enumerate import EnumerationLimits, EnumerationResult, enumerate_behaviors
from repro.isa.program import Program
from repro.litmus.conditions import Condition
from repro.litmus.finalstate import realizable_final_memory
from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel
from repro.models.registry import get_model

__all__ = [
    "FenceSite",
    "FenceSynthesisResult",
    "behavior_signature",
    "candidate_sites",
    "insert_fences",
    "synthesize_fences",
]

#: One observable behavior: (frozenset of final-register items,
#: frozenset of final-memory items).
Behavior = tuple[frozenset, frozenset]


def behavior_signature(
    result: EnumerationResult, locations: tuple[str, ...]
) -> frozenset:
    """The observable-behavior signature of an enumeration: every
    (final registers, realizable final memory over ``locations``) pair.

    Register outcomes alone miss store-only relaxations (2+2W's
    non-SC outcome lives entirely in final memory), so robustness
    comparisons must use this joint signature.
    """
    behaviors: set[Behavior] = set()
    for execution in result.executions:
        registers = frozenset(execution.final_registers().items())
        for assignment in realizable_final_memory(execution, locations):
            behaviors.add((registers, frozenset(assignment.items())))
    return frozenset(behaviors)


def _condition_check(
    condition: Condition,
    model: MemoryModel,
    limits: EnumerationLimits | None,
) -> Callable[[Program], tuple[bool, bool]]:
    """Goal check for ``target="condition"``: (forbidden, conclusive).

    Observing the condition in a *partial* enumeration is conclusive
    (behaviors found are certainly realizable); not observing it is
    conclusive only when the enumeration completed.
    """
    locations = condition.locations()

    def check(program: Program) -> tuple[bool, bool]:
        result = enumerate_behaviors(program, model, limits)
        for execution in result.executions:
            registers = execution.final_registers()
            for assignment in realizable_final_memory(execution, locations):
                if condition.holds_in(registers, assignment):
                    return False, True
        return True, result.complete

    return check


def _robust_check(
    sc_signature: frozenset,
    model: MemoryModel,
    limits: EnumerationLimits | None,
    locations: tuple[str, ...],
) -> Callable[[Program], tuple[bool, bool]]:
    """Goal check for ``target="robust"``: (robust, conclusive).

    A non-SC behavior in a partial enumeration conclusively refutes
    robustness; seeing only SC behaviors certifies it only when the
    enumeration completed.  Fences are semantic no-ops under SC, so the
    unfenced program's SC signature is every fenced variant's too.
    """

    def check(program: Program) -> tuple[bool, bool]:
        result = enumerate_behaviors(program, model, limits)
        signature = behavior_signature(result, locations)
        if not signature <= sc_signature:
            return False, True
        return True, result.complete

    return check


@dataclass
class FenceSynthesisResult:
    """Minimal fence placements achieving the synthesis target."""

    test_name: str
    model_name: str
    sites: tuple[FenceSite, ...]  #: the candidate insertion points
    solutions: list[tuple[FenceSite, ...]]  #: all minimum-size solutions
    already_forbidden: bool = False
    subsets_checked: int = 0
    target: str = "condition"
    complete: bool = True  #: False when some budget truncated the search
    reason: str | None = None  #: why the search is partial

    @property
    def fence_count(self) -> int | None:
        """Size of the minimal solutions (0 when already forbidden,
        None when no placement works)."""
        if self.already_forbidden:
            return 0
        if not self.solutions:
            return None
        return len(self.solutions[0])

    def summary(self) -> str:
        goal = "robust" if self.target == "robust" else "forbidden"
        caveat = f" [partial: {self.reason}]" if not self.complete else ""
        if self.already_forbidden:
            return (
                f"{self.test_name} under {self.model_name}: already {goal} "
                f"(0 fences needed){caveat}"
            )
        if not self.solutions:
            return (
                f"{self.test_name} under {self.model_name}: NO fence placement "
                f"makes the program {goal}{caveat}"
            )
        rendered = " | ".join(
            "{" + ", ".join(str(site) for site in solution) + "}"
            for solution in self.solutions
        )
        return (
            f"{self.test_name} under {self.model_name}: {self.fence_count} "
            f"fence(s) suffice; minimal placements: {rendered}{caveat}"
        )


def synthesize_fences(
    test: LitmusTest | Program,
    model: MemoryModel | str,
    limits: EnumerationLimits | None = None,
    max_fences: int | None = None,
    *,
    target: str = "condition",
    max_subsets: int | None = None,
) -> FenceSynthesisResult:
    """Find all minimum-size full-fence insertions achieving ``target``
    under ``model``, by exhaustive enumeration of fenced variants.

    ``target="condition"`` (requires a :class:`LitmusTest`) makes the
    test's condition unobservable; ``target="robust"`` (accepts a bare
    :class:`Program` too) makes the program SC-robust.  Searches subsets
    of insertion points by increasing size and stops at the first size
    admitting a solution, so ``solutions`` lists *all* minimum-size
    sets, in :func:`itertools.combinations` order over the candidate
    vocabulary.

    ``max_fences`` bounds the solution size; ``max_subsets`` bounds the
    total number of fenced variants enumerated.  Exhausting either —
    or any inner enumeration budget — returns an honest partial result
    (``complete=False`` with ``reason``) instead of hanging or guessing.
    """
    if isinstance(model, str):
        model = get_model(model)
    if target not in ("condition", "robust"):
        raise ValueError(f"unknown synthesis target: {target!r}")
    if isinstance(test, Program):
        if target == "condition":
            raise ValueError("target='condition' needs a LitmusTest, not a Program")
        program = test
        name = test.name
    else:
        program = test.program
        name = test.name

    sites = candidate_sites(program)
    result = FenceSynthesisResult(name, model.name, sites, [], target=target)

    if target == "condition":
        assert isinstance(test, LitmusTest)
        check = _condition_check(test.condition, model, limits)
    else:
        locations = program.locations()
        sc_result = enumerate_behaviors(program, get_model("sc"), limits)
        if not sc_result.complete:
            result.complete = False
            result.reason = "SC enumeration budget exhausted"
            return result
        sc_signature = behavior_signature(sc_result, locations)
        check = _robust_check(sc_signature, model, limits, locations)

    achieved, conclusive = check(program)
    if achieved:
        if conclusive:
            result.already_forbidden = True
        else:
            result.complete = False
            result.reason = "enumeration budget exhausted on the unfenced program"
        return result

    budget = len(sites) if max_fences is None else min(max_fences, len(sites))
    for size in range(1, budget + 1):
        for subset in combinations(sites, size):
            if max_subsets is not None and result.subsets_checked >= max_subsets:
                result.complete = False
                result.reason = (
                    f"subset budget ({max_subsets}) exhausted at size {size}"
                )
                return result
            result.subsets_checked += 1
            fenced = insert_fences(program, subset)
            achieved, conclusive = check(fenced)
            if achieved and conclusive:
                result.solutions.append(subset)
            elif achieved:
                # The budget ran out before this variant was decided:
                # don't claim it, but don't pretend the search was whole.
                result.complete = False
                result.reason = "enumeration budget exhausted on a fenced variant"
        if result.solutions:
            break
    if not result.solutions and budget < len(sites):
        result.complete = False
        result.reason = result.reason or (
            f"no solution within max_fences={max_fences}"
        )
    return result
