"""``explain_forbidden`` — certify an outcome impossible, minimally.

Given a litmus test and a model, decide whether the test's outcome
expression is reachable, and when it is *not*, say why in two forms:

* a **minimal violated-axiom core** — the smallest set of axiom groups
  (individual program-order facts, the source-edge rule, the store
  buffer drain, atomicity rules (a)/(b), the outcome restriction) whose
  conjunction is already unsatisfiable.  Every group is guarded by a
  selector variable (see :mod:`repro.analysis.solver.encode`); solving
  under assumptions yields a failed-assumption core that is then
  deletion-minimized.
* a **cycle witness** — when the outcome pins each constrained load to
  a unique source, the forced edges (program order, source, drain,
  atomicity closure) are built concretely and the cycle among them is
  rendered edge by edge.

Soundness is inherited from the relaxation direction of the encoding:
the CNF admits *every* real behavior, so UNSAT under the outcome
restriction proves the outcome unreachable outright.  The converse
(SAT) is checked by exact replay; relaxation artifacts are blocked and
the loop continues, so a "reachable" answer always carries a concrete
witness execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.solver.behaviors import _materialize, _Meter
from repro.analysis.solver.encode import (
    ClauseGroup,
    Encoding,
    _definite_writer,
    _definitely_same,
    _short,
    encode_program,
)
from repro.core.enumerate import EnumerationLimits
from repro.core.execution import Execution
from repro.core.node import Node
from repro.errors import EnumerationError
from repro.isa.instructions import OpClass
from repro.isa.operands import Value
from repro.litmus.conditions import And, Expr, RegisterAtom
from repro.litmus.finalstate import realizable_final_memory
from repro.litmus.test import LitmusTest
from repro.models import get_model
from repro.models.base import MemoryModel

GROUP_OUTCOME = "outcome"


@dataclass
class ForbiddenExplanation:
    """The answer, in both machine and human form."""

    test: LitmusTest
    model: MemoryModel
    forbidden: bool  #: True = the outcome expression is unreachable
    core: list[ClauseGroup] = field(default_factory=list)  #: minimal axiom set
    cycle: list[str] | None = None  #: rendered forced-edge cycle, if determined
    witness: Execution | None = None  #: a reaching execution (when not forbidden)
    blocked: int = 0  #: relaxation artifacts rejected by replay on the way
    exhausted: bool = False  #: forbidden proven by exhausting assignments only

    def render(self) -> str:
        lines = [
            f"{self.test.name} under {self.model.name}: outcome "
            f"{self.test.condition.expr} is "
            + ("FORBIDDEN" if self.forbidden else "reachable")
        ]
        if not self.forbidden:
            if self.witness is not None:
                lines.append("witness execution:")
                for row in self.witness.describe().splitlines()[1:]:
                    lines.append(row)
            return "\n".join(lines)
        if self.exhausted:
            lines.append(
                "(every reads-from assignment was enumerated and rejected "
                "by exact replay — no compact axiom core applies)"
            )
            return "\n".join(lines)
        lines.append(f"minimal violated-axiom core ({len(self.core)} axioms):")
        for group in self.core:
            lines.append(f"  - {group.description}")
        if self.cycle:
            lines.append("the forced orderings close a cycle:")
            for edge in self.cycle:
                lines.append(f"    {edge}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# outcome restriction


def _conjunctive_atoms(expr: Expr) -> list[RegisterAtom] | None:
    """The positive register atoms of a pure-conjunction expression, or
    ``None`` when the expression has any other shape (the expression is
    then left unrestricted and spurious models are filtered by replay)."""
    if isinstance(expr, RegisterAtom):
        return [expr]
    if isinstance(expr, And):
        collected: list[RegisterAtom] = []
        for operand in expr.operands:
            atoms = _conjunctive_atoms(operand)
            if atoms is None:
                return None
            collected.extend(atoms)
        return collected
    return None


def _store_may_produce(encoding: Encoding, store: Node, value: Value) -> bool:
    """May ``store`` write ``value``?  Init stores and constant-operand
    stores answer exactly; anything statically unknown answers yes."""
    if store.is_init:
        return store.stored == value
    facts = encoding.facts.access(store.tid, store.static_index)
    if facts is None or facts.stored_values is None:
        return True
    return value in facts.stored_values


def _restrict_outcome(
    encoding: Encoding, atoms: list[RegisterAtom], group: ClauseGroup
) -> dict[int, list[int]]:
    """Add clauses (under ``group``'s selector) confining each atom's
    last register writer.  Returns the per-load allowed candidate sets
    (used afterwards to pin unique sources for the cycle witness)."""
    solver = encoding.solver
    selector = group.selector
    assert selector is not None, "the outcome group is always guarded"
    thread_index = {
        thread.name: tid for tid, thread in enumerate(encoding.program.threads)
    }
    allowed_map: dict[int, list[int]] = {}
    for atom in atoms:
        tid = thread_index.get(atom.thread)
        if tid is None:
            continue
        producer = encoding.base.threads[tid].regs.get(atom.register)
        if producer is None:
            continue
        node = encoding.base.graph.node(producer)
        if node.reads_memory:
            allowed = [
                store_nid
                for store_nid in encoding.candidates[node.nid]
                if _store_may_produce(
                    encoding, encoding.base.graph.node(store_nid), atom.value
                )
            ]
            allowed_map[node.nid] = allowed
            lits = [encoding.rf_var[(node.nid, s)] for s in allowed]
            if node.nid in encoding.ext_var:
                lits.append(encoding.ext_var[node.nid])
            solver.add_clause([-selector] + lits)
        elif node.executed and node.value is not None and node.value != atom.value:
            # A constant register provably differs from the required
            # value: the outcome restriction alone is unsatisfiable.
            solver.add_clause([-selector])
    return allowed_map


# ----------------------------------------------------------------------
# cycle witness


def _forced_cycle(
    encoding: Encoding, pinned: dict[int, int]
) -> list[str] | None:
    """Best effort: close the *forced* edges (skeleton order, pinned
    sources, buffer drain, atomicity rules over pinned loads) and render
    a cycle among them, if one exists."""
    graph = encoding.base.graph
    model = encoding.model
    edges: dict[tuple[int, int], str] = {}

    def put(u: int, v: int, label: str) -> bool:
        if (u, v) in edges:
            return False
        edges[(u, v)] = label
        return True

    for a in encoding.memory_nodes:
        for b in encoding.memory_nodes:
            if a.nid != b.nid and graph.before(a.nid, b.nid):
                path = graph.find_path(a.nid, b.nid)
                kinds = ", ".join(
                    dict.fromkeys(kind.pretty() for _, _, kind in (path or []))
                )
                put(a.nid, b.nid, kinds or "program order")

    def forwardable(load: Node, store: Node) -> bool:
        return (
            model.store_load_bypass
            and load.op_class is OpClass.LOAD
            and store.tid == load.tid
            and store.index < load.index
        )

    stores = [n for n in encoding.memory_nodes if n.writes_memory]
    for load_nid, src_nid in pinned.items():
        load, src = graph.node(load_nid), graph.node(src_nid)
        if not forwardable(load, src):
            put(src_nid, load_nid, "source (the load reads this store)")
            if model.store_load_bypass and load.op_class is OpClass.LOAD:
                for local in stores:
                    if (
                        local.tid == load.tid
                        and local.index < load.index
                        and local.nid != src_nid
                        and _definite_writer(local)
                        and _definitely_same(local, load, encoding.facts)
                    ):
                        put(local.nid, load_nid, "store-buffer drain")

    # Atomicity fixpoint over the forced edges.
    for _ in range(2 * len(encoding.memory_nodes) ** 2):
        reach = _reachability(edges, [n.nid for n in encoding.memory_nodes])
        changed = False
        for load_nid, src_nid in pinned.items():
            load = graph.node(load_nid)
            for store in stores:
                if store.nid in (load_nid, src_nid):
                    continue
                if not _definite_writer(store) or not _definitely_same(
                    store, load, encoding.facts
                ):
                    continue
                if (store.nid, load_nid) in reach:
                    changed |= put(
                        store.nid,
                        src_nid,
                        f"atomicity rule (a) via {_short(load)}",
                    )
                if (src_nid, store.nid) in reach:
                    changed |= put(
                        load_nid,
                        store.nid,
                        f"atomicity rule (b) via {_short(load)}",
                    )
        if not changed:
            break

    return _render_cycle(encoding, edges)


def _reachability(
    edges: dict[tuple[int, int], str], nids: list[int]
) -> set[tuple[int, int]]:
    succ: dict[int, set[int]] = {nid: set() for nid in nids}
    for u, v in edges:
        succ.setdefault(u, set()).add(v)
    reach: set[tuple[int, int]] = set()
    for start in nids:
        stack = [start]
        seen: set[int] = set()
        while stack:
            here = stack.pop()
            for there in succ.get(here, ()):
                if there not in seen:
                    seen.add(there)
                    reach.add((start, there))
                    stack.append(there)
    return reach


def _render_cycle(
    encoding: Encoding, edges: dict[tuple[int, int], str]
) -> list[str] | None:
    """Find any directed cycle among ``edges`` and render it."""
    succ: dict[int, list[int]] = {}
    for u, v in edges:
        succ.setdefault(u, []).append(v)
    graph = encoding.base.graph
    color: dict[int, int] = {}
    parent: dict[int, int] = {}

    def visit(start: int) -> list[int] | None:
        stack: list[tuple[int, int]] = [(start, 0)]
        color[start] = 1
        while stack:
            node, position = stack[-1]
            nexts = succ.get(node, [])
            if position < len(nexts):
                stack[-1] = (node, position + 1)
                there = nexts[position]
                state = color.get(there, 0)
                if state == 0:
                    color[there] = 1
                    parent[there] = node
                    stack.append((there, 0))
                elif state == 1:
                    cycle = [node]
                    walk = node
                    while walk != there:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.reverse()
                    return cycle
            else:
                color[node] = 2
                stack.pop()
        return None

    for nid in list(succ):
        if color.get(nid, 0) == 0:
            cycle = visit(nid)
            if cycle is not None:
                rendered = []
                for i, u in enumerate(cycle):
                    v = cycle[(i + 1) % len(cycle)]
                    label = edges[(u, v)]
                    rendered.append(
                        f"{_short(graph.node(u))}  ⊑  {_short(graph.node(v))}"
                        f"   [{label}]"
                    )
                return rendered
    return None


# ----------------------------------------------------------------------
# the driver


def explain_forbidden(
    test: LitmusTest,
    model: MemoryModel | str,
    limits: EnumerationLimits | None = None,
) -> ForbiddenExplanation:
    """Decide reachability of ``test``'s outcome expression under
    ``model`` and explain the verdict (see the module docstring)."""
    if isinstance(model, str):
        model = get_model(model)
    if limits is None:
        limits = EnumerationLimits()
    encoding = encode_program(
        test.program,
        model,
        max_nodes_per_thread=limits.max_nodes_per_thread,
        with_selectors=True,
    )
    solver = encoding.solver

    outcome_selector = solver.new_var()
    outcome_group = ClauseGroup(
        GROUP_OUTCOME, f"the outcome requires {test.condition.expr}", outcome_selector
    )
    encoding.groups.append(outcome_group)
    atoms = _conjunctive_atoms(test.condition.expr)
    allowed_map: dict[int, list[int]] = {}
    if atoms is not None:
        allowed_map = _restrict_outcome(encoding, atoms, outcome_group)

    assumptions = encoding.selectors()
    meter = _Meter(limits.max_executions)
    from repro.analysis.solver.behaviors import SolveStats

    stats = SolveStats()
    locations = test.condition.locations()
    blocked = 0
    while True:
        if blocked > limits.max_executions:
            raise EnumerationError(
                f"explain: exceeded {limits.max_executions} rejected "
                f"reads-from assignments for {test.name} under {model.name}"
            )
        if not solver.solve(assumptions):
            break
        assignment = encoding.rf_assignment()
        for execution in _materialize(encoding, assignment, stats, meter):
            registers = execution.final_registers()
            for memory in realizable_final_memory(execution, locations):
                if test.condition.holds_in(registers, memory):
                    return ForbiddenExplanation(
                        test=test,
                        model=model,
                        forbidden=False,
                        witness=execution,
                        blocked=blocked,
                    )
        blocked += 1
        encoding.block(assignment)

    core_literals = solver.core()
    if not core_literals:
        # UNSAT without assumptions: every assignment was enumerated and
        # rejected by replay; there is no compact axiom core.
        return ForbiddenExplanation(
            test=test, model=model, forbidden=True, blocked=blocked, exhausted=True
        )

    # Deletion-minimize the failed-assumption core (to a fixpoint: no
    # single axiom can be dropped without the outcome becoming SAT).
    core = list(core_literals)
    shrinking = True
    while shrinking:
        shrinking = False
        for literal in list(core):
            trial = [other for other in core if other != literal]
            if not solver.solve(trial):
                core = solver.core() or trial
                shrinking = True
                break

    groups = [encoding.group_of(selector) for selector in sorted(core)]

    # Pin unique sources for the cycle witness: loads the outcome (or
    # the candidate structure itself) confines to a single store.
    pinned: dict[int, int] = {}
    for load in encoding.loads:
        options = allowed_map.get(load.nid, encoding.candidates[load.nid])
        if len(options) == 1 and load.nid not in encoding.ext_var:
            pinned[load.nid] = options[0]
    cycle = _forced_cycle(encoding, pinned)

    return ForbiddenExplanation(
        test=test,
        model=model,
        forbidden=True,
        core=groups,
        cycle=cycle,
        blocked=blocked,
    )


__all__ = ["ForbiddenExplanation", "explain_forbidden", "GROUP_OUTCOME"]
