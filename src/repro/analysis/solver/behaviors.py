"""``solve_behaviors`` — AllSAT over reads-from skeletons.

The loop: ask the CDCL solver for a model of the axiom CNF, read off
the reads-from choice, *materialize* it by replaying the choice through
the exact :class:`~repro.core.execution.Execution` machinery, add a
blocking clause, repeat until UNSAT.  Because the CNF is a sound
relaxation (see :mod:`repro.analysis.solver.encode`), every real
behavior corresponds to some satisfying reads-from choice, and because
materialization uses the real engine, everything returned compares
byte-for-byte (``loadstore_key``) with ``enumerate_behaviors``.

Materialization has two regimes:

* **straight-line skeletons with a complete assignment** — the final
  execution is a *function* of the reads-from choice (the atomicity
  closure is a least fixpoint of order-monotone rules, so it does not
  depend on resolution order).  A depth-first replay with memoized
  failed frontiers finds the unique completion — or proves there is
  none — without ever enumerating the order lattice.  This is where the
  solver beats the enumerator: wide programs whose behavior count is
  tiny but whose interleaving lattice is exponential cost one replay
  per behavior here.
* **skeletons blocked on unresolved branches** (or a load assigned the
  "reads a post-branch store" pseudo-source) — the engine's own search
  is re-run restricted to the assignment, since new nodes appear only
  as branches resolve.

A :class:`CycleError` or :class:`AtomicityViolation` during replay is
*order-independent* (every edge involved is forced by a subset of the
assignment), so the whole assignment is rejected on the spot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.solver.encode import Encoding, encode_program
from repro.analysis.static.dataflow import StaticFacts, compute_static_facts
from repro.core.candidates import candidate_stores
from repro.core.enumerate import (
    EnumerationLimits,
    EnumerationResult,
    EnumerationStats,
    ExhaustionReason,
)
from repro.core.execution import Execution
from repro.errors import AtomicityViolation, CycleError, EnumerationError
from repro.isa.program import Program
from repro.models import get_model
from repro.models.base import MemoryModel


@dataclass
class SolveStats:
    """Counters for one :func:`solve_behaviors` run."""

    proposals: int = 0  #: SAT models produced by the AllSAT loop
    feasible: int = 0  #: proposals that materialized to ≥1 execution
    infeasible: int = 0  #: relaxation artifacts rejected by replay
    resolutions: int = 0  #: ``resolve_load`` calls during materialization
    behaviors: int = 0  #: distinct ``loadstore_key`` behaviors found
    conflicts: int = 0  #: CDCL conflicts
    decisions: int = 0  #: CDCL decisions
    propagations: int = 0  #: CDCL propagations


class _Infeasible(Exception):
    """The current reads-from assignment admits no real execution."""


class _Budget(Exception):
    def __init__(self, reason: ExhaustionReason) -> None:
        self.reason = reason
        super().__init__(reason.value)


class _Meter:
    """Deterministic work cap shared across all materializations."""

    def __init__(self, cap: int) -> None:
        self.spent = 0
        self.cap = cap

    def tick(self) -> None:
        self.spent += 1
        if self.spent > self.cap:
            raise _Budget(ExhaustionReason.EXECUTION_BUDGET)


# ----------------------------------------------------------------------
# materialization


def _replay(
    encoding: Encoding,
    assignment: dict[int, int | None],
    stats: SolveStats,
    meter: _Meter,
) -> Execution | None:
    """The unique completion of a complete straight-line assignment, or
    ``None``.  Deferral (a load whose target is not yet a candidate —
    e.g. its source's own priors are unresolved, or buffer visibility
    under bypass) is order-*sensitive*, so failed frontiers backtrack;
    cycles and atomicity violations are order-independent and abort."""
    failed: set[frozenset[int]] = set()

    def attempt(execution: Execution, pending: frozenset[int]) -> Execution | None:
        if not pending:
            return execution if execution.completed() else None
        if pending in failed:
            return None
        for load in execution.eligible_loads():
            nid = load.nid
            if nid not in pending:
                continue
            target = assignment[nid]
            if target not in {c.nid for c in candidate_stores(execution, load)}:
                continue  # possibly resolvable after another load; defer
            child = execution.copy()
            meter.tick()
            stats.resolutions += 1
            try:
                child.resolve_load(nid, target)
            except (CycleError, AtomicityViolation):
                raise _Infeasible from None
            found = attempt(child, pending - {nid})
            if found is not None:
                return found
        failed.add(pending)
        return None

    try:
        return attempt(encoding.base.copy(), frozenset(assignment))
    except _Infeasible:
        return None


def _search_restricted(
    encoding: Encoding,
    assignment: dict[int, int | None],
    stats: SolveStats,
    meter: _Meter,
) -> list[Execution]:
    """The engine's own branching search, restricted to ``assignment``:
    skeleton loads may only read their assigned source (``None`` = any
    store materialized past a branch), post-branch loads are free."""
    skeleton_size = len(encoding.base.graph)
    found: dict[str, Execution] = {}
    seen: set[str] = set()
    stack = [encoding.base.copy()]
    while stack:
        execution = stack.pop()
        if execution.completed():
            found.setdefault(repr(execution.loadstore_key()), execution)
            continue
        for load in execution.eligible_loads():
            nid = load.nid
            for store in candidate_stores(execution, load):
                if nid in assignment:
                    target = assignment[nid]
                    if target is None:
                        if store.nid < skeleton_size:
                            continue
                    elif store.nid != target:
                        continue
                child = execution.copy()
                meter.tick()
                stats.resolutions += 1
                try:
                    child.resolve_load(nid, store.nid)
                except (CycleError, AtomicityViolation):
                    continue
                except EnumerationError:
                    raise _Budget(ExhaustionReason.EXECUTION_BUDGET) from None
                key = repr(child.state_key())
                if key not in seen:
                    seen.add(key)
                    stack.append(child)
    return list(found.values())


def _materialize(
    encoding: Encoding,
    assignment: dict[int, int | None],
    stats: SolveStats,
    meter: _Meter,
) -> list[Execution]:
    if encoding.has_extension:
        return _search_restricted(encoding, assignment, stats, meter)
    execution = _replay(encoding, assignment, stats, meter)
    return [] if execution is None else [execution]


# ----------------------------------------------------------------------
# the AllSAT driver


def solve_behaviors_with_stats(
    program: Program,
    model: MemoryModel | str,
    limits: EnumerationLimits | None = None,
    *,
    facts: StaticFacts | None = None,
) -> tuple[EnumerationResult, SolveStats]:
    """Like :func:`solve_behaviors`, also returning solver counters."""
    if isinstance(model, str):
        model = get_model(model)
    if limits is None:
        limits = EnumerationLimits()
    if facts is None:
        facts = compute_static_facts(program)
    encoding = encode_program(
        program,
        model,
        max_nodes_per_thread=limits.max_nodes_per_thread,
        facts=facts,
    )
    solver = encoding.solver
    stats = SolveStats()
    meter = _Meter(limits.max_executions)
    behaviors: dict[str, Execution] = {}
    complete = True
    reason: ExhaustionReason | None = None
    try:
        while True:
            if len(behaviors) >= limits.max_behaviors:
                raise _Budget(ExhaustionReason.BEHAVIOR_BUDGET)
            if stats.proposals >= limits.max_executions:
                raise _Budget(ExhaustionReason.EXECUTION_BUDGET)
            if not solver.solve():
                break
            stats.proposals += 1
            assignment = encoding.rf_assignment()
            materialized = _materialize(encoding, assignment, stats, meter)
            if materialized:
                stats.feasible += 1
            else:
                stats.infeasible += 1
            for execution in materialized:
                behaviors.setdefault(repr(execution.loadstore_key()), execution)
            encoding.block(assignment)
    except _Budget as budget:
        complete = False
        reason = budget.reason
    stats.behaviors = len(behaviors)
    stats.conflicts = solver.conflicts
    stats.decisions = solver.decisions
    stats.propagations = solver.propagations
    executions = [behaviors[key] for key in sorted(behaviors)]
    enumeration_stats = EnumerationStats(
        explored=stats.proposals,
        resolutions=stats.resolutions,
        completed=stats.feasible,
        stuck=stats.infeasible,
        branched=0,
    )
    result = EnumerationResult(
        program=program,
        model=model,
        executions=executions,
        stats=enumeration_stats,
        complete=complete,
        reason=reason,
    )
    return result, stats


def solve_behaviors(
    program: Program,
    model: MemoryModel | str,
    limits: EnumerationLimits | None = None,
    *,
    facts: StaticFacts | None = None,
) -> EnumerationResult:
    """All behaviors of ``program`` under ``model`` by SAT + replay.

    The returned :class:`EnumerationResult` has the same shape as
    :func:`~repro.core.enumerate.enumerate_behaviors` — in particular
    ``sorted(repr(e.loadstore_key()) for e in result.executions)`` is
    byte-identical between the two on the full litmus library (the
    TAB-SOLVER experiment gates exactly this).
    """
    result, _ = solve_behaviors_with_stats(program, model, limits, facts=facts)
    return result


__all__ = [
    "SolveStats",
    "solve_behaviors",
    "solve_behaviors_with_stats",
]
