"""Program + model → CNF (the axioms of the paper as clause schemas).

The encoding covers the three ingredients the title of the paper names:

* **instruction reordering** — the skeleton ⊑ relation of the base
  behavior (reordering-table edges, fences, acquire/release, register
  and address dependencies, init edges) becomes one *unit clause per
  ordered pair* of memory operations;
* **store atomicity** — rules (a) and (b) of Section 3.3 become
  conditional clauses over reads-from and order variables, instantiated
  for pairs that are *statically certain* to alias;
* **reads-from** — every load picks exactly one candidate source store.

The CNF is a sound **relaxation**: every real execution satisfies every
clause (each schema below is only instantiated where the corresponding
machine step provably fires), but a satisfying assignment is not yet a
behavior.  :mod:`repro.analysis.solver.behaviors` closes the gap by
replaying each model through the exact :class:`Execution` machinery —
anything the relaxation over-admits (may-alias sources, rule (c),
dynamically-discovered same-address edges, value flow) is rejected
there and blocked.  Value consistency is therefore enforced exactly by
replay rather than approximated in CNF.

With ``with_selectors=True`` every axiom group is guarded by a fresh
selector variable so :mod:`repro.analysis.solver.explain` can solve
under assumptions and shrink failed-assumption sets to a minimal
violated-axiom core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.solver.sat import SatSolver
from repro.analysis.static.dataflow import StaticFacts, compute_static_facts
from repro.core.execution import Execution
from repro.core.node import Node
from repro.isa.instructions import OpClass, Rmw, RmwKind
from repro.isa.operands import Value
from repro.isa.program import Program
from repro.models.base import MemoryModel

#: Selector-group keys for the always-on structural clauses.
GROUP_PARTIAL_ORDER = "partial-order"
GROUP_RF_CHOICE = "rf-choice"
#: Selector-group keys for the model axioms (these can appear in cores).
GROUP_SOURCE_ORDER = "source-order"
GROUP_DRAIN = "store-buffer-drain"
GROUP_ATOMICITY_A = "atomicity-a"
GROUP_ATOMICITY_B = "atomicity-b"


@dataclass(frozen=True)
class ClauseGroup:
    """A named set of clauses, optionally guarded by a selector variable.

    Structural groups (the partial-order laws and the rf choice) are
    never guarded — a "core" that dropped transitivity would not explain
    anything.  Axiom groups and per-pair program-order units are guarded
    when the encoding is built for :func:`explain_forbidden`.
    """

    key: str  #: stable id, e.g. ``order:3->7`` or ``atomicity-a``
    description: str  #: human-readable axiom statement
    selector: int | None  #: guard variable (``None`` when always on)


@dataclass
class Encoding:
    """The CNF plus every map needed to interpret its models."""

    program: Program
    model: MemoryModel
    facts: StaticFacts
    base: Execution  #: the stabilized skeleton the variables refer to
    solver: SatSolver
    memory_nodes: list[Node]  #: skeleton memory operations (incl. init)
    loads: list[Node]  #: memory nodes that need a reads-from source
    order_var: dict[tuple[int, int], int]  #: (a, b) -> var for "a ⊑ b"
    rf_var: dict[tuple[int, int], int]  #: (load, store) -> var "L reads S"
    ext_var: dict[int, int]  #: load -> var "L reads a post-branch store"
    candidates: dict[int, list[int]]  #: load nid -> candidate store nids
    has_extension: bool  #: some thread is blocked on an unresolved branch
    groups: list[ClauseGroup] = field(default_factory=list)

    # -- model interpretation ------------------------------------------

    def rf_assignment(self) -> dict[int, int | None]:
        """Reads-from choice of the last SAT model: load nid -> store
        nid, or ``None`` for "a store beyond an unresolved branch"."""
        choice: dict[int, int | None] = {}
        for load in self.loads:
            nid = load.nid
            for store_nid in self.candidates[nid]:
                if self.solver.value(self.rf_var[(nid, store_nid)]):
                    choice[nid] = store_nid
                    break
            else:
                choice[nid] = None
        return choice

    def rf_literals(self, assignment: dict[int, int | None]) -> list[int]:
        """The positive rf/extension literals selecting ``assignment``."""
        literals = []
        for nid, store_nid in assignment.items():
            if store_nid is None:
                literals.append(self.ext_var[nid])
            else:
                literals.append(self.rf_var[(nid, store_nid)])
        return literals

    def block(self, assignment: dict[int, int | None]) -> None:
        """Forbid ``assignment`` (the AllSAT blocking clause)."""
        self.solver.add_clause([-lit for lit in self.rf_literals(assignment)])

    def selectors(self) -> list[int]:
        return [g.selector for g in self.groups if g.selector is not None]

    def group_of(self, selector: int) -> ClauseGroup:
        for group in self.groups:
            if group.selector == selector:
                return group
        raise KeyError(selector)


# ----------------------------------------------------------------------
# static address reasoning


def _address_set(node: Node, facts: StaticFacts) -> frozenset[Value] | None:
    """Addresses ``node`` may touch (``None`` = unknown, i.e. any)."""
    if node.addr is not None:
        return frozenset((node.addr,))
    if node.tid < 0 or node.static_index is None:
        return None
    return facts.address_set(node.tid, node.static_index)


def _static_address(node: Node, facts: StaticFacts) -> Value | None:
    """The single address ``node`` certainly touches, if known."""
    addresses = _address_set(node, facts)
    if addresses is not None and len(addresses) == 1:
        return next(iter(addresses))
    return None


def _may_alias(a: Node, b: Node, facts: StaticFacts) -> bool:
    set_a, set_b = _address_set(a, facts), _address_set(b, facts)
    if set_a is None or set_b is None:
        return True
    return bool(set_a & set_b)


def _definitely_same(a: Node, b: Node, facts: StaticFacts) -> bool:
    addr_a = _static_address(a, facts)
    return addr_a is not None and addr_a == _static_address(b, facts)


def _definite_writer(node: Node) -> bool:
    """Does ``node`` certainly write memory when executed?  A failed CAS
    does not, so only plain stores (incl. init) and always-writing RMWs
    (exchange, fetch-add) may instantiate atomicity/drain schemas."""
    if node.op_class is OpClass.STORE:
        return True
    if node.op_class is OpClass.RMW and isinstance(node.instruction, Rmw):
        return node.instruction.kind is not RmwKind.CAS
    return False


def _short(node: Node) -> str:
    if node.is_init:
        return f"init {node.addr}={node.stored!r}"
    return f"[T{node.tid}.{node.index}] {node.instruction}"


# ----------------------------------------------------------------------
# the encoder


def encode_program(
    program: Program,
    model: MemoryModel,
    *,
    max_nodes_per_thread: int = 64,
    facts: StaticFacts | None = None,
    with_selectors: bool = False,
) -> Encoding:
    """Build the CNF for ``program`` under ``model``.

    Raises :class:`~repro.errors.EnumerationError` if the skeleton
    itself exceeds the node budget (unbounded loop) — the same contract
    as :func:`~repro.core.enumerate.enumerate_behaviors`.
    """
    if facts is None:
        facts = compute_static_facts(program)
    base = Execution.initial(program, model, max_nodes_per_thread, facts)
    solver = SatSolver()
    graph = base.graph
    memory_nodes = [node for node in graph.nodes if node.is_memory]
    loads = [node for node in memory_nodes if node.reads_memory]
    stores = [node for node in memory_nodes if node.writes_memory]
    has_extension = any(not state.halted for state in base.threads)

    encoding = Encoding(
        program=program,
        model=model,
        facts=facts,
        base=base,
        solver=solver,
        memory_nodes=memory_nodes,
        loads=loads,
        order_var={},
        rf_var={},
        ext_var={},
        candidates={},
        has_extension=has_extension,
    )

    def group(key: str, description: str, *, guarded: bool) -> ClauseGroup:
        selector = solver.new_var() if (guarded and with_selectors) else None
        made = ClauseGroup(key, description, selector)
        encoding.groups.append(made)
        return made

    def add(made: ClauseGroup, lits: list[int]) -> None:
        if made.selector is not None:
            solver.add_clause([-made.selector] + lits)
        else:
            solver.add_clause(lits)

    # -- variables ------------------------------------------------------
    for a in memory_nodes:
        for b in memory_nodes:
            if a.nid != b.nid:
                encoding.order_var[(a.nid, b.nid)] = solver.new_var()
    for load in loads:
        chosen: list[int] = []
        for store in stores:
            if store.nid == load.nid:
                continue  # an RMW never reads its own write
            if graph.before(load.nid, store.nid):
                continue  # a source ⊑-after the load is a cycle outright
            if not _may_alias(load, store, facts):
                continue
            chosen.append(store.nid)
            encoding.rf_var[(load.nid, store.nid)] = solver.new_var()
        encoding.candidates[load.nid] = chosen
        if has_extension:
            encoding.ext_var[load.nid] = solver.new_var()

    order = encoding.order_var

    # -- group 1: skeleton program order (one guarded unit per pair) ----
    for a in memory_nodes:
        for b in memory_nodes:
            if a.nid == b.nid or not graph.before(a.nid, b.nid):
                continue
            path = graph.find_path(a.nid, b.nid)
            kinds = ", ".join(
                dict.fromkeys(kind.pretty() for _, _, kind in (path or []))
            )
            made = group(
                f"order:{a.nid}->{b.nid}",
                f"{_short(a)} ⊑ {_short(b)} ({kinds or 'program order'})",
                guarded=True,
            )
            add(made, [order[(a.nid, b.nid)]])

    # -- group 2: ⊑ is a strict partial order (structural, never guarded)
    laws = group(GROUP_PARTIAL_ORDER, "⊑ is a strict partial order", guarded=False)
    nids = [node.nid for node in memory_nodes]
    for i, a in enumerate(nids):
        for b in nids[i + 1 :]:
            add(laws, [-order[(a, b)], -order[(b, a)]])
    for a in nids:
        for b in nids:
            if b == a:
                continue
            for c in nids:
                if c == a or c == b:
                    continue
                add(laws, [-order[(a, b)], -order[(b, c)], order[(a, c)]])

    # -- group 3: every load reads exactly one source (structural) ------
    choice = group(GROUP_RF_CHOICE, "every load reads exactly one store", guarded=False)
    for load in loads:
        options = [encoding.rf_var[(load.nid, s)] for s in encoding.candidates[load.nid]]
        if has_extension:
            options.append(encoding.ext_var[load.nid])
        add(choice, list(options))
        for i, first in enumerate(options):
            for second in options[i + 1 :]:
                add(choice, [-first, -second])

    # -- group 4: a load is ⊑-after its source (unless forwarded) -------
    def forwardable(load: Node, store: Node) -> bool:
        """May resolving ``load`` from ``store`` be a store-buffer
        forward (grey BYPASS edge, no ⊑)?  Mirrors ``is_local_forward``
        in :meth:`Execution.resolve_load`."""
        return (
            model.store_load_bypass
            and load.op_class is OpClass.LOAD
            and store.tid == load.tid
            and store.index < load.index
        )

    source = group(
        GROUP_SOURCE_ORDER,
        "a load is ordered after the store it reads (source edge)",
        guarded=True,
    )
    for (load_nid, store_nid), var in encoding.rf_var.items():
        load, store = graph.node(load_nid), graph.node(store_nid)
        if not forwardable(load, store):
            add(source, [-var, order[(store_nid, load_nid)]])

    # -- group 5: reading past the buffer drains it (bypass models) ----
    if model.store_load_bypass:
        drain = group(
            GROUP_DRAIN,
            "a load that bypasses the store buffer drains earlier local "
            "stores to its address",
            guarded=True,
        )
        for load in loads:
            if load.op_class is not OpClass.LOAD:
                continue
            earlier = [
                store
                for store in stores
                if store.tid == load.tid
                and store.index < load.index
                and _definite_writer(store)
                and _definitely_same(store, load, facts)
            ]
            if not earlier:
                continue
            for local in earlier:
                for store_nid in encoding.candidates[load.nid]:
                    store = graph.node(store_nid)
                    if store_nid != local.nid and not forwardable(load, store):
                        add(
                            drain,
                            [
                                -encoding.rf_var[(load.nid, store_nid)],
                                order[(local.nid, load.nid)],
                            ],
                        )
                if load.nid in encoding.ext_var:
                    add(drain, [-encoding.ext_var[load.nid], order[(local.nid, load.nid)]])

    # -- groups 6 and 7: store atomicity rules (a) and (b) --------------
    rule_a = group(
        GROUP_ATOMICITY_A,
        "rule (a): a same-address store ⊑-before a load is ⊑-before the "
        "load's source",
        guarded=True,
    )
    rule_b = group(
        GROUP_ATOMICITY_B,
        "rule (b): a same-address store ⊑-after a load's source is "
        "⊑-after the load",
        guarded=True,
    )
    for (load_nid, src_nid), var in encoding.rf_var.items():
        load = graph.node(load_nid)
        for store in stores:
            if store.nid in (load_nid, src_nid):
                continue
            if not _definite_writer(store) or not _definitely_same(store, load, facts):
                continue
            add(rule_a, [-var, -order[(store.nid, load_nid)], order[(store.nid, src_nid)]])
            add(rule_b, [-var, -order[(src_nid, store.nid)], order[(load_nid, store.nid)]])

    return encoding


__all__ = [
    "ClauseGroup",
    "Encoding",
    "GROUP_ATOMICITY_A",
    "GROUP_ATOMICITY_B",
    "GROUP_DRAIN",
    "GROUP_PARTIAL_ORDER",
    "GROUP_RF_CHOICE",
    "GROUP_SOURCE_ORDER",
    "encode_program",
]
