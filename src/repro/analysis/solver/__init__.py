"""Constraint-based behavior solver (pure stdlib).

A third, independent implementation path for the paper's question "what
can this program do under this model", next to the axiomatic enumerator
(:mod:`repro.core.enumerate`) and the operational machines
(:mod:`repro.operational`): the reordering table, the dependency and
fence edges, and the Store Atomicity closure are encoded as CNF over
boolean *order* and *reads-from* variables, admissible behaviors are
recovered by AllSAT with exact replay materialization, and *forbidden*
outcomes are certified by assumption-based unsat cores shrunk to a
minimal violated-axiom set.

Modules:

* :mod:`repro.analysis.solver.sat` — a small CDCL SAT solver
  (two-watched-literal propagation, activity-driven decisions, first-UIP
  clause learning, Luby restarts, incremental solving under
  assumptions with failed-assumption cores).
* :mod:`repro.analysis.solver.encode` — program + model → CNF.
* :mod:`repro.analysis.solver.behaviors` — ``solve_behaviors``: AllSAT
  over reads-from skeletons, each model materialized through the real
  :class:`~repro.core.execution.Execution` machinery so the returned
  behaviors compare byte-for-byte (``loadstore_key``) with
  ``enumerate_behaviors``.
* :mod:`repro.analysis.solver.explain` — ``explain_forbidden``: why an
  outcome is impossible, as a minimal set of violated axioms plus a
  cycle witness when one is determined.
"""

from repro.analysis.solver.behaviors import (
    SolveStats,
    solve_behaviors,
    solve_behaviors_with_stats,
)
from repro.analysis.solver.encode import Encoding, encode_program
from repro.analysis.solver.explain import ForbiddenExplanation, explain_forbidden
from repro.analysis.solver.sat import SatSolver

__all__ = [
    "Encoding",
    "ForbiddenExplanation",
    "SatSolver",
    "SolveStats",
    "encode_program",
    "explain_forbidden",
    "solve_behaviors",
    "solve_behaviors_with_stats",
]
