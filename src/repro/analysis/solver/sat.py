"""A small CDCL SAT solver (pure stdlib).

The classic architecture in ~400 lines: two-watched-literal unit
propagation, activity-driven (VSIDS-style) decisions with phase saving,
first-UIP conflict analysis with clause learning, Luby-sequence
restarts, and incremental solving under *assumptions* with
failed-assumption cores — the interface
:mod:`repro.analysis.solver.explain` uses to extract minimal
violated-axiom sets.

Literals follow the DIMACS convention at the API boundary: variable
``v`` (a positive int from :meth:`SatSolver.new_var`) appears as ``v``
or ``-v``.  Internally a literal is ``2*var + sign`` with ``sign = 1``
for negation, so negation is ``lit ^ 1``.

There is no clause-database reduction or preprocessing — the encodings
in this package stay small (thousands of variables, tens of thousands
of clauses), and learnt clauses are simply kept.
"""

from __future__ import annotations

from typing import Iterable, Sequence

_UNDEF = -1


def _luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence
    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ..."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class SatSolver:
    """CDCL solver with incremental clause addition and assumptions."""

    def __init__(self) -> None:
        self._clauses: list[list[int]] = []  # internal-literal arrays
        self._watches: list[list[int]] = []  # internal literal -> clause ids
        self._assign: list[int] = []  # var -> _UNDEF | 0 (false) | 1 (true)
        self._phase: list[int] = []  # var -> last assigned polarity
        self._level: list[int] = []  # var -> decision level
        self._reason: list[int] = []  # var -> clause id or _UNDEF
        self._activity: list[float] = []
        self._trail: list[int] = []  # assigned internal literals, in order
        self._trail_lim: list[int] = []  # trail length at each decision
        self._queue_head = 0
        self._var_inc = 1.0
        self._ok = True
        self._model: list[int] = []
        self._core: list[int] = []
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0

    # -- variables and clauses -----------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) index."""
        self._assign.append(_UNDEF)
        self._phase.append(0)
        self._level.append(0)
        self._reason.append(_UNDEF)
        self._activity.append(0.0)
        self._watches.append([])
        self._watches.append([])
        return len(self._assign)  # 1-based externally

    def _internal(self, lit: int) -> int:
        var = abs(lit) - 1
        if var >= len(self._assign):
            raise ValueError(f"unknown variable {abs(lit)}")
        return 2 * var + (1 if lit < 0 else 0)

    def _value(self, ilit: int) -> int:
        """_UNDEF, or the truth value (0/1) of an internal literal."""
        assigned = self._assign[ilit >> 1]
        if assigned == _UNDEF:
            return _UNDEF
        return assigned ^ (ilit & 1)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause (external literals).  Returns False when the
        formula is already unsatisfiable at the root level."""
        if not self._ok:
            return False
        assert not self._trail_lim, "clauses must be added at the root level"
        seen: set[int] = set()
        clause: list[int] = []
        for lit in lits:
            ilit = self._internal(lit)
            if ilit ^ 1 in seen:
                return True  # tautology
            if ilit in seen:
                continue
            value = self._value(ilit)
            if value == 1:
                return True  # already satisfied at the root
            if value == 0:
                continue  # root-falsified literal drops out
            seen.add(ilit)
            clause.append(ilit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            self._enqueue(clause[0], _UNDEF)
            self._ok = self._propagate() == _UNDEF
            return self._ok
        cid = len(self._clauses)
        self._clauses.append(clause)
        self._watches[clause[0] ^ 1].append(cid)
        self._watches[clause[1] ^ 1].append(cid)
        return True

    # -- assignment and propagation ------------------------------------

    def _enqueue(self, ilit: int, reason: int) -> None:
        var = ilit >> 1
        self._assign[var] = 1 - (ilit & 1)
        self._phase[var] = 1 - (ilit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(ilit)

    def _propagate(self) -> int:
        """Exhaust unit propagation; returns a conflicting clause id or
        ``_UNDEF``."""
        while self._queue_head < len(self._trail):
            ilit = self._trail[self._queue_head]
            self._queue_head += 1
            self.propagations += 1
            # ``ilit`` is now true, so ``ilit ^ 1`` is the falsified
            # literal; clauses watching it are filed under ``ilit``
            # (watches are indexed by the watched literal's negation).
            falsified = ilit ^ 1
            watching = self._watches[ilit]
            kept: list[int] = []
            conflict = _UNDEF
            for position, cid in enumerate(watching):
                clause = self._clauses[cid]
                # Normalize: the falsified literal sits at clause[1].
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    kept.append(cid)
                    continue
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1] ^ 1].append(cid)
                        break
                else:
                    kept.append(cid)
                    if self._value(first) == 0:
                        conflict = cid
                        kept.extend(watching[position + 1:])
                        break
                    self._enqueue(first, cid)
            self._watches[ilit] = kept
            if conflict != _UNDEF:
                self._queue_head = len(self._trail)
                return conflict
        return _UNDEF

    # -- conflict analysis ---------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            inverse = 1e-100
            for index in range(len(self._activity)):
                self._activity[index] *= inverse
            self._var_inc *= inverse

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP learning: returns (learnt clause, backtrack level);
        the asserting literal is first in the learnt clause."""
        learnt: list[int] = [0]  # slot for the asserting literal
        seen = [False] * len(self._assign)
        counter = 0
        ilit = _UNDEF
        index = len(self._trail)
        current_level = len(self._trail_lim)
        reason = conflict
        while True:
            clause = self._clauses[reason]
            # The whole conflict clause contributes; for reason clauses,
            # clause[0] is the literal being resolved on and is skipped.
            for other in (clause if ilit == _UNDEF else clause[1:]):
                var = other >> 1
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learnt.append(other)
            while True:
                index -= 1
                ilit = self._trail[index]
                if seen[ilit >> 1]:
                    break
            counter -= 1
            seen[ilit >> 1] = False
            if counter == 0:
                break
            reason = self._reason[ilit >> 1]
        learnt[0] = ilit ^ 1
        if len(learnt) == 1:
            return learnt, 0
        # Backtrack to the second-highest decision level in the clause.
        max_pos = max(range(1, len(learnt)), key=lambda k: self._level[learnt[k] >> 1])
        learnt[1], learnt[max_pos] = learnt[max_pos], learnt[1]
        return learnt, self._level[learnt[1] >> 1]

    def _backtrack(self, target_level: int) -> None:
        if len(self._trail_lim) <= target_level:
            return
        bound = self._trail_lim[target_level]
        for ilit in reversed(self._trail[bound:]):
            var = ilit >> 1
            self._assign[var] = _UNDEF
            self._reason[var] = _UNDEF
        del self._trail[bound:]
        del self._trail_lim[target_level:]
        self._queue_head = len(self._trail)

    def _record_learnt(self, learnt: list[int]) -> None:
        if len(learnt) == 1:
            self._enqueue(learnt[0], _UNDEF)
            return
        cid = len(self._clauses)
        self._clauses.append(learnt)
        self._watches[learnt[0] ^ 1].append(cid)
        self._watches[learnt[1] ^ 1].append(cid)
        self._enqueue(learnt[0], cid)

    # -- decisions ------------------------------------------------------

    def _decide(self) -> int:
        best = _UNDEF
        best_activity = -1.0
        for var, assigned in enumerate(self._assign):
            if assigned == _UNDEF and self._activity[var] > best_activity:
                best = var
                best_activity = self._activity[var]
        if best == _UNDEF:
            return _UNDEF
        return 2 * best + (1 - self._phase[best])

    # -- assumptions and cores -----------------------------------------

    def _analyze_final(self, failed: int) -> None:
        """The failed assumption ``failed`` (internal) is falsified;
        collect the subset of assumptions implying its negation."""
        core = {failed}
        seen = [False] * len(self._assign)
        seen[failed >> 1] = True
        for ilit in reversed(self._trail):
            var = ilit >> 1
            if not seen[var]:
                continue
            reason = self._reason[var]
            if reason == _UNDEF:
                if self._level[var] > 0:
                    core.add(ilit)
            else:
                for other in self._clauses[reason][1:]:
                    if self._level[other >> 1] > 0:
                        seen[other >> 1] = True
            seen[var] = False
        self._core = sorted(
            (-(ilit >> 1) - 1 if ilit & 1 else (ilit >> 1) + 1) for ilit in core
        )

    # -- main loop ------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under ``assumptions``.  On SAT the model
        is readable via :meth:`value`; on UNSAT caused by assumptions,
        :meth:`core` holds a (not necessarily minimal) failed subset."""
        self._core = []
        if not self._ok:
            return False
        assumed = [self._internal(lit) for lit in assumptions]
        conflict_budget = 0
        restart_index = 0
        while True:
            restart_index += 1
            conflict_budget = 100 * _luby(restart_index)
            result = self._search(assumed, conflict_budget)
            if result is not None:
                self._backtrack(0)
                return result
            self.restarts += 1
            self._backtrack(0)

    def _search(self, assumed: list[int], budget: int) -> bool | None:
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict != _UNDEF:
                self.conflicts += 1
                conflicts_here += 1
                if not self._trail_lim:
                    self._ok = False
                    return False
                learnt, back_level = self._analyze(conflict)
                # Backjumping may undo assumption decisions; the decision
                # loop below re-applies them in order.
                self._backtrack(back_level)
                self._record_learnt(learnt)
                self._var_inc /= 0.95
                if conflicts_here >= budget:
                    return None
                continue
            if len(self._trail_lim) < len(assumed):
                next_assumption = assumed[len(self._trail_lim)]
                value = self._value(next_assumption)
                if value == 0:
                    self._analyze_final(next_assumption)
                    return False
                self._trail_lim.append(len(self._trail))
                if value == _UNDEF:
                    self._enqueue(next_assumption, _UNDEF)
                continue
            decision = self._decide()
            if decision == _UNDEF:
                self._model = list(self._assign)
                return True
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, _UNDEF)

    # -- results ---------------------------------------------------------

    def value(self, lit: int) -> bool:
        """Truth value of an external literal in the last SAT model."""
        var = abs(lit) - 1
        assigned = self._model[var]
        if assigned == _UNDEF:
            assigned = 0  # unconstrained variables default to false
        return bool(assigned) if lit > 0 else not bool(assigned)

    def core(self) -> list[int]:
        """External literals: the failed assumptions of the last UNSAT
        :meth:`solve` call (empty when UNSAT without assumptions)."""
        return list(self._core)


__all__ = ["SatSolver"]
