"""The well-synchronization discipline (paper Section 8).

    "We can say a program is well synchronized if for every load of a
    non-synchronization variable there is exactly one eligible store
    which can provide its value according to Store Atomicity."

The checker replays the enumeration procedure, recording every load
resolution point: a *violation* is a resolution of a load of a
non-synchronization location with more than one candidate store (a race
— the load's value depends on timing, not on synchronization).  A
well-synchronized program behaves identically under any store-atomic
model, which is why such programs may run on much weaker memory systems
(the paper's generalization of Adve & Hill's Proper Synchronization).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AtomicityViolation, CycleError, EnumerationError
from repro.core.candidates import candidate_stores
from repro.core.enumerate import EnumerationLimits
from repro.core.execution import Execution
from repro.isa.program import Program
from repro.models.base import MemoryModel
from repro.models.registry import get_model


@dataclass(frozen=True)
class RaceReport:
    """One racy load resolution."""

    thread: str
    index: int  #: dynamic instruction index within the thread
    location: str
    candidate_count: int
    candidate_values: tuple

    def __str__(self) -> str:
        values = ", ".join(repr(v) for v in self.candidate_values)
        return (
            f"load of {self.location!r} at {self.thread}[{self.index}] has "
            f"{self.candidate_count} eligible stores (values: {values})"
        )


@dataclass
class WellSyncReport:
    """The verdict for one program under one model."""

    program_name: str
    model_name: str
    sync_locations: frozenset[str]
    races: list[RaceReport] = field(default_factory=list)
    resolutions_checked: int = 0

    @property
    def well_synchronized(self) -> bool:
        return not self.races

    def summary(self) -> str:
        verdict = "WELL SYNCHRONIZED" if self.well_synchronized else "RACY"
        lines = [
            f"{self.program_name} under {self.model_name} "
            f"(sync locations: {sorted(self.sync_locations) or 'none'}): {verdict} "
            f"({self.resolutions_checked} resolutions checked)"
        ]
        for race in self.races[:10]:
            lines.append(f"  race: {race}")
        if len(self.races) > 10:
            lines.append(f"  ... and {len(self.races) - 10} more")
        return "\n".join(lines)


def check_well_synchronized(
    program: Program,
    model: MemoryModel | str,
    sync_locations: frozenset[str] | set[str] = frozenset(),
    limits: EnumerationLimits | None = None,
) -> WellSyncReport:
    """Check the Section 8 discipline by exhaustive enumeration.

    ``sync_locations`` are the locations used for synchronization (flags,
    locks); loads of those may legitimately race.  Every other load must
    have exactly one candidate store at each of its resolution points, in
    every reachable behavior.
    """
    if isinstance(model, str):
        model = get_model(model)
    limits = limits or EnumerationLimits()
    sync = frozenset(sync_locations)
    report = WellSyncReport(program.name, model.name, sync)

    initial = Execution.initial(program, model, limits.max_nodes_per_thread)
    worklist = [initial]
    seen = {initial.state_key()}
    seen_races: set[tuple] = set()
    explored = 0

    while worklist:
        behavior = worklist.pop()
        explored += 1
        if explored > limits.max_behaviors:
            raise EnumerationError(
                f"well-sync check exceeded {limits.max_behaviors} behaviors"
            )
        if behavior.completed():
            continue
        for load in behavior.eligible_loads():
            candidates = candidate_stores(behavior, load)
            report.resolutions_checked += 1
            if load.addr not in sync and len(candidates) > 1:
                race_key = (load.tid, load.index, load.addr, len(candidates))
                if race_key not in seen_races:
                    seen_races.add(race_key)
                    report.races.append(
                        RaceReport(
                            thread=program.threads[load.tid].name,
                            index=load.index,
                            location=str(load.addr),
                            candidate_count=len(candidates),
                            candidate_values=tuple(s.stored for s in candidates),
                        )
                    )
            for store in candidates:
                child = behavior.copy()
                try:
                    child.resolve_load(load.nid, store.nid)
                except (CycleError, AtomicityViolation, EnumerationError):
                    continue
                key = child.state_key()
                if key not in seen:
                    seen.add(key)
                    worklist.append(child)
    return report
