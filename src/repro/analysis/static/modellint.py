"""Static soundness audits of memory-model specifications.

A :class:`~repro.models.base.MemoryModel` is just data — a reordering
table plus two atomicity flags — so it can be *linted* like a program:

* **coherence / dependency breaking** — the same-address entries
  (Store→Store, Load→Store, Store→Load) must be at least
  ``SAME_ADDRESS``-ordered, or single-threaded execution becomes
  nondeterministic (the paper's reason for the x ≠ y entries).  The
  Figure 11 ``naive-tso`` strawman is deliberately flagged here.
* **speculative stores** — a table without the Branch→Store ``never``
  entry lets stores become visible under unresolved speculation
  (out-of-thin-air risk); reported as a warning.
* **SC containment** — every model must admit at least SC's behaviors
  (everything a model forbids, SC forbids).
* **RMW expansion** — an RMW must inherit at least the strongest
  requirement of its Load and Store halves.
* **fence power** — a full fence must order every prior and subsequent
  memory class (and is reported as redundant when the table already
  orders everything, as under SC).

:func:`statically_contained` decides behavior-set inclusion between two
models from tables and flags alone — the static face of the
``SC ⊆ TSO ⊆ PSO ⊆ WEAK`` lattice that the enumerator checks
dynamically (`repro.analysis.compare`, TAB-STATIC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import FenceKind, OpClass
from repro.isa.lint import LintLevel
from repro.models.base import MemoryModel, OrderRequirement
from repro.models.registry import available_models, get_model

#: Instruction classes compared pointwise (RMW included via expansion).
_CLASSES = (OpClass.COMPUTE, OpClass.BRANCH, OpClass.LOAD, OpClass.STORE, OpClass.RMW)

#: The canonical strength chain among the registered models, strongest
#: first.  ``weak-corr`` and ``weak-spec`` hang off ``weak``;
#: ``naive-tso`` is deliberately outside the lattice (Figure 11).
CANONICAL_CHAIN = ("sc", "tso", "pso", "weak")

#: The paper's model set, as seeded in the registry.  Audits that claim
#: "only the Figure 11 strawman errors" quantify over these — not over
#: whatever user-defined models happen to be registered at call time.
PAPER_MODELS = ("naive-tso", "pso", "sc", "tso", "weak", "weak-corr", "weak-spec")


@dataclass(frozen=True)
class ModelLintFinding:
    """One model-spec audit finding."""

    level: LintLevel
    model: str
    message: str

    def __str__(self) -> str:
        return f"{self.level.value}: [{self.model}] {self.message}"


def effective_requirement(
    model: MemoryModel, first: OpClass, second: OpClass
) -> OrderRequirement:
    """The class-level requirement with store-buffer forwarding folded
    in: a bypass model's Store→Load pair behaves as same-address-ordered
    (the load forwards from the newest same-address local store, so
    same-address coherence survives while cross-address order is
    relaxed)."""
    if (
        model.store_load_bypass
        and first is OpClass.STORE
        and second is OpClass.LOAD
    ):
        return OrderRequirement.SAME_ADDRESS
    return model.class_requirement(first, second)


def statically_contained(
    stronger: MemoryModel | str, weaker: MemoryModel | str
) -> bool | None:
    """Whether ``behaviors(stronger) ⊆ behaviors(weaker)`` is provable
    from the tables and flags alone.

    Returns True when provable, None when not statically decidable (the
    enumerator must arbitrate).  The criterion: the stronger model's
    effective requirement dominates pointwise, it introduces no
    speculation the weaker lacks, and — if it forwards from a store
    buffer — the weaker side either also forwards or keeps exactly
    same-address Store→Load order (which subsumes forwarding outcomes
    under Store Atomicity).  A fully relaxed Store→Load entry *without*
    bypass is not a superset of forwarding (the Figure 11 lesson), so
    such pairs are left undecided.
    """
    if isinstance(stronger, str):
        stronger = get_model(stronger)
    if isinstance(weaker, str):
        weaker = get_model(weaker)
    if stronger.speculative_aliasing and not weaker.speculative_aliasing:
        return None
    if stronger.store_load_bypass and not weaker.store_load_bypass:
        if (
            effective_requirement(weaker, OpClass.STORE, OpClass.LOAD)
            is not OrderRequirement.SAME_ADDRESS
        ):
            return None
    for first in _CLASSES:
        for second in _CLASSES:
            if effective_requirement(stronger, first, second) < effective_requirement(
                weaker, first, second
            ):
                return None
    return True


#: The same-address pairs whose order keeps single-threaded execution
#: deterministic (the paper's x ≠ y entries).
_COHERENCE_PAIRS = (
    (OpClass.STORE, OpClass.STORE),
    (OpClass.LOAD, OpClass.STORE),
    (OpClass.STORE, OpClass.LOAD),
)


def lint_model(model: MemoryModel | str) -> list[ModelLintFinding]:
    """All audit findings for one model."""
    if isinstance(model, str):
        model = get_model(model)
    findings: list[ModelLintFinding] = []

    def report(level: LintLevel, message: str) -> None:
        findings.append(ModelLintFinding(level, model.name, message))

    for first, second in _COHERENCE_PAIRS:
        if effective_requirement(model, first, second) < OrderRequirement.SAME_ADDRESS:
            report(
                LintLevel.ERROR,
                f"same-address {first.value}->{second.value} pairs may reorder: "
                f"dependency-breaking (single-threaded execution becomes "
                f"nondeterministic)",
            )

    if (
        effective_requirement(model, OpClass.BRANCH, OpClass.STORE)
        < OrderRequirement.ALWAYS
    ):
        report(
            LintLevel.WARNING,
            "Branch->Store is reorderable: speculative stores become visible "
            "before the branch resolves (out-of-thin-air risk)",
        )

    sc = get_model("sc")
    if model.name != sc.name:
        over_strict = [
            f"{first.value}->{second.value}"
            for first in _CLASSES
            for second in _CLASSES
            if effective_requirement(model, first, second)
            > effective_requirement(sc, first, second)
        ]
        if over_strict:
            report(
                LintLevel.WARNING,
                "not SC-contained: requires orderings SC does not "
                f"({', '.join(over_strict)}) — something this model forbids, "
                f"SC allows",
            )

    for other in (OpClass.LOAD, OpClass.STORE):
        expanded = max(
            model.class_requirement(half, other)
            for half in (OpClass.LOAD, OpClass.STORE)
        )
        if model.class_requirement(OpClass.RMW, other) < expanded:
            report(
                LintLevel.ERROR,
                f"RMW->{other.value} is weaker than the strongest of its "
                f"Load/Store halves (inconsistent RMW expansion)",
            )
        expanded = max(
            model.class_requirement(other, half)
            for half in (OpClass.LOAD, OpClass.STORE)
        )
        if model.class_requirement(other, OpClass.RMW) < expanded:
            report(
                LintLevel.ERROR,
                f"{other.value}->RMW is weaker than the strongest of its "
                f"Load/Store halves (inconsistent RMW expansion)",
            )

    fence_orders = any(
        FenceKind.FULL.orders_before(cls) or FenceKind.FULL.orders_after(cls)
        for cls in (OpClass.LOAD, OpClass.STORE, OpClass.RMW)
    ) and all(
        model.class_requirement(OpClass.FENCE, cls) is OrderRequirement.ALWAYS
        and model.class_requirement(cls, OpClass.FENCE) is OrderRequirement.ALWAYS
        for cls in (OpClass.LOAD, OpClass.STORE, OpClass.RMW)
    )
    if not fence_orders:
        report(
            LintLevel.ERROR,
            "a full fence fails to order some prior/subsequent memory class",
        )
    elif all(
        effective_requirement(model, first, second) is OrderRequirement.ALWAYS
        for first in (OpClass.LOAD, OpClass.STORE)
        for second in (OpClass.LOAD, OpClass.STORE)
    ):
        report(
            LintLevel.INFO,
            "every memory pair is already ordered: fences are redundant",
        )

    return findings


def lint_all_models() -> dict[str, list[ModelLintFinding]]:
    """Audit every registered model."""
    return {name: lint_model(name) for name in available_models()}


def canonical_chain_findings() -> list[ModelLintFinding]:
    """Monotonicity of the canonical lattice: each model in the chain
    must statically contain the next (everything TSO forbids, SC
    forbids, and so on), plus the ``weak`` variants."""
    findings: list[ModelLintFinding] = []
    pairs = list(zip(CANONICAL_CHAIN, CANONICAL_CHAIN[1:]))
    pairs += [("weak-corr", "weak"), ("weak", "weak-spec")]
    for stronger, weaker in pairs:
        if statically_contained(stronger, weaker) is not True:
            findings.append(
                ModelLintFinding(
                    LintLevel.ERROR,
                    stronger,
                    f"behaviors({stronger}) ⊆ behaviors({weaker}) is not "
                    f"statically provable — the lattice is broken",
                )
            )
    return findings
