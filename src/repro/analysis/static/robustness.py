"""SC-robustness certificates and lattice portability verdicts.

A program is **SC-robust** under model M iff no critical cycle contains
a delayed (unenforced) program-order edge — equivalently, its behavior
signature under M collapses to its SC signature.  The static analysis
decides this without enumeration, and the verdict discipline follows
the provenance rules of :mod:`repro.analysis.static.conflict`:

* live cycles are an over-approximation (conflict edges use may-alias,
  enforcement is definite-only), so a **robust** certificate — no live
  cycles at all — is sound unconditionally, even on register-address
  programs;
* a **non-robust** verdict is definite only when some live cycle is
  exact (single certain addresses, unconditional paths); otherwise the
  program degrades to *possibly-not-robust* instead of being wrongly
  certified either way.

:func:`check_portability` extends this across the SC ⊆ TSO ⊆ PSO ⊆
WEAK lattice: "verified under TSO — is it safe under PSO?" means *does
the weaker model wake any critical cycle the verified model kept
dead?*  A cycle already (exactly) live under the verified model is
accepted — the developer has signed off on its outcomes — so each step
reports only the newly-breaking cycles, the delay edges that wake
them, and the minimal fence sets that put them back to sleep (solved
by the same all-minimum-covers machinery as
:mod:`repro.analysis.static.fencerepair`).

Every certificate is enumeration-checkable: ``robust`` here must imply
``synthesize_fences(..., target="robust").already_forbidden`` — the
TAB-FENCEREPAIR experiment and the ``static-fence-repair`` fuzz oracle
assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sites import FenceSite, candidate_sites
from repro.analysis.static.conflict import (
    DelayEdge,
    StaticAccess,
    StaticReport,
    _cycle_po_pairs,
    analyze_program,
    collect_accesses,
    enforced_order,
    find_critical_cycles,
)
from repro.analysis.static.dataflow import StaticFacts, compute_static_facts
from repro.analysis.static.fencerepair import (
    FenceRepairResult,
    _all_minimum_covers,
    repair_fences,
)
from repro.isa.program import Program
from repro.models.base import MemoryModel
from repro.models.registry import get_model

__all__ = [
    "LATTICE",
    "PortabilityReport",
    "PortabilityStep",
    "RobustnessCertificate",
    "certify_robustness",
    "check_portability",
]

#: The statically-proven inclusion chain (see lint.statically_contained).
LATTICE = ("sc", "tso", "pso", "weak")


@dataclass
class RobustnessCertificate:
    """The static robustness verdict for one program under one model."""

    program_name: str
    model_name: str
    robust: bool
    definite: bool  #: the verdict cannot be an aliasing/path artifact
    delays: tuple[DelayEdge, ...]
    breaking_cycles: tuple[tuple[StaticAccess, ...], ...]
    repairs: list[tuple[FenceSite, ...]]  #: all minimal repairs (empty if robust)
    repair: FenceRepairResult | None = None

    @property
    def verdict(self) -> str:
        if self.robust:
            return "robust"
        return "not-robust" if self.definite else "possibly-not-robust"

    def summary(self) -> str:
        lines = [f"{self.program_name} under {self.model_name}: {self.verdict}"]
        for cycle in self.breaking_cycles[:6]:
            lines.append("  breaks: " + " -> ".join(str(a) for a in cycle))
        if len(self.breaking_cycles) > 6:
            lines.append(f"  ... and {len(self.breaking_cycles) - 6} more")
        if self.repairs:
            rendered = " | ".join(
                "{" + ", ".join(str(site) for site in solution) + "}"
                for solution in self.repairs
            )
            lines.append(f"  minimal repair(s): {rendered}")
        elif not self.robust:
            lines.append("  no full-fence repair covers every delay edge")
        return "\n".join(lines)


def certify_robustness(
    program: Program,
    model: MemoryModel | str,
    *,
    facts: StaticFacts | None = None,
    report: StaticReport | None = None,
) -> RobustnessCertificate:
    """Certify (or refute) SC-robustness of ``program`` under ``model``
    statically, with the minimal repairs attached to a refutation."""
    if isinstance(model, str):
        model = get_model(model)
    repair = repair_fences(program, model, facts=facts, report=report)
    robust = repair.already_robust
    definite = True if robust else any(delay.exact for delay in repair.delays)
    return RobustnessCertificate(
        program_name=program.name,
        model_name=model.name,
        robust=robust,
        definite=definite,
        delays=repair.delays,
        breaking_cycles=repair.report.live_cycles,
        repairs=list(repair.solutions),
        repair=repair,
    )


@dataclass
class PortabilityStep:
    """One lattice step: porting a program verified under
    ``source_model`` to the weaker ``target_model``."""

    source_model: str
    target_model: str
    portable: bool
    definite: bool
    new_cycles: tuple[tuple[StaticAccess, ...], ...]  #: woken by the target
    new_delays: tuple[DelayEdge, ...]  #: their relaxed po edges
    repairs: list[tuple[FenceSite, ...]]  #: minimal sets re-killing them

    @property
    def verdict(self) -> str:
        if self.portable:
            return "portable"
        return "not-portable" if self.definite else "possibly-not-portable"

    def summary(self) -> str:
        head = f"{self.source_model} -> {self.target_model}: {self.verdict}"
        if self.portable:
            return head
        lines = [head]
        for cycle in self.new_cycles[:6]:
            lines.append("  wakes: " + " -> ".join(str(a) for a in cycle))
        if self.repairs:
            rendered = " | ".join(
                "{" + ", ".join(str(site) for site in solution) + "}"
                for solution in self.repairs
            )
            lines.append(f"  repair(s): {rendered}")
        return "\n".join(lines)


@dataclass
class PortabilityReport:
    """Portability of one program from ``verified_under`` down the
    weaker part of the lattice."""

    program_name: str
    verified_under: str
    steps: tuple[PortabilityStep, ...]

    def step(self, target_model: str) -> PortabilityStep:
        for step in self.steps:
            if step.target_model == target_model:
                return step
        raise KeyError(target_model)

    def summary(self) -> str:
        lines = [f"{self.program_name} verified under {self.verified_under}:"]
        for step in self.steps:
            lines.extend("  " + line for line in step.summary().splitlines())
        if not self.steps:
            lines.append("  (no weaker models in the lattice)")
        return "\n".join(lines)


def _cycle_exact(cycle: tuple[StaticAccess, ...]) -> bool:
    return all(access.exact for access in cycle)


def check_portability(
    program: Program,
    verified_under: str = "sc",
    targets: tuple[str, ...] | None = None,
    *,
    facts: StaticFacts | None = None,
) -> PortabilityReport:
    """For each model weaker than ``verified_under`` in the lattice (or
    the explicit ``targets``): which critical cycles does the weaker
    model wake, and which fence sets re-kill them?

    A cycle only counts as already-accepted when it is **exactly** live
    under the verified model — an over-approximated "live" under the
    source must not excuse a genuinely-breaking cycle under the target,
    so approximate programs degrade toward more reported cycles, never
    fewer.
    """
    if verified_under not in LATTICE:
        raise ValueError(
            f"verified_under must be one of {LATTICE}, got {verified_under!r}"
        )
    if targets is None:
        targets = LATTICE[LATTICE.index(verified_under) + 1 :]
    if facts is None:
        facts = compute_static_facts(program)
    source = get_model(verified_under)
    accesses = collect_accesses(program, facts)
    cycles = find_critical_cycles(program, accesses)
    sites = candidate_sites(program)

    def relaxed_pairs(model: MemoryModel):
        enforced = {
            thread.name: enforced_order(
                thread, model, facts, bypass_coherence=True
            )
            for thread in program.threads
        }
        by_cycle = {}
        for cycle in cycles:
            by_cycle[cycle] = tuple(
                (first, second)
                for first, second in _cycle_po_pairs(cycle)
                if not enforced[first.thread][first.index][second.index]
            )
        return by_cycle

    source_relaxed = relaxed_pairs(source)
    steps = []
    for target_name in targets:
        target = get_model(target_name)
        target_relaxed = relaxed_pairs(target)
        new_cycles = []
        delay_exact: dict[tuple[str, int, int], bool] = {}
        for cycle in cycles:
            if not target_relaxed[cycle]:
                continue  # still dead under the target
            accepted = bool(source_relaxed[cycle]) and _cycle_exact(cycle)
            if accepted:
                continue  # exactly live under the source: already signed off
            new_cycles.append(cycle)
            for first, second in target_relaxed[cycle]:
                key = (first.thread, first.index, second.index)
                delay_exact[key] = delay_exact.get(key, False) or _cycle_exact(cycle)
        new_delays = tuple(
            sorted(
                DelayEdge(thread, first, second, exact=exact)
                for (thread, first, second), exact in delay_exact.items()
            )
        )
        covers = [
            frozenset(
                position
                for position, delay in enumerate(new_delays)
                if delay.thread == site.thread and delay.covers(site.position)
            )
            for site in sites
        ]
        _best, index_solutions, _nodes, _complete = _all_minimum_covers(
            len(new_delays), covers, [1] * len(sites)
        )
        repairs = [
            tuple(sites[index] for index in solution)
            for solution in index_solutions
            if solution  # drop the empty cover of an empty universe
        ]
        steps.append(
            PortabilityStep(
                source_model=verified_under,
                target_model=target_name,
                portable=not new_cycles,
                definite=(not new_cycles)
                or any(_cycle_exact(cycle) for cycle in new_cycles),
                new_cycles=tuple(new_cycles),
                new_delays=new_delays,
                repairs=repairs,
            )
        )
    return PortabilityReport(
        program_name=program.name,
        verified_under=verified_under,
        steps=tuple(steps),
    )
