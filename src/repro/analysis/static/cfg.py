"""Per-thread control-flow graphs over the mini-ISA.

A :class:`ThreadCFG` partitions a thread's flat instruction list into
basic blocks and records the taken/fallthrough successor of each block.
Branch targets are label indices (herd-style, a label may equal
``len(code)`` and then names the thread's exit), so the graph always has
a single virtual :data:`EXIT` sink.

The dataflow passes in :mod:`repro.analysis.static.dataflow` only run
over *acyclic* CFGs — the mini-ISA permits loops (CAS spinlocks), but a
looping thread has no static instruction bound, so the analyses degrade
to the conservative PR-2 facts instead.  :attr:`ThreadCFG.has_loops`
flags that case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Branch
from repro.isa.program import Thread

#: Virtual block id for the thread's single exit point.
EXIT = -1


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line run of instructions ``[start, end)``."""

    bid: int
    start: int
    end: int

    def indices(self) -> range:
        return range(self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start

    def __str__(self) -> str:
        return f"B{self.bid}[{self.start}..{self.end})"


@dataclass(frozen=True)
class ThreadCFG:
    """The control-flow graph of one thread.

    ``taken_succ``/``fall_succ`` give, per block, the successor reached
    by a taken branch and by falling through (:data:`EXIT` for the
    virtual exit, ``None`` when that edge does not exist — unconditional
    jumps have no fallthrough, non-branch blocks no taken edge).
    """

    thread: Thread
    blocks: tuple[BasicBlock, ...]
    taken_succ: tuple[int | None, ...]
    fall_succ: tuple[int | None, ...]
    block_of: tuple[int, ...]  #: instruction index -> block id
    has_loops: bool

    # -- structure -----------------------------------------------------

    def successors(self, bid: int) -> tuple[int, ...]:
        succs: list[int] = []
        for succ in (self.taken_succ[bid], self.fall_succ[bid]):
            if succ is not None and succ not in succs:
                succs.append(succ)
        return tuple(succs)

    def edges(self) -> frozenset[tuple[int, int]]:
        return frozenset(
            (block.bid, succ)
            for block in self.blocks
            for succ in self.successors(block.bid)
        )

    def terminator(self, bid: int) -> Branch | None:
        """The block's closing branch, if any."""
        block = self.blocks[bid]
        if block.end > block.start:
            last = self.thread.code[block.end - 1]
            if isinstance(last, Branch):
                return last
        return None

    def reverse_postorder(self) -> tuple[int, ...]:
        """Blocks in reverse postorder from the entry — a topological
        order whenever the graph is acyclic."""
        if not self.blocks:
            return ()
        order: list[int] = []
        visited: set[int] = set()

        def visit(bid: int) -> None:
            visited.add(bid)
            for succ in self.successors(bid):
                if succ != EXIT and succ not in visited:
                    visit(succ)
            order.append(bid)

        visit(0)
        return tuple(reversed(order))

    # -- reachability --------------------------------------------------

    def live_blocks(self, live_edges: frozenset[tuple[int, int]]) -> frozenset[int]:
        """Blocks reachable from the entry along ``live_edges`` (a subset
        of :meth:`edges` — dead branch arms removed)."""
        if not self.blocks:
            return frozenset()
        reached = {0}
        frontier = [0]
        while frontier:
            bid = frontier.pop()
            for succ in self.successors(bid):
                if succ == EXIT or succ in reached or (bid, succ) not in live_edges:
                    continue
                reached.add(succ)
                frontier.append(succ)
        return frozenset(reached)

    def unavoidable_blocks(
        self, live_edges: frozenset[tuple[int, int]]
    ) -> frozenset[int]:
        """Blocks on *every* entry-to-exit path (instructions there must
        execute).  Only meaningful on acyclic graphs."""
        if not self.blocks:
            return frozenset()
        live = self.live_blocks(live_edges)
        unavoidable = set()
        for candidate in live:
            if not self._exit_reachable_avoiding(candidate, live, live_edges):
                unavoidable.add(candidate)
        return frozenset(unavoidable)

    def _exit_reachable_avoiding(
        self,
        avoid: int,
        live: frozenset[int],
        live_edges: frozenset[tuple[int, int]],
    ) -> bool:
        if avoid == 0:
            return False
        seen = {0}
        frontier = [0]
        while frontier:
            bid = frontier.pop()
            for succ in self.successors(bid):
                if (bid, succ) not in live_edges:
                    continue
                if succ == EXIT:
                    return True
                if succ == avoid or succ in seen or succ not in live:
                    continue
                seen.add(succ)
                frontier.append(succ)
        return False

    def __str__(self) -> str:
        parts = []
        for block in self.blocks:
            succs = ", ".join(
                "exit" if s == EXIT else f"B{s}" for s in self.successors(block.bid)
            )
            parts.append(f"{block} -> [{succs}]")
        loops = " (loops)" if self.has_loops else ""
        return f"CFG({self.thread.name}{loops}): " + "; ".join(parts)


def build_cfg(thread: Thread) -> ThreadCFG:
    """Partition ``thread`` into basic blocks and wire the edges."""
    code = thread.code
    size = len(code)
    if size == 0:
        return ThreadCFG(thread, (), (), (), (), has_loops=False)

    leaders = {0}
    for index, instruction in enumerate(code):
        if isinstance(instruction, Branch):
            target = thread.target_of(instruction)
            if target < size:
                leaders.add(target)
            if index + 1 < size:
                leaders.add(index + 1)

    starts = sorted(leaders)
    blocks = tuple(
        BasicBlock(bid, start, end)
        for bid, (start, end) in enumerate(zip(starts, starts[1:] + [size]))
    )
    block_of_list = [0] * size
    for block in blocks:
        for index in block.indices():
            block_of_list[index] = block.bid
    block_of = tuple(block_of_list)

    def block_at(index: int) -> int:
        return EXIT if index >= size else block_of[index]

    taken: list[int | None] = []
    fall: list[int | None] = []
    for block in blocks:
        last = code[block.end - 1]
        if isinstance(last, Branch):
            taken.append(block_at(thread.target_of(last)))
            fall.append(block_at(block.end) if last.cond is not None else None)
        else:
            taken.append(None)
            fall.append(block_at(block.end))

    cfg = ThreadCFG(
        thread, blocks, tuple(taken), tuple(fall), block_of, has_loops=False
    )
    return ThreadCFG(
        thread, blocks, tuple(taken), tuple(fall), block_of, has_loops=_has_cycle(cfg)
    )


def _has_cycle(cfg: ThreadCFG) -> bool:
    state: dict[int, int] = {}  # 1 = on stack, 2 = done

    def visit(bid: int) -> bool:
        state[bid] = 1
        for succ in cfg.successors(bid):
            if succ == EXIT:
                continue
            mark = state.get(succ)
            if mark == 1:
                return True
            if mark is None and visit(succ):
                return True
        state[bid] = 2
        return False

    return bool(cfg.blocks) and visit(0)
