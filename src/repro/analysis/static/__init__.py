"""Static analysis: answers without enumeration.

This package predicts ordering facts directly from a program's conflict
graph and a model's :class:`~repro.models.base.ReorderingTable` — the
Shasha & Snir observation the paper leans on in §7: only program-order
edges involved in potential critical cycles must be enforced.

* :mod:`repro.analysis.static.cfg` — per-thread basic-block CFGs.
* :mod:`repro.analysis.static.dataflow` — forward dataflow over those
  CFGs: reaching definitions, constant propagation, address analysis
  (:class:`StaticFacts`), shared static-access collection.
* :mod:`repro.analysis.static.conflict` — the conflict-graph /
  critical-cycle analyzer: statically-predicted races, required delay
  edges per model, suggested fence sites, and the §5
  :func:`speculation_safety` classification of alias-speculable loads.
* :mod:`repro.analysis.static.modellint` — the model-spec linter:
  soundness audits of reordering tables (coherence, SC-containment,
  RMW expansion, fence power) and the static containment lattice
  between registered models.
* :mod:`repro.analysis.static.fencerepair` — minimal fence repair as
  an exact weighted set cover of the delay edges (full fences plus
  table-priced acquire/release upgrades), byte-identical to the
  enumerative ``synthesize_fences(..., target="robust")`` on exact
  programs.
* :mod:`repro.analysis.static.robustness` — SC-robustness certificates
  and SC ⊆ TSO ⊆ PSO ⊆ WEAK portability verdicts, with conservative
  degradation on over-approximated programs.

Every verdict here is an *over-approximation* of the enumerator's
dynamic answer; the TAB-STATIC and TAB-DATAFLOW experiments
cross-validate the two on the whole litmus library (soundness asserted,
precision reported).
"""

from repro.analysis.static.cfg import EXIT, BasicBlock, ThreadCFG, build_cfg
from repro.analysis.static.conflict import (
    DelayEdge,
    LoadSpeculationVerdict,
    RacePrediction,
    SpeculationReport,
    StaticAccess,
    StaticReport,
    analyze_program,
    speculation_safety,
)
from repro.analysis.static.dataflow import (
    AccessFacts,
    AliasVerdict,
    MemoryAccessSite,
    StaticFacts,
    ThreadFacts,
    collect_memory_accesses,
    compute_static_facts,
    describe_facts,
)
from repro.analysis.static.fencerepair import (
    FenceRepairResult,
    RepairAction,
    UpgradeRepairResult,
    apply_repairs,
    repair_fences,
    repair_upgrades,
)
from repro.analysis.static.modellint import (
    ModelLintFinding,
    canonical_chain_findings,
    effective_requirement,
    lint_all_models,
    lint_model,
    statically_contained,
)
from repro.analysis.static.robustness import (
    LATTICE,
    PortabilityReport,
    PortabilityStep,
    RobustnessCertificate,
    certify_robustness,
    check_portability,
)

__all__ = [
    "EXIT",
    "BasicBlock",
    "ThreadCFG",
    "build_cfg",
    "AccessFacts",
    "AliasVerdict",
    "MemoryAccessSite",
    "StaticFacts",
    "ThreadFacts",
    "collect_memory_accesses",
    "compute_static_facts",
    "describe_facts",
    "DelayEdge",
    "LoadSpeculationVerdict",
    "RacePrediction",
    "SpeculationReport",
    "StaticAccess",
    "StaticReport",
    "analyze_program",
    "speculation_safety",
    "ModelLintFinding",
    "canonical_chain_findings",
    "effective_requirement",
    "lint_all_models",
    "lint_model",
    "statically_contained",
    "FenceRepairResult",
    "RepairAction",
    "UpgradeRepairResult",
    "apply_repairs",
    "repair_fences",
    "repair_upgrades",
    "LATTICE",
    "PortabilityReport",
    "PortabilityStep",
    "RobustnessCertificate",
    "certify_robustness",
    "check_portability",
]
