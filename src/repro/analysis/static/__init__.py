"""Static analysis: answers without enumeration.

This package predicts ordering facts directly from a program's conflict
graph and a model's :class:`~repro.models.base.ReorderingTable` — the
Shasha & Snir observation the paper leans on in §7: only program-order
edges involved in potential critical cycles must be enforced.

* :mod:`repro.analysis.static.conflict` — the conflict-graph /
  critical-cycle analyzer: statically-predicted races, required delay
  edges per model, suggested fence sites.
* :mod:`repro.analysis.static.modellint` — the model-spec linter:
  soundness audits of reordering tables (coherence, SC-containment,
  RMW expansion, fence power) and the static containment lattice
  between registered models.

Every verdict here is an *over-approximation* of the enumerator's
dynamic answer; the TAB-STATIC experiment cross-validates the two on
the whole litmus library (soundness asserted, precision reported).
"""

from repro.analysis.static.conflict import (
    DelayEdge,
    RacePrediction,
    StaticAccess,
    StaticReport,
    analyze_program,
)
from repro.analysis.static.modellint import (
    ModelLintFinding,
    canonical_chain_findings,
    effective_requirement,
    lint_all_models,
    lint_model,
    statically_contained,
)

__all__ = [
    "DelayEdge",
    "RacePrediction",
    "StaticAccess",
    "StaticReport",
    "analyze_program",
    "ModelLintFinding",
    "canonical_chain_findings",
    "effective_requirement",
    "lint_all_models",
    "lint_model",
    "statically_contained",
]
