"""Model-aware conflict-graph and critical-cycle analysis.

The dynamic analyses (`wellsync`, `fencesynth`, `compare`) answer
ordering questions by running the exponential enumerator.  This module
answers the same questions *statically*, in polynomial time, from two
ingredients:

* the **conflict graph** of a :class:`~repro.isa.program.Program` —
  program-order edges within threads, conflict edges between
  same-location cross-thread accesses where at least one writes,
* the model's :class:`~repro.models.base.ReorderingTable`, which decides
  which program-order edges the hardware already **enforces** (directly,
  through fences/acquire-release, via register dataflow, via the §5.1
  address-resolution dependencies, or transitively).

Following Shasha & Snir (paper §7), a relaxed outcome requires a
*critical cycle* — a minimal cycle alternating program-order and
conflict edges — in which **every** program-order edge left unenforced
by the model is simultaneously relaxed.  Hence:

* **required delay edges** under a model = the unenforced program-order
  pairs appearing in some critical cycle (all of them must be fenced to
  forbid the cycle's outcome),
* **suggested fence sites** = the insertion gaps covering those pairs,
* **predicted races** = conflict edges with a read side (a load whose
  value can come from more than one store).

By default the analysis runs on top of the dataflow layer
(:mod:`repro.analysis.static.dataflow`): register-computed addresses get
value sets instead of "aliases everything", statically-dead branch arms
are skipped, and every finding carries provenance — ``exact`` when the
underlying accesses have a single certain address on an unconditional
path, over-approximated otherwise.  ``precise=False`` restores the
purely syntactic PR-2 behavior.  All verdicts remain sound
over-approximations of the enumerator's; TAB-STATIC and TAB-DATAFLOW
cross-validate them against `wellsync`, `fencesynth`, and pruned
enumeration on the whole litmus library.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.sites import FenceSite
from repro.analysis.static.dataflow import (
    StaticFacts,
    ThreadFacts,
    collect_memory_accesses,
    compute_static_facts,
    static_location,
)
from repro.isa.instructions import Branch, OpClass
from repro.isa.operands import Reg
from repro.isa.program import Program, Thread
from repro.models.base import MemoryModel, OrderRequirement
from repro.models.registry import get_model


@dataclass(frozen=True)
class StaticAccess:
    """One static memory access.

    ``location`` is the single statically-certain address, or None.
    ``locations`` is the dataflow-computed may-address set (any
    :class:`~repro.isa.operands.Value` members; None = unknown, aliases
    everything) — absent on conservatively-collected accesses, where
    ``location`` alone decides aliasing exactly as in PR 2."""

    thread: str
    index: int  #: static instruction index within the thread
    kind: str  #: "R", "W", or "RW" (an RMW is both)
    location: str | None
    locations: frozenset | None = None
    must_execute: bool = True

    def reads(self) -> bool:
        return "R" in self.kind

    def writes(self) -> bool:
        return "W" in self.kind

    def effective_locations(self) -> frozenset | None:
        if self.locations is not None:
            return self.locations
        return frozenset({self.location}) if self.location is not None else None

    @property
    def exact(self) -> bool:
        """A single certain address on an unconditionally-executed access."""
        locations = self.effective_locations()
        return self.must_execute and locations is not None and len(locations) == 1

    def may_alias(self, other: "StaticAccess") -> bool:
        mine = self.effective_locations()
        theirs = other.effective_locations()
        if mine is None or theirs is None:
            return True
        return bool(mine & theirs)

    def must_alias(self, other: "StaticAccess") -> bool:
        """Both accesses certainly target the same single address."""
        mine = self.effective_locations()
        theirs = other.effective_locations()
        return mine is not None and len(mine) == 1 and mine == theirs

    def __str__(self) -> str:
        where = self.location if self.location is not None else "?"
        return f"{self.thread}[{self.index}]:{self.kind}{where}"


@dataclass(frozen=True, order=True)
class DelayEdge:
    """A program-order pair in a critical cycle that the model does not
    enforce — it must be fenced to forbid the cycle's outcome.  ``exact``
    records provenance: True when some contributing cycle consists of
    exact accesses only (the delay is certainly real, not an artifact of
    over-approximated aliasing or a conditional path)."""

    thread: str
    first_index: int
    second_index: int
    exact: bool = field(default=True, compare=False)

    def covers(self, position: int) -> bool:
        """Whether a fence inserted before ``position`` orders this pair."""
        return self.first_index < position <= self.second_index

    def __str__(self) -> str:
        return f"{self.thread}[{self.first_index} -> {self.second_index}]"


@dataclass(frozen=True)
class RacePrediction:
    """A load whose value may come from more than one store.  ``exact``
    is True when the load and every writer have certain addresses on
    unconditional paths — the race is definitely observable, not an
    over-approximation."""

    thread: str
    index: int
    location: str | None
    stores: tuple[StaticAccess, ...]  #: the conflicting writers
    locations: frozenset | None = None  #: the load's may-address set
    exact: bool = True

    def __str__(self) -> str:
        where = self.location if self.location is not None else "?"
        writers = ", ".join(str(s) for s in self.stores)
        return (
            f"load of {where!r} at {self.thread}[{self.index}] races with "
            f"{len(self.stores)} store(s): {writers}"
        )


#: A fence insertion gap (before instruction ``position``) covering at
#: least one required delay edge.  Historically its own dataclass; now
#: the shared :class:`repro.analysis.sites.FenceSite`, so static and
#: enumerative synthesis report identical coordinates.
SuggestedFence = FenceSite


@dataclass
class StaticReport:
    """The static verdicts for one program under one model."""

    program_name: str
    model_name: str
    accesses: tuple[StaticAccess, ...]
    critical_cycles: tuple[tuple[StaticAccess, ...], ...]
    live_cycles: tuple[tuple[StaticAccess, ...], ...]  #: cycles with a relaxed po edge
    races: tuple[RacePrediction, ...]
    delays: tuple[DelayEdge, ...]
    fence_sites: tuple[SuggestedFence, ...]
    conservative: bool  #: some finding is over-approximated
    precise: bool = False  #: analysis ran on dataflow facts

    def predicts_race(self, thread: str, location: str) -> bool:
        """Whether some predicted race could be the dynamic race observed
        on ``location`` in ``thread`` (an unknown location matches
        anything)."""
        for race in self.races:
            if race.thread != thread:
                continue
            locations = race.locations
            if locations is None and race.location is not None:
                locations = frozenset({race.location})
            if locations is None or location in locations:
                return True
        return False

    def covers_site(self, thread: str, position: int) -> bool:
        """Whether a fence at this insertion gap enforces a required
        delay edge (i.e. the site is statically predicted useful)."""
        return any(
            delay.thread == thread and delay.covers(position) for delay in self.delays
        )

    def finding_provenance(self) -> tuple[int, int]:
        """(exact, over-approximated) counts over races + delay edges."""
        findings = list(self.races) + list(self.delays)
        exact = sum(1 for finding in findings if finding.exact)
        return exact, len(findings) - exact

    def summary(self) -> str:
        if self.precise:
            exact, approx = self.finding_provenance()
            caveat = f" [{approx} finding(s) over-approximated]" if approx else ""
        else:
            caveat = (
                " [conservative: branches or dynamic addresses]"
                if self.conservative
                else ""
            )
        lines = [
            f"{self.program_name} under {self.model_name}: "
            f"{len(self.critical_cycles)} critical cycle(s), "
            f"{len(self.live_cycles)} live, {len(self.races)} predicted race(s), "
            f"{len(self.delays)} required delay edge(s){caveat}"
        ]
        for cycle in self.live_cycles[:6]:
            lines.append("  cycle: " + " -> ".join(str(a) for a in cycle))
        if len(self.live_cycles) > 6:
            lines.append(f"  ... and {len(self.live_cycles) - 6} more")
        for race in self.races[:6]:
            lines.append(f"  race: {race}")
        if len(self.races) > 6:
            lines.append(f"  ... and {len(self.races) - 6} more")
        if self.delays:
            lines.append(
                "  delay edges: " + ", ".join(str(d) for d in self.delays)
            )
            lines.append(
                "  suggested fences: "
                + ", ".join(str(s) for s in self.fence_sites)
            )
        else:
            lines.append("  no fences required")
        return "\n".join(lines)


def _static_location(instruction) -> str | None:
    return static_location(instruction)


def collect_accesses(
    program: Program, facts: StaticFacts | None = None
) -> tuple[StaticAccess, ...]:
    """All static memory accesses.  Without ``facts``, conservatively
    assumes every access may execute and register-computed addresses
    alias everything (PR 2); with ``facts``, attaches the dataflow
    address sets, drops statically-dead branch arms, and records
    must-execute provenance."""
    accesses = []
    for site in collect_memory_accesses(program):
        if facts is None:
            accesses.append(
                StaticAccess(site.thread, site.index, site.kind, site.location)
            )
            continue
        if facts.is_dead(site.tid, site.index):
            continue
        access_facts = facts.access(site.tid, site.index)
        if access_facts is None:
            accesses.append(
                StaticAccess(site.thread, site.index, site.kind, site.location)
            )
            continue
        location = site.location
        addresses = access_facts.addresses
        if location is None and addresses is not None and len(addresses) == 1:
            (only,) = addresses
            if isinstance(only, str):
                location = only
        accesses.append(
            StaticAccess(
                site.thread,
                site.index,
                site.kind,
                location,
                locations=addresses,
                must_execute=access_facts.must_execute,
            )
        )
    return tuple(accesses)


def _dataflow_edges(thread: Thread) -> set[tuple[int, int]]:
    """Definite register-dependency edges (writer -> reader) within a
    straight-line thread — the PR-2 fallback when no dataflow facts are
    available.  Branchy threads contribute nothing here."""
    if any(isinstance(instruction, Branch) for instruction in thread.code):
        return set()
    edges: set[tuple[int, int]] = set()
    last_writer: dict[str, int] = {}
    for index, instruction in enumerate(thread.code):
        for register in instruction.sources():
            if register.name in last_writer:
                edges.add((last_writer[register.name], index))
        destination = instruction.dest()
        if destination is not None:
            last_writer[destination.name] = index
    return edges


def _addr_dep_edges(
    thread: Thread, model: MemoryModel, thread_facts: ThreadFacts
) -> set[tuple[int, int, int]]:
    """Static §5.1 edges as (producer, target, checked) triples: for a
    same-address-checked pair (checked, target) whose earlier address is
    register-computed, the non-speculative machine orders the producer
    of that address before the later operation."""
    edges: set[tuple[int, int, int]] = set()
    code = thread.code
    for checked, instruction in enumerate(code):
        if not instruction.op_class.is_memory():
            continue
        addr = instruction.addr_operand()
        if not isinstance(addr, Reg):
            continue
        producer = thread_facts.unique_def(checked, addr.name)
        if producer is None:
            continue
        for target in range(checked + 1, len(code)):
            requirement = model.requirement(instruction, code[target])
            if requirement is OrderRequirement.SAME_ADDRESS and producer < target:
                edges.add((producer, target, checked))
    return edges


def enforced_order(
    thread: Thread,
    model: MemoryModel,
    facts: StaticFacts | None = None,
    *,
    addr_deps: bool = True,
    drop_addr_dep_target: int | None = None,
    bypass_coherence: bool = False,
) -> list[list[bool]]:
    """The per-thread enforced partial order: ``matrix[i][j]`` (i < j) is
    True when the model definitely keeps instruction ``i`` ordered before
    instruction ``j`` in every execution — by a table entry, a fence or
    acquire/release annotation, a definite dataflow edge, a §5.1
    address-resolution dependency (non-speculative models, with facts),
    or a transitive chain of those.

    ``bypass_coherence=True`` additionally treats a plain same-address
    Store→Load pair as enforced under ``store_load_bypass`` models: the
    table exempts the pair (requirement NONE) because the load may
    overtake the *buffered* store, but forwarding means it can never
    observe an older value — the pair is ordered in every observable
    outcome, which is what cycle-liveness cares about.  Crucially the
    forwarded pair is only *observably* ordered, not globally ordered:
    the load can retire (off the forwarded value) before the store
    drains to memory, so ``S x → L x → S y`` must NOT conclude
    ``S x → S y``.  Forwarded pairs are therefore applied to the matrix
    *after* the transitive closure and never feed it.  Off by default
    because the raw matrix is also used to answer "which pairs does the
    table itself enforce" (the PR-2/PR-3 contract)."""
    size = len(thread.code)
    matrix = [[False] * size for _ in range(size)]
    thread_facts: ThreadFacts | None = None
    if facts is not None:
        try:
            thread_facts = facts.by_name(thread.name)
        except KeyError:
            thread_facts = None
    precise = thread_facts is not None and thread_facts.analyzable

    def same_single_address(i: int, j: int) -> bool:
        if precise:
            first = thread_facts.accesses.get(i)
            second = thread_facts.accesses.get(j)
            return (
                first is not None
                and second is not None
                and first.addresses is not None
                and len(first.addresses) == 1
                and first.addresses == second.addresses
            )
        first_loc = _static_location(thread.code[i])
        second_loc = _static_location(thread.code[j])
        return first_loc is not None and first_loc == second_loc

    forwarded: list[tuple[int, int]] = []
    for i in range(size):
        for j in range(i + 1, size):
            requirement = model.requirement(thread.code[i], thread.code[j])
            if requirement is OrderRequirement.ALWAYS:
                matrix[i][j] = True
            elif requirement is OrderRequirement.SAME_ADDRESS:
                matrix[i][j] = same_single_address(i, j)
            elif (
                bypass_coherence
                and requirement is OrderRequirement.NONE
                and model.store_load_bypass
                and thread.code[i].op_class is OpClass.STORE
                and thread.code[j].op_class is OpClass.LOAD
                and same_single_address(i, j)
            ):
                forwarded.append((i, j))

    if precise:
        for writer, reader in thread_facts.definite_deps:
            matrix[writer][reader] = True
        if addr_deps and not model.speculative_aliasing:
            for producer, target, _checked in _addr_dep_edges(
                thread, model, thread_facts
            ):
                if target != drop_addr_dep_target:
                    matrix[producer][target] = True
    else:
        for i, j in _dataflow_edges(thread):
            matrix[i][j] = True

    # Transitive closure: ordered-before is transitive across the chain.
    for k in range(size):
        for i in range(k):
            if matrix[i][k]:
                row_k = matrix[k]
                row_i = matrix[i]
                for j in range(k + 1, size):
                    if row_k[j]:
                        row_i[j] = True
    # Forwarded Store→Load pairs are observably ordered as direct pairs
    # only — applied after the closure so they never extend a chain.
    for i, j in forwarded:
        matrix[i][j] = True
    return matrix


def _conflicting(a: StaticAccess, b: StaticAccess) -> bool:
    return a.thread != b.thread and a.may_alias(b) and (a.writes() or b.writes())


def find_critical_cycles(
    program: Program,
    accesses: tuple[StaticAccess, ...] | None = None,
    max_cycles: int = 10_000,
) -> tuple[tuple[StaticAccess, ...], ...]:
    """All minimal critical cycles of the conflict graph: simple cycles
    over program-order + conflict edges, at most two accesses per thread
    and three per location, never immediately backtracking a conflict
    edge.  Unlike :func:`repro.analysis.delays.find_critical_cycles`,
    this handles branches and dynamic addresses conservatively."""
    accesses = collect_accesses(program) if accesses is None else accesses
    cycles: list[tuple[StaticAccess, ...]] = []
    seen: set[frozenset[StaticAccess]] = set()
    order = {access: position for position, access in enumerate(accesses)}

    def successors(current: StaticAccess, came_by_conflict_from: StaticAccess | None):
        for candidate in accesses:
            if candidate is current:
                continue
            if candidate.thread == current.thread:
                if candidate.index > current.index:
                    yield candidate, "po"
            elif _conflicting(current, candidate):
                if came_by_conflict_from is not None and candidate is came_by_conflict_from:
                    continue  # no immediate backtracking
                yield candidate, "conflict"

    def extend(path: list[StaticAccess], kinds: list[str], start: StaticAccess) -> None:
        if len(cycles) >= max_cycles:
            return
        current = path[-1]
        came_from = path[-2] if kinds and kinds[-1] == "conflict" else None
        for nxt, kind in successors(current, came_from):
            if nxt is start:
                if len(path) >= 3 and "po" in kinds + [kind] and kind == "conflict":
                    candidate = tuple(path)
                    if _is_minimal(candidate) and frozenset(candidate) not in seen:
                        seen.add(frozenset(candidate))
                        cycles.append(candidate)
                continue
            if nxt in path:
                continue
            if order[nxt] < order[start]:
                continue  # canonical start: smallest node first
            extend(path + [nxt], kinds + [kind], start)

    for start in accesses:
        extend([start], [], start)
    return tuple(cycles)


def _is_minimal(cycle: tuple[StaticAccess, ...]) -> bool:
    """Shasha–Snir minimality: at most two accesses per thread, at most
    three per location (IRIW touches each location three times).  A
    dynamic address counts against every location, keyed by itself."""
    per_thread: dict[str, int] = {}
    per_location: dict[str, int] = {}
    for access in cycle:
        per_thread[access.thread] = per_thread.get(access.thread, 0) + 1
        key = access.location if access.location is not None else str(access)
        per_location[key] = per_location.get(key, 0) + 1
    if any(count > 2 for count in per_thread.values()):
        return False
    if any(count > 3 for count in per_location.values()):
        return False
    return True


def _cycle_po_pairs(
    cycle: tuple[StaticAccess, ...],
) -> list[tuple[StaticAccess, StaticAccess]]:
    pairs = []
    extended = cycle + (cycle[0],)
    for first, second in zip(extended, extended[1:]):
        if first.thread == second.thread and first.index < second.index:
            pairs.append((first, second))
    return pairs


def _predict_races(
    accesses: tuple[StaticAccess, ...], model: MemoryModel
) -> tuple[RacePrediction, ...]:
    """Loads whose value may come from more than one store.

    A cross-thread conflicting store always makes a load racy in some
    interleaving (the initial store is the competing candidate).  Local
    stores only add candidates when the model fails to keep same-address
    Store→Load pairs ordered — the registered models all do (via the
    x ≠ y entries or store-buffer forwarding), and the model linter
    flags tables that don't."""
    locally_coherent = model.store_load_bypass or (
        model.class_requirement(OpClass.STORE, OpClass.LOAD)
        >= OrderRequirement.SAME_ADDRESS
    )
    races = []
    for access in accesses:
        if not access.reads():
            continue
        remote = tuple(
            other
            for other in accesses
            if other.thread != access.thread
            and other.writes()
            and access.may_alias(other)
        )
        local = ()
        if not locally_coherent:
            local = tuple(
                other
                for other in accesses
                if other.thread == access.thread
                and other.index != access.index
                and other.writes()
                and access.may_alias(other)
            )
        writers = remote + local
        if writers:
            exact = access.exact and all(
                writer.exact and writer.must_alias(access) for writer in writers
            )
            races.append(
                RacePrediction(
                    access.thread,
                    access.index,
                    access.location,
                    writers,
                    locations=access.effective_locations(),
                    exact=exact,
                )
            )
    return tuple(races)


def analyze_program(
    program: Program,
    model: MemoryModel | str,
    *,
    precise: bool = True,
    facts: StaticFacts | None = None,
    bypass_coherence: bool = False,
) -> StaticReport:
    """The full static analysis of ``program`` under ``model`` — no
    enumeration anywhere on this path.  ``precise=True`` (the default)
    runs on the dataflow facts; ``precise=False`` restores the PR-2
    syntactic analysis (register-computed addresses alias everything).
    ``bypass_coherence=True`` refines store-buffer models as documented
    on :func:`enforced_order` — the setting the repair/robustness layer
    uses, since observable order is what decides cycle liveness."""
    if isinstance(model, str):
        model = get_model(model)
    if precise:
        if facts is None:
            facts = compute_static_facts(program)
    else:
        facts = None
    accesses = collect_accesses(program, facts)
    cycles = find_critical_cycles(program, accesses)
    enforced = {
        thread.name: enforced_order(
            thread, model, facts, bypass_coherence=bypass_coherence
        )
        for thread in program.threads
    }

    live: list[tuple[StaticAccess, ...]] = []
    delay_exact: dict[tuple[str, int, int], bool] = {}
    for cycle in cycles:
        relaxed = [
            (first, second)
            for first, second in _cycle_po_pairs(cycle)
            if not enforced[first.thread][first.index][second.index]
        ]
        if relaxed:
            live.append(cycle)
            cycle_exact = all(access.exact for access in cycle)
            for first, second in relaxed:
                key = (first.thread, first.index, second.index)
                delay_exact[key] = delay_exact.get(key, False) or cycle_exact

    delays = tuple(
        sorted(
            DelayEdge(thread, first, second, exact=exact)
            for (thread, first, second), exact in delay_exact.items()
        )
    )
    sites = sorted(
        {SuggestedFence(delay.thread, delay.first_index + 1) for delay in delays},
        key=lambda site: (site.thread, site.position),
    )
    races = _predict_races(accesses, model)
    if facts is not None:
        conservative = any(not race.exact for race in races) or any(
            not delay.exact for delay in delays
        )
    else:
        conservative = program.has_branches() or any(
            access.location is None for access in accesses
        )
    return StaticReport(
        program_name=program.name,
        model_name=model.name,
        accesses=accesses,
        critical_cycles=cycles,
        live_cycles=tuple(live),
        races=races,
        delays=delays,
        fence_sites=tuple(sites),
        conservative=conservative,
        precise=facts is not None,
    )


# ---------------------------------------------------------------------------
# speculation safety (paper §5: which loads may be alias-speculated?)


@dataclass(frozen=True)
class LoadSpeculationVerdict:
    """Whether one load may be alias-speculated — resolved before the
    addresses of earlier same-address-checked accesses are known —
    without admitting behaviors the non-speculative model forbids."""

    thread: str
    index: int
    safe: bool
    reason: str

    def __str__(self) -> str:
        verdict = "safe" if self.safe else "UNSAFE"
        return f"{self.thread}[{self.index}]: {verdict} — {self.reason}"


@dataclass
class SpeculationReport:
    """Per-load speculation-safety verdicts for one program/model."""

    program_name: str
    model_name: str
    loads: tuple[LoadSpeculationVerdict, ...]

    @property
    def all_safe(self) -> bool:
        return all(load.safe for load in self.loads)

    def unsafe_loads(self) -> tuple[LoadSpeculationVerdict, ...]:
        return tuple(load for load in self.loads if not load.safe)

    def summary(self) -> str:
        unsafe = len(self.unsafe_loads())
        lines = [
            f"{self.program_name} under {self.model_name}: "
            f"{len(self.loads)} load(s), {unsafe} unsafe to alias-speculate"
        ]
        lines.extend(f"  {load}" for load in self.loads)
        return "\n".join(lines)


def speculation_safety(
    program: Program,
    model: MemoryModel | str,
    facts: StaticFacts | None = None,
) -> SpeculationReport:
    """Classify each load: safe or unsafe to alias-speculate.

    Alias speculation (paper §5, Figures 8/9) drops the §5.1
    address-resolution dependencies — a load no longer waits for the
    producers of earlier register-computed addresses it is
    same-address-checked against.  A load is **unsafe** when dropping
    those dependencies lets some critical cycle that the
    (non-speculative) model kept dead go live, i.e. speculation without
    rollback would admit a new behavior through that load.  The global
    check is joint — all dependencies dropped at once — so ``all_safe``
    soundly implies the speculative model's outcome set equals the
    non-speculative one.
    """
    if isinstance(model, str):
        model = get_model(model)
    baseline = (
        replace(model, speculative_aliasing=False)
        if model.speculative_aliasing
        else model
    )
    if facts is None:
        facts = compute_static_facts(program)
    accesses = collect_accesses(program, facts)
    cycles = find_critical_cycles(program, accesses)

    full = {
        thread.name: enforced_order(thread, baseline, facts)
        for thread in program.threads
    }
    spec = {
        thread.name: enforced_order(thread, baseline, facts, addr_deps=False)
        for thread in program.threads
    }
    threads_by_name = {thread.name: thread for thread in program.threads}

    #: (thread name, load index) -> producers its addr-deps point from.
    targets: dict[str, set[int]] = {}
    for tid, thread in enumerate(program.threads):
        thread_facts = facts.threads[tid]
        if thread_facts.analyzable and not baseline.speculative_aliasing:
            targets[thread.name] = {
                target
                for _producer, target, _checked in _addr_dep_edges(
                    thread, baseline, thread_facts
                )
            }
        else:
            targets[thread.name] = set()

    def cycle_dead(matrices) -> bool:
        return all(
            matrices[first.thread][first.index][second.index]
            for first, second in _cycle_po_pairs(cycle)
        )

    unsafe: dict[tuple[str, int], str] = {}
    drop_cache: dict[tuple[str, int], list[list[bool]]] = {}

    def drop_matrix(thread_name: str, target: int) -> list[list[bool]]:
        key = (thread_name, target)
        if key not in drop_cache:
            drop_cache[key] = enforced_order(
                threads_by_name[thread_name],
                baseline,
                facts,
                drop_addr_dep_target=target,
            )
        return drop_cache[key]

    for cycle in cycles:
        if not cycle_dead(full) or cycle_dead(spec):
            continue
        # This cycle is kept dead only by address-resolution dependencies:
        # joint speculation would admit its outcome.  Attribute it to the
        # loads whose individual dependencies are load-bearing; if the
        # enforcement is jointly redundant, blame every involved target.
        description = " -> ".join(str(access) for access in cycle)
        responsible: set[tuple[str, int]] = set()
        involved: set[str] = {
            first.thread for first, _second in _cycle_po_pairs(cycle)
        }
        for thread_name in involved:
            for target in targets[thread_name]:
                matrices = dict(full)
                matrices[thread_name] = drop_matrix(thread_name, target)
                if not cycle_dead(matrices):
                    responsible.add((thread_name, target))
        if not responsible:
            responsible = {
                (thread_name, target)
                for thread_name in involved
                for target in targets[thread_name]
            }
        for key in responsible:
            unsafe.setdefault(
                key, f"speculating it revives the critical cycle {description}"
            )

    verdicts = []
    for tid, thread in enumerate(program.threads):
        for index, instruction in enumerate(thread.code):
            if not instruction.op_class.reads_memory():
                continue
            if facts.is_dead(tid, index):
                continue
            key = (thread.name, index)
            if key in unsafe:
                verdicts.append(
                    LoadSpeculationVerdict(thread.name, index, False, unsafe[key])
                )
            elif index in targets[thread.name]:
                verdicts.append(
                    LoadSpeculationVerdict(
                        thread.name,
                        index,
                        True,
                        "its address-resolution dependency is not load-bearing "
                        "in any critical cycle",
                    )
                )
            else:
                verdicts.append(
                    LoadSpeculationVerdict(
                        thread.name,
                        index,
                        True,
                        "no address-resolution dependency targets it",
                    )
                )
    return SpeculationReport(
        program_name=program.name,
        model_name=model.name,
        loads=tuple(verdicts),
    )
